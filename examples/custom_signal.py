"""Extending JOCL with a new signal (the paper's flexibility claim).

Section 1: "JOCL is flexible enough to combine different signals from
both tasks, and able to extend to fit any new signals."  The mechanism:
every feature-bearing factor template takes a vector of named feature
functions whose weights are learned jointly, so a new signal is one
``PairSignal`` appended to the registry.

Here we add an *acronym* signal to the NP canonicalization factors F1
and F3: ``Sim_acr("umd", "university of maryland") = 1`` because "umd"
spells the initials of the expansion.  Acronym pairs share no tokens
(IDF overlap 0) and little character shape, so the stock signals miss
them — the new signal gives the factor graph direct evidence.

Run:  python examples/custom_signal.py
"""

from repro.api import JOCLEngine
from repro.core import JOCLConfig
from repro.core.signals.base import PairSignal
from repro.core.signals.registry import default_registry
from repro.datasets import ReVerb45KConfig, generate_reverb45k
from repro.metrics import evaluate_clustering

def acronym_similarity(first: str, second: str) -> float:
    """1.0 when one phrase spells the initials of the other."""

    def initials(phrase: str) -> str:
        return "".join(word[0] for word in phrase.split() if word)

    shorter, longer = sorted((first, second), key=len)
    if " " in shorter or " " not in longer:
        return 0.0
    return 1.0 if shorter == initials(longer) else 0.0

def registry_with_acronyms(side, variant):
    registry = default_registry(side, variant)
    registry.np_pair.append(PairSignal("f_acronym", acronym_similarity))
    return registry

def main() -> None:
    dataset = generate_reverb45k(
        ReVerb45KConfig(n_entities=80, n_facts=180, n_triples=240, seed=23)
    )
    side = dataset.side_information("test")
    gold = dataset.gold
    config = JOCLConfig(lbp_iterations=20)

    stock_engine = (
        JOCLEngine.builder().with_side_information(side).with_config(config).build()
    )
    stock = stock_engine.canonicalize()
    extended_engine = (
        JOCLEngine.builder()
        .with_side_information(side)
        .with_config(config)
        .with_signals(registry_with_acronyms)
        .build()
    )
    registry = registry_with_acronyms(side, config.variant)
    print("F1 feature vector with the new signal:",
          [signal.name for signal in registry.np_pair])
    extended = extended_engine.canonicalize()

    stock_f1 = evaluate_clustering(stock.np_clusters, gold.np_clusters).average_f1
    extended_f1 = evaluate_clustering(
        extended.np_clusters, gold.np_clusters
    ).average_f1
    print(f"NP canonicalization average F1 without acronym signal: {stock_f1:.3f}")
    print(f"NP canonicalization average F1 with acronym signal:    {extended_f1:.3f}")

    print("\nexample scores of the new signal:")
    print("  bu / bertor university  ->",
          acronym_similarity("bu", "bertor university"))
    print("  uom / university of maryland ->",
          acronym_similarity("uom", "university of maryland"))
    print("  bu / bertor             ->",
          acronym_similarity("bu", "bertor"))

    # Note: under the paper's pair pruning (IDF token overlap >= 0.5),
    # token-disjoint acronym pairs receive no canonicalization variable,
    # so the signal influences only pairs the graph instantiates; the
    # joint linking side is what recovers fully disjoint acronyms.

if __name__ == "__main__":
    main()
