"""Durable serving: checkpoint, restart, warm ingest, concurrent resolve.

Walks the full production lifecycle the :mod:`repro.persist` and
:mod:`repro.serving` subsystems exist for:

1. build an engine on the streaming-ingest workload and bring it to
   serving steady state (one joint inference, incremental runtime warm);
2. ``save()`` it into a :class:`repro.persist.FileStateStore` — a
   schema-versioned snapshot of the OKB, all side information, config,
   weights, the feature-table cache and the runtime's converged
   components;
3. "kill the process" (drop the engine) and ``load()`` a fresh one from
   the store: decisions are byte-identical and the first inference
   *splices* every cached component instead of re-running LBP;
4. ingest an arrival batch into the restored engine — only the dirty
   components recompute (``reused_components > 0``: the restored
   incremental state is live, not cosmetic);
5. wrap the engine in a :class:`repro.serving.JOCLService` and hammer
   ``resolve`` from several threads — answers are byte-identical to a
   serial loop, with concurrent requests coalesced into shared decode
   batches; finally ``checkpoint()``/``rollback()`` swap state with
   zero downtime.

Run:  python examples/checkpoint_serving.py
"""

import tempfile
import threading

from repro.api import JOCLEngine
from repro.core import JOCLConfig
from repro.datasets import StreamingIngestConfig, generate_streaming_ingest
from repro.persist import FileStateStore
from repro.runtime import IncrementalRuntime
from repro.serving import JOCLService


def main() -> None:
    workload = generate_streaming_ingest(
        StreamingIngestConfig(n_shards=4, triples_per_shard=25, seed=11)
    )
    config = JOCLConfig(lbp_iterations=20)

    # 1. Serving steady state.
    engine = workload.engine(config, IncrementalRuntime())
    report = engine.run_joint()
    print(f"engine: {engine.stats().n_triples} triples, "
          f"{engine.last_profile().n_components} components")

    with tempfile.TemporaryDirectory() as tmp:
        # 2. Checkpoint.
        store = FileStateStore(f"{tmp}/checkpoints")
        snapshot = engine.save(store)
        print(f"saved {snapshot} -> {store.root}")

        # 3. "Process restart": the engine is gone; load a new one.
        del engine
        restored = JOCLEngine.load(store)
        restored_report = restored.run_joint()
        profile = restored.last_profile()
        print(f"restored: decisions identical = "
              f"{restored_report.canonicalization == report.canonicalization}"
              f", spliced {profile.reused_components}/{profile.n_components} "
              f"components (no LBP re-run)")

        # 4. Warm ingest: only dirty components recompute.
        for batch in workload.batches:
            restored.ingest(batch)
        restored.run_joint()
        profile = restored.last_profile()
        print(f"post-restore ingest: reused {profile.reused_components}"
              f"/{profile.n_components} components")

        # 5. Concurrent serving with micro-batching.
        service = JOCLService(restored, store=store)
        mentions = [t.subject for t in workload.seed_triples[:40]]
        serial = [service.resolve(m).target for m in mentions]
        answers = [None] * len(mentions)

        def worker(offset: int) -> None:
            for index in range(offset, len(mentions), 8):
                answers[index] = service.resolve(mentions[index]).target

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = service.serving_stats()
        print(f"threaded resolve: identical to serial loop = "
              f"{answers == serial} "
              f"({stats.requests} requests in {stats.batches} decode batches)")

        # Checkpoint the grown state, roll back, roll forward.
        grown = service.checkpoint()
        service.rollback(snapshot)
        print(f"rolled back to {snapshot}: "
              f"{service.stats().n_triples} triples")
        service.rollback(grown)
        print(f"rolled forward to {grown}: "
              f"{service.stats().n_triples} triples")


if __name__ == "__main__":
    main()
