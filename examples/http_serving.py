"""HTTP serving walkthrough: the network front-end over one session.

Starts the stdlib asyncio HTTP/JSON server over a durable
:class:`repro.serving.JOCLService`, then exercises the full serving
story across a real loopback socket:

* a ``resolve`` answer over the wire is byte-identical to the
  in-process engine answer;
* the closed-loop load generator creates the concurrent arrivals the
  batching window coalesces into shared decode batches (with hot-key
  duplicates served by a single engine resolve);
* ``checkpoint`` / ``ingest`` / ``rollback`` drive the durability cycle
  through HTTP endpoints;
* ``stop()`` drains in-flight requests and closes the port.

Run:  python examples/http_serving.py
"""

import json
import tempfile
import urllib.request
from pathlib import Path

from repro.core import JOCLConfig
from repro.datasets import StreamingIngestConfig, generate_streaming_ingest
from repro.http import (
    CheckpointResponse,
    HTTPServingServer,
    IngestRequest,
    LoadGenConfig,
    ResolveRequest,
    ResolveResponse,
    RollbackRequest,
    RollbackResponse,
    ServerConfig,
    ServingApp,
    StatsResponse,
    build_request_plan,
    run_load,
)
from repro.persist import FileStateStore
from repro.runtime import IncrementalRuntime
from repro.serving import JOCLService


def call(server, path, payload=None, method="POST"):
    """One JSON request against the running server, stdlib only."""
    request = urllib.request.Request(
        f"http://{server.host}:{server.port}{path}",
        data=None if payload is None else json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method=method,
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read().decode("utf-8"))


def main() -> None:
    workload = generate_streaming_ingest(
        StreamingIngestConfig(n_shards=2, triples_per_shard=25, seed=11)
    )
    config = JOCLConfig(lbp_iterations=20)
    engine = workload.engine(config, IncrementalRuntime())
    checkpoints = tempfile.TemporaryDirectory(prefix="jocl-http-example-")
    service = JOCLService(
        engine,
        store=FileStateStore(Path(checkpoints.name) / "store"),
        max_batch_size=8,
        batch_window_ms=3.0,
    )

    with HTTPServingServer(
        ServingApp(service), ServerConfig(max_in_flight=32)
    ) as server:
        print(f"serving on http://{server.host}:{server.port}")

        # 1. Wire answers are the in-process answers, byte for byte.
        mention = workload.seed_triples[0].subject
        over_wire = ResolveResponse.from_dict(
            call(server, "/v1/resolve", ResolveRequest(mention, "np").to_dict())
        ).result
        in_process = engine.resolve(mention, "np").to_dict()
        identical = json.dumps(over_wire, sort_keys=True) == json.dumps(
            in_process, sort_keys=True
        )
        print(f"HTTP answer identical to in-process = {identical}")

        # 2. Durability cycle over HTTP: checkpoint, ingest, roll back.
        snapshot = CheckpointResponse.from_dict(
            call(server, "/v1/checkpoint", {})
        ).snapshot
        arrivals = workload.batches[0]
        ingested = call(
            server, "/v1/ingest", IngestRequest(tuple(arrivals)).to_dict()
        )["ingested"]
        print(f"checkpointed {snapshot!r}, then ingested {ingested} triples")
        restored = RollbackResponse.from_dict(
            call(server, "/v1/rollback", RollbackRequest(snapshot).to_dict())
        ).snapshot
        print(f"rolled back to {restored!r}")

        # 3. Concurrent load: the traffic shape the window was built for.
        mentions = [(t.subject, "np") for t in workload.seed_triples]
        load = LoadGenConfig(
            mode="closed", n_requests=160, concurrency=8,
            hot_fraction=0.9, hot_keys=4, seed=3,
        )
        report = run_load(
            server.host, server.port, build_request_plan(mentions, load), load
        )
        stats = StatsResponse.from_dict(call(server, "/v1/stats", method="GET"))
        serving = stats.serving[0]
        coalesced = serving["coalesced_requests"] > 0 and (
            serving["deduplicated_requests"] > 0
        )
        print(
            f"closed loop: {report.ok}/{report.n_requests} ok at "
            f"{report.req_per_s:.0f} req/s "
            f"(p50 {report.p50_ms:.1f} ms, p99 {report.p99_ms:.1f} ms)"
        )
        print(
            f"coalesced under load = {coalesced} "
            f"({serving['coalesced_requests']} coalesced into "
            f"{serving['batches']} batches, "
            f"{serving['deduplicated_requests']} duplicates shared)"
        )
        served_before_stop = stats.server["requests_served"]

    # 4. The context-manager exit drained and closed the port.
    try:
        call(server, "/healthz", method="GET")
        drained = False
    except OSError:
        drained = True
    print(
        f"drained cleanly = {drained} "
        f"({served_before_stop} requests served before shutdown)"
    )
    checkpoints.cleanup()


if __name__ == "__main__":
    main()
