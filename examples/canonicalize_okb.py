"""OKB canonicalization scenario: JOCL against the classic baselines.

This is the paper's Table 1 workload in miniature: cluster the subject
noun phrases of a noisy OKB so that paraphrased mentions ("University
of Maryland", "UMD", typo'd variants) share one group.  Every system
sees the same side information; JOCL additionally exploits the CKB via
the joint linking task.

Run:  python examples/canonicalize_okb.py
"""

from repro.api import JOCLEngine
from repro.baselines import (
    CesiBaseline,
    IdfTokenOverlapBaseline,
    MorphNormBaseline,
    SistBaseline,
    TextSimilarityBaseline,
)
from repro.core import JOCLConfig
from repro.datasets import ReVerb45KConfig, generate_reverb45k
from repro.pipeline import format_table, run_canonicalization_systems
from repro.pipeline.experiment import score_clustering

def main() -> None:
    dataset = generate_reverb45k(
        ReVerb45KConfig(n_entities=80, n_facts=180, n_triples=240, seed=11)
    )
    side = dataset.side_information("test")
    gold = dataset.gold

    systems = [
        MorphNormBaseline(),
        TextSimilarityBaseline(),
        IdfTokenOverlapBaseline(),
        CesiBaseline(),
        SistBaseline(),
    ]
    rows = run_canonicalization_systems(systems, side, gold.np_clusters, "S")

    engine = (
        JOCLEngine.builder()
        .with_side_information(side)
        .with_config(JOCLConfig(lbp_iterations=20, learn_iterations=10))
        .build()
    )
    engine.fit(
        dataset.validation_triples, side=dataset.side_information("validation")
    )
    result = engine.canonicalize()
    rows.append(score_clustering("JOCL", result.np_clusters, gold.np_clusters))

    print(format_table("NP canonicalization (ReVerb45K-shaped OKB)", rows))

    # Show one concrete win: groups that only the joint model recovers.
    print("\ngroups JOCL recovers that IDF-overlap clustering misses:")
    idf_clusters = systems[2].cluster(side, "S")
    shown = 0
    for group in result.np_clusters.non_singletons():
        members = sorted(group)
        if not idf_clusters.same_cluster(members[0], members[-1]) and (
            gold.np_clusters.same_cluster(members[0], members[-1])
        ):
            print(f"  {members}")
            shown += 1
            if shown == 5:
                break

if __name__ == "__main__":
    main()
