"""Choosing an execution runtime and serving request batches.

Builds the naturally decomposable *sharded* OKB (several independent
worlds with disjoint relation vocabularies — the multi-tenant traffic
shape), then runs the same engine workload under every shipped
:mod:`repro.runtime`:

* ``SerialRuntime``      — whole-graph LBP (the default);
* ``PartitionedRuntime`` — per-component LBP: each connected component
  stops at its own convergence, so total work shrinks;
* ``ParallelRuntime``    — the partitioned plan on a worker pool.

All three are decision-for-decision equivalent — the reports compare
equal — while the :class:`repro.api.ExecutionProfile` shows how
differently they executed.  Finally the batched serving entry point
``resolve_many`` answers a burst of mention queries against one shared
decoding.

Run:  python examples/runtime_serving.py
"""

from repro.api import JOCLEngine
from repro.core import JOCLConfig
from repro.datasets import ShardedOKBConfig, generate_sharded_reverb45k
from repro.runtime import ParallelRuntime, PartitionedRuntime, SerialRuntime


def main() -> None:
    dataset = generate_sharded_reverb45k(
        ShardedOKBConfig(n_shards=6, triples_per_shard=33, seed=7)
    )
    print(f"dataset: {dataset}")
    side = dataset.side_information("test")
    config = JOCLConfig(lbp_iterations=20)

    reports = {}
    for runtime in (
        SerialRuntime(),
        PartitionedRuntime(),
        ParallelRuntime(max_workers=4),
    ):
        engine = (
            JOCLEngine.builder()
            .with_side_information(side)
            .with_config(config)
            .with_runtime(runtime)
            .build()
        )
        report = engine.run_joint()
        reports[runtime.name] = report
        profile = report.profile
        print(
            f"\n{runtime.name:>12}: {profile.n_components} component(s), "
            f"workers={profile.max_workers}, wall={profile.wall_time_s * 1e3:.1f} ms"
        )
        print(f"{'':>12}  component sizes: {list(profile.component_sizes)[:8]}")
        print(f"{'':>12}  component iters: {list(profile.component_iterations)[:8]}")

    identical = (
        reports["serial"] == reports["partitioned"] == reports["parallel"]
    )
    print(f"\nall runtimes produced identical reports: {identical}")

    # Batched serving: one decoding + one index lookup amortized over
    # the whole request burst.
    engine = (
        JOCLEngine.builder()
        .with_side_information(side)
        .with_config(config)
        .with_runtime(ParallelRuntime(max_workers=4))
        .build()
    )
    mentions = [triple.subject for triple in dataset.test_triples[:8]]
    answers = engine.resolve_many(mentions)
    print(f"\nresolve_many over {len(mentions)} mentions:")
    for answer in answers[:5]:
        print(f"  {answer.mention!r} -> {answer.target}")


if __name__ == "__main__":
    main()
