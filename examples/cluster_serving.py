"""Horizontal scale-out: a 4-shard cluster, served and checkpointed.

Walks the production lifecycle :mod:`repro.cluster` exists for:

1. build a 4-shard :class:`~repro.cluster.ShardedEngine` over a
   domain-partitioned workload (one world per shard, the natural
   tenant split), with a vocabulary-affinity router and an incremental
   runtime per shard — and verify its decisions are *identical* to one
   big engine over the union (corpus-global IDF at work);
2. wrap it in a :class:`~repro.serving.JOCLClusterService` and hammer
   ``resolve`` from several threads — per-shard locks and
   micro-batching, answers byte-identical to a serial loop;
3. ingest an arrival batch: the router concentrates it on the shards
   that own its vocabulary, those shards recompute, every other
   shard keeps serving its cached decoding untouched;
4. ``save()`` the cluster (one namespaced snapshot per shard plus a
   manifest), "lose the process", ``load()`` it back — answers
   identical, and the restored shards splice their converged components
   instead of re-running LBP.

Run:  python examples/cluster_serving.py
"""

import tempfile
import threading

from repro.api import JOCLEngine
from repro.cluster import ShardedEngine, VocabularyAffinityRouter
from repro.core import JOCLConfig
from repro.datasets import (
    StreamingIngestConfig,
    generate_streaming_ingest,
    shard_partition,
)
from repro.persist import FileStateStore
from repro.runtime import IncrementalRuntime
from repro.serving import JOCLClusterService


def main() -> None:
    workload = generate_streaming_ingest(
        StreamingIngestConfig(
            n_shards=4,
            triples_per_shard=50,
            entities_per_shard=30,
            facts_per_shard=65,
            seed=7,
        )
    )
    dataset = workload.dataset
    config = JOCLConfig(lbp_iterations=20)

    # 1. The cluster vs. the single engine it must agree with.
    single = (
        JOCLEngine.builder()
        .with_ckb(dataset.kb)
        .with_anchors(dataset.anchors)
        .with_ppdb(dataset.ppdb)
        .with_config(config)
        .with_triples(workload.seed_triples)
        .build()
    )
    single_report = single.run_joint()

    cluster = (
        ShardedEngine.builder()
        .with_ckb(dataset.kb)
        .with_anchors(dataset.anchors)
        .with_ppdb(dataset.ppdb)
        .with_config(config)
        .with_router(VocabularyAffinityRouter())
        .with_shard_triples(shard_partition(workload.seed_triples))
        .with_runtime_factory(IncrementalRuntime)
        .build()
    )
    report = cluster.run_joint()
    identical = (
        report.canonicalization == single_report.canonicalization
        and report.linking.links == single_report.linking.links
    )
    print(
        f"cluster: {cluster.n_shards} shards, "
        f"{report.stats.n_triples} triples, decisions identical to the "
        f"single engine = {identical}"
    )

    # 2. Concurrent serving through per-shard sessions.
    service = JOCLClusterService(cluster)
    mentions = [t.subject for t in workload.seed_triples[:32]]
    serial = [service.resolve(m).target for m in mentions]
    answers = [None] * len(mentions)

    def worker(offset: int) -> None:
        for index in range(offset, len(mentions), 8):
            answers[index] = service.resolve(mentions[index]).target

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    print(
        f"threaded resolve across shards: identical to serial loop = "
        f"{answers == serial}"
    )

    # 3. Routed, shard-parallel ingest.
    batch = workload.batches[0]
    ingest_report = service.ingest(batch)
    print(
        f"ingested {ingest_report.n_triples} triples, routed per shard: "
        f"{ingest_report.per_shard}"
    )
    grown = service.run_joint()

    with tempfile.TemporaryDirectory() as tmp:
        # 4. Cluster checkpoint: namespaced snapshots + manifest.
        store = FileStateStore(f"{tmp}/cluster")
        manifest = cluster.save(store)
        print(
            f"saved {manifest['n_shards']} shard snapshots + manifest "
            f"under {store.root}"
        )

        restored = ShardedEngine.load(store)
        restored_report = restored.run_joint()
        spliced = all(
            profile.reused_components == profile.n_components
            for profile in restored.last_profiles()
        )
        print(
            f"restored: decisions identical = "
            f"{restored_report.canonicalization == grown.canonicalization}, "
            f"all shards spliced warm = {spliced}"
        )


if __name__ == "__main__":
    main()
