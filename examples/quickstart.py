"""Quickstart: the JOCL engine API in ~40 lines.

Generates a ReVerb45K-shaped synthetic OKB + CKB, builds a
:class:`repro.api.JOCLEngine` over the test split, trains its template
weights on the validation split (learning rate 0.05, as in the paper),
runs joint canonicalization + linking, evaluates the way the paper
reports (macro/micro/pairwise/average F1, linking accuracy), and shows
the two service-grade features batch pipelines lack: a single-mention
``resolve`` query and a JSON round-trip of the full report.

Run:  python examples/quickstart.py
"""

import json

from repro.api import EngineReport
from repro.core import JOCLConfig
from repro.datasets import ReVerb45KConfig, generate_reverb45k
from repro.metrics import evaluate_clustering, linking_accuracy

def main() -> None:
    dataset = generate_reverb45k(
        ReVerb45KConfig(n_entities=80, n_facts=180, n_triples=240, seed=7)
    )
    print(f"dataset: {dataset}")

    config = JOCLConfig(lbp_iterations=20, learn_iterations=10)
    engine = dataset.engine("test", config=config)
    engine.fit(
        dataset.validation_triples, side=dataset.side_information("validation")
    )
    report = engine.run_joint()

    print(f"\ntrained on validation split: {report.stats.trained}")
    print(f"LBP iterations: {report.iterations} (converged: {report.converged})")

    gold = dataset.gold
    np_report = evaluate_clustering(
        report.canonicalization.np_clusters, gold.np_clusters
    )
    rp_report = evaluate_clustering(
        report.canonicalization.rp_clusters, gold.rp_clusters
    )
    print("\nNP canonicalization (subject noun phrases):")
    for name, value in np_report.as_row().items():
        print(f"  {name:<12} {value:.3f}")
    print("\nRP canonicalization (relation phrases):")
    for name, value in rp_report.as_row().items():
        print(f"  {name:<12} {value:.3f}")
    entity_accuracy = linking_accuracy(
        report.linking.entity_links, gold.entity_links
    )
    relation_accuracy = linking_accuracy(
        report.linking.relation_links, gold.relation_links
    )
    print(f"\nOKB entity linking accuracy:   {entity_accuracy:.3f}")
    print(f"OKB relation linking accuracy: {relation_accuracy:.3f}")

    # Serving-time query: resolve one mention against the joint decoding.
    mention = dataset.test_triples[0].subject
    resolution = engine.resolve(mention)
    print(f"\nresolve({mention!r}):")
    print(f"  linked to: {resolution.target}")
    print(f"  co-canonical mentions: {sorted(resolution.cluster)[:5]}")

    # The whole report survives a JSON round-trip (schema-versioned).
    payload = json.dumps(report.to_dict())
    restored = EngineReport.from_dict(json.loads(payload))
    print(f"\nJSON round-trip intact: {restored == report} "
          f"({len(payload)} bytes on the wire)")

    # Peek at a few canonicalization groups with their linked entity.
    print("\nsample canonicalized + linked groups:")
    shown = 0
    for group in report.canonicalization.np_clusters.non_singletons():
        members = sorted(group)
        link = report.linking.entity_links.get(members[0])
        print(f"  {members} -> {link}")
        shown += 1
        if shown == 5:
            break

if __name__ == "__main__":
    main()
