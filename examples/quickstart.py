"""Quickstart: joint OKB canonicalization and linking in ~30 lines.

Generates a ReVerb45K-shaped synthetic OKB + CKB, trains JOCL's template
weights on the validation split (learning rate 0.05, as in the paper),
runs joint inference on the test split, and prints the evaluation the
paper reports: macro/micro/pairwise/average F1 for canonicalization and
accuracy for linking.

Run:  python examples/quickstart.py
"""

from repro.core import JOCLConfig
from repro.datasets import ReVerb45KConfig, generate_reverb45k
from repro.pipeline import JOCLPipeline

def main() -> None:
    dataset = generate_reverb45k(
        ReVerb45KConfig(n_entities=80, n_facts=180, n_triples=240, seed=7)
    )
    print(f"dataset: {dataset}")

    config = JOCLConfig(lbp_iterations=20, learn_iterations=10)
    pipeline = JOCLPipeline.from_dataset(dataset, config)
    result = pipeline.run()

    print(f"\ntrained on validation split: {result.trained}")
    print(f"LBP iterations: {result.output.iterations} "
          f"(converged: {result.output.converged})")

    print("\nNP canonicalization (subject noun phrases):")
    for name, value in result.np_report.as_row().items():
        print(f"  {name:<12} {value:.3f}")

    print("\nRP canonicalization (relation phrases):")
    for name, value in result.rp_report.as_row().items():
        print(f"  {name:<12} {value:.3f}")

    print(f"\nOKB entity linking accuracy:   {result.entity_accuracy:.3f}")
    print(f"OKB relation linking accuracy: {result.relation_accuracy:.3f}")

    # Peek at a few canonicalization groups with their linked entity.
    print("\nsample canonicalized + linked groups:")
    shown = 0
    for group in result.output.np_clusters.non_singletons():
        members = sorted(group)
        link = result.output.entity_links.get(members[0])
        print(f"  {members} -> {link}")
        shown += 1
        if shown == 5:
            break

if __name__ == "__main__":
    main()
