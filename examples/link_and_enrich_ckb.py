"""OKB linking scenario: link an OKB to the CKB and enrich it.

The paper's motivation (Section 1): curated KBs are incomplete, and
"integrating OIE triples to CKBs is a significant and promising way for
enriching existing CKBs".  This example runs JOCL's joint inference,
then materializes the *novel* facts — triples whose linked
(entity, relation, entity) combination the CKB does not contain yet —
exactly what a KB-population pipeline would ingest.

Run:  python examples/link_and_enrich_ckb.py
"""

from repro.ckb.kb import Fact
from repro.core import JOCLConfig
from repro.datasets import ReVerb45KConfig, generate_reverb45k

def main() -> None:
    dataset = generate_reverb45k(
        ReVerb45KConfig(n_entities=80, n_facts=180, n_triples=240, seed=19)
    )
    kb = dataset.kb
    print(f"CKB before enrichment: {kb}")

    engine = dataset.engine(
        "test", config=JOCLConfig(lbp_iterations=20, learn_iterations=10)
    )
    engine.fit(
        dataset.validation_triples, side=dataset.side_information("validation")
    )
    links = engine.link()

    # Materialize linked triples; keep the ones the CKB does not know.
    novel: list[Fact] = []
    seen: set[tuple[str, str, str]] = set()
    for triple in engine.okb.triples:
        subject, predicate, obj = triple.as_tuple()
        entity_s = links.entity_links.get(subject)
        relation = links.relation_links.get(predicate)
        entity_o = links.object_links.get(obj)
        if not (entity_s and relation and entity_o):
            continue  # NIL somewhere: nothing to assert
        key = (entity_s, relation, entity_o)
        if key in seen or kb.has_fact(*key):
            continue
        seen.add(key)
        novel.append(Fact(*key))

    print(f"novel candidate facts extracted from the OKB: {len(novel)}")
    for fact in novel[:8]:
        print(f"  + <{fact.subject_id}, {fact.relation_id}, {fact.object_id}>")

    # How many of the novel facts are actually correct (gold check)?
    gold_facts = {
        (t.gold.subject_entity, t.gold.relation, t.gold.object_entity)
        for t in dataset.test_triples
        if t.gold and t.gold.subject_entity
    }
    correct = sum(
        1
        for fact in novel
        if (fact.subject_id, fact.relation_id, fact.object_id) in gold_facts
    )
    if novel:
        print(f"precision of enrichment against gold: {correct / len(novel):.3f}")

    for fact in novel:
        kb.add_fact(fact)
    print(f"CKB after enrichment:  {kb}")

if __name__ == "__main__":
    main()
