"""Setup shim.

The offline environment has setuptools but not ``wheel``, so PEP 660
editable installs (which build a wheel) fail.  This shim enables the
legacy ``pip install -e . --no-use-pep517`` path; all real metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
