"""Setup shim for legacy tooling.

All real metadata lives in ``pyproject.toml``.  Note that offline
environments without ``wheel`` cannot do editable installs at all
(modern pip requires wheel both for PEP 660 and for the legacy
``--no-use-pep517`` path); run from the checkout with
``PYTHONPATH=src`` instead, as the README describes.
"""

from setuptools import setup

setup()
