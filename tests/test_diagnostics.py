"""The concurrency sanitizer: SAN01-SAN03 fixtures, the lock-model
round trip, and suppression parity with the static analyzers.

Each SAN code gets deliberate true-positive fixtures (the seeded ABBA
pair, the unguarded stats bump, the held-lock fan-out) and true
negatives proving the clean disciplines stay silent — including the
real :class:`~repro.serving.JOCLService` and
:class:`~repro.cluster.ShardedEngine` under actual thread load, driven
by the same lock model CI exports."""

from __future__ import annotations

import json
import threading

import pytest

from repro.core import JOCLConfig
from repro.diagnostics import (
    SAN01,
    SAN02,
    SAN03,
    GuardedClassSpec,
    LockModel,
    LockModelError,
    SanitizerFinding,
    format_findings,
    load_lock_model,
    lock_sanitizer,
)
from repro.diagnostics.report import suppressed_at
from repro.runtime.pool import scatter
from tools.analyzers.runner import main as analyzers_main


@pytest.fixture(scope="session")
def lock_model_path(tmp_path_factory):
    """The lock model exported by the static analyzer over real src/."""
    target = tmp_path_factory.mktemp("lock-model") / "lock-model.json"
    assert analyzers_main(["src", f"--emit-lock-model={target}"]) == 0
    return target


@pytest.fixture(scope="session")
def lock_model(lock_model_path):
    return load_lock_model(lock_model_path)


def codes_of(sanitizer):
    return [finding.code for finding in sanitizer.findings]


# ----------------------------------------------------------------------
# SAN01: lock-order cycles and the shard-order rule
# ----------------------------------------------------------------------
def test_san01_tp_abba_pair_without_any_deadlock():
    with lock_sanitizer() as san:
        a, b = san.Lock(), san.Lock()
        with a:
            with b:
                pass
        with b:
            with a:  # opposite order: a cycle, though nothing deadlocked
                pass
    assert codes_of(san) == [SAN01]
    assert "cycle" in san.findings[0].message


def test_san01_tp_three_lock_cycle_across_call_paths():
    with lock_sanitizer() as san:
        a, b, c = san.Lock(), san.Lock(), san.Lock()
        with a, b:
            pass
        with b, c:
            pass
        with c, a:  # closes a -> b -> c -> a
            pass
    assert codes_of(san) == [SAN01]


def test_san01_tp_descending_shard_order_in_one_group():
    with lock_sanitizer() as san:
        shards = [san.Lock() for _ in range(3)]
        for lock in shards:
            san.label(lock, "Cluster._shard_lock")
        with shards[2]:
            with shards[0]:  # walks shards downward
                pass
    assert codes_of(san) == [SAN01]
    assert "ascending" in san.findings[0].message
    assert "Cluster._shard_lock#0" in san.findings[0].message


def test_san01_tn_consistent_order_from_many_threads():
    with lock_sanitizer() as san:
        a, b = san.Lock(), san.Lock()

        def worker():
            for _ in range(20):
                with a:
                    with b:
                        pass

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    assert san.findings == []


def test_san01_tn_ascending_shard_order_is_the_documented_discipline():
    with lock_sanitizer() as san:
        shards = [san.Lock() for _ in range(4)]
        for lock in shards:
            san.label(lock, "Cluster._shard_lock")
        with shards[0], shards[1], shards[3]:
            pass
    assert san.findings == []


def test_san01_tn_reentrant_rlock_records_no_self_edge():
    with lock_sanitizer() as san:
        lock = san.RLock()
        with lock:
            with lock:
                pass
    assert san.findings == []


# ----------------------------------------------------------------------
# SAN02: guarded-state mutations, driven by the exported model
# ----------------------------------------------------------------------
class _Counter:
    """Fixture class registered through the ``extra`` spec channel."""

    def __init__(self):
        self._lock = threading.Lock()
        self._other = threading.Lock()
        self._count = 0


_COUNTER_SPEC = {
    _Counter: {
        "locks": {"_lock": "Lock", "_other": "Lock"},
        "guarded": {"_count": ["_lock"]},
    }
}

#: Instrument this test module too, so ``_Counter.__init__``'s
#: ``threading.Lock()`` calls return checkable wrappers.
_TEST_PREFIXES = ("repro", "tests", "test_diagnostics")


def test_san02_tp_seeded_unguarded_stats_bump_on_real_service(
    lock_model, small_dataset
):
    from repro.api.engine import JOCLEngine
    from repro.serving import JOCLService

    with lock_sanitizer(model=lock_model) as san:
        engine = (
            JOCLEngine.builder()
            .with_ckb(small_dataset.kb)
            .with_anchors(small_dataset.anchors)
            .with_ppdb(small_dataset.ppdb)
            .with_config(JOCLConfig(lbp_iterations=2))
            .with_triples(small_dataset.test_triples)
            .build()
        )
        service = JOCLService(engine)
        assert san.findings == []  # construction is exempt
        service._requests += 1  # the deliberate unguarded bump
    assert codes_of(san) == [SAN02]
    assert "JOCLService._requests" in san.findings[0].message


def test_san02_tp_mutation_with_no_lock_held():
    with lock_sanitizer(
        extra=_COUNTER_SPEC, module_prefixes=_TEST_PREFIXES
    ) as san:
        counter = _Counter()
        counter._count += 1
    assert codes_of(san) == [SAN02]
    assert "_Counter._count" in san.findings[0].message


def test_san02_tp_mutation_under_the_wrong_lock():
    with lock_sanitizer(
        extra=_COUNTER_SPEC, module_prefixes=_TEST_PREFIXES
    ) as san:
        counter = _Counter()
        with counter._other:
            counter._count += 1
    assert codes_of(san) == [SAN02]


def test_san02_tn_mutation_under_the_guard():
    with lock_sanitizer(
        extra=_COUNTER_SPEC, module_prefixes=_TEST_PREFIXES
    ) as san:
        counter = _Counter()
        with counter._lock:
            counter._count += 1
    assert san.findings == []


def test_san02_tn_init_mutations_are_exempt():
    with lock_sanitizer(
        extra=_COUNTER_SPEC, module_prefixes=_TEST_PREFIXES
    ) as san:
        _Counter()  # __init__ writes _count = 0 with no lock held
    assert san.findings == []


def test_san02_tn_uncheckable_pre_existing_guards_are_skipped():
    # Constructed before the sanitizer: its locks are raw primitives the
    # sanitizer never saw acquired, so mutations must not be judged.
    counter = _Counter()
    with lock_sanitizer(extra=_COUNTER_SPEC) as san:
        with counter._lock:
            counter._count += 1  # held, but invisibly so
        counter._count += 1  # not held either way
    assert san.findings == []


# ----------------------------------------------------------------------
# SAN03: locks held across blocking pool fan-outs
# ----------------------------------------------------------------------
def test_san03_tp_lock_held_across_scatter():
    with lock_sanitizer() as san:
        guard = san.Lock()
        with guard:
            scatter([lambda: 1, lambda: 2])
    assert codes_of(san) == [SAN03]
    assert "fan-out of 2 task(s)" in san.findings[0].message


def test_san03_tp_labeled_lock_is_named_in_the_finding():
    with lock_sanitizer() as san:
        guard = san.Lock()
        san.label(guard, "Service._ingest_lock")
        with guard:
            scatter([lambda: 1, lambda: 2, lambda: 3])
    assert codes_of(san) == [SAN03]
    assert "Service._ingest_lock#0" in san.findings[0].message


def test_san03_tp_every_held_lock_is_reported():
    with lock_sanitizer() as san:
        a, b = san.Lock(), san.Lock()
        san.label(a, "Fixture.a")
        san.label(b, "Fixture.b")
        with a, b:
            scatter([lambda: 1, lambda: 2])
    assert codes_of(san) == [SAN03]
    message = san.findings[0].message
    assert "Fixture.a#0" in message and "Fixture.b#0" in message


def test_san03_tn_scatter_with_nothing_held():
    with lock_sanitizer() as san:
        assert scatter([lambda: 1, lambda: 2]) == [1, 2]
    assert san.findings == []


def test_san03_tn_inline_degenerate_paths_never_block_on_a_pool():
    with lock_sanitizer() as san:
        guard = san.Lock()
        with guard:
            assert scatter([lambda: 1]) == [1]  # single task: inline
            assert scatter([lambda: 1, lambda: 2], max_workers=1) == [1, 2]
    assert san.findings == []


def test_san03_tn_lock_released_before_scatter():
    with lock_sanitizer() as san:
        guard = san.Lock()
        with guard:
            pass
        scatter([lambda: 1, lambda: 2])
    assert san.findings == []


# ----------------------------------------------------------------------
# The round trip: static export -> runtime model -> clean real stack
# ----------------------------------------------------------------------
def test_lock_model_export_names_the_real_serving_classes(lock_model_path):
    payload = json.loads(lock_model_path.read_text(encoding="utf-8"))
    assert payload["version"] == 1
    entries = {entry["qualname"]: entry for entry in payload["classes"]}
    service = entries["JOCLService"]
    assert service["module"] == "repro.serving.service"
    assert service["locks"]["_rw"] == "_ReadWriteLock"
    assert service["guarded"]["_engine"] == ["_rw"]
    assert "_stats_lock" in service["guarded"]["_requests"]
    cluster = entries["ShardedEngine"]
    assert cluster["locks"] == {"_ingest_lock": "Lock"}
    assert cluster["guarded"]["_np_vocab"] == ["_ingest_lock"]


def test_round_trip_service_under_thread_load_is_clean(
    lock_model, small_dataset
):
    from repro.api.engine import JOCLEngine
    from repro.serving import JOCLService

    with lock_sanitizer(model=lock_model) as san:
        engine = (
            JOCLEngine.builder()
            .with_ckb(small_dataset.kb)
            .with_anchors(small_dataset.anchors)
            .with_ppdb(small_dataset.ppdb)
            .with_config(JOCLConfig(lbp_iterations=2))
            .with_triples(small_dataset.test_triples)
            .build()
        )
        service = JOCLService(engine)
        mention = small_dataset.test_triples[0].subject
        errors = []

        def worker():
            try:
                for _ in range(4):
                    service.resolve(mention)
            except Exception as error:  # pragma: no cover - diagnostic
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        service.ingest(small_dataset.validation_triples[:5])
        service.serving_stats()
    assert errors == []
    assert san.findings == []


def test_round_trip_cluster_ingest_and_inference_is_clean(lock_model):
    from repro.cluster import ShardedEngine
    from repro.datasets import ShardedOKBConfig, generate_sharded_reverb45k

    dataset = generate_sharded_reverb45k(
        ShardedOKBConfig(n_shards=3, triples_per_shard=12, seed=3)
    )
    with lock_sanitizer(model=lock_model) as san:
        cluster = (
            ShardedEngine.builder()
            .with_ckb(dataset.kb)
            .with_anchors(dataset.anchors)
            .with_ppdb(dataset.ppdb)
            .with_config(JOCLConfig(lbp_iterations=2))
            .with_n_shards(3)
            .build()
        )
        cluster.ingest(dataset.test_triples)
        cluster.run_joint()
        cluster.resolve(dataset.test_triples[0].subject)
    assert san.findings == []


def test_cluster_ingest_fanout_site_carries_a_reviewed_suppression():
    # The ingest lock is deliberately held across the shard fan-out;
    # the justification lives next to the call as a SAN03 directive the
    # sanitizer honored in the clean run above.
    import repro.cluster.engine as cluster_engine

    path = cluster_engine.__file__
    line = next(
        number
        for number, text in enumerate(
            open(path, encoding="utf-8").read().splitlines(), start=1
        )
        if text.strip().startswith("scatter(tasks,")
    )
    assert suppressed_at(path, line, SAN03)


def test_malformed_lock_models_are_rejected(tmp_path):
    with pytest.raises(LockModelError):
        LockModel.from_payload({"version": 99, "classes": []})
    with pytest.raises(LockModelError):
        LockModel.from_payload({"version": 1, "classes": [{"module": "x"}]})
    missing = tmp_path / "missing.json"
    with pytest.raises(LockModelError):
        load_lock_model(missing)
    bad = tmp_path / "bad.json"
    bad.write_text("not json", encoding="utf-8")
    with pytest.raises(LockModelError):
        load_lock_model(bad)


def test_model_resolution_failure_is_a_sanitizer_error():
    from repro.diagnostics import SanitizerError

    model = LockModel(
        specs=[
            GuardedClassSpec(
                module="repro.no_such_module",
                qualname="Nope",
                locks={},
                guarded={},
            )
        ]
    )
    with pytest.raises(SanitizerError):
        with lock_sanitizer(model=model):
            pass  # pragma: no cover


# ----------------------------------------------------------------------
# Reporting: formats and suppression parity with the static analyzers
# ----------------------------------------------------------------------
def test_format_findings_matches_the_runner_conventions():
    finding = SanitizerFinding(
        path="src/repro/serving/service.py",
        line=12,
        code=SAN01,
        message="cycle",
    )
    assert format_findings([finding]) == [
        "src/repro/serving/service.py:12: SAN01 cycle"
    ]
    assert format_findings([finding], fmt="github") == [
        "::error file=src/repro/serving/service.py,line=12,"
        "title=SAN01::cycle"
    ]


def test_runtime_suppressions_honor_the_analyzer_directive_syntax(tmp_path):
    source = (
        "x = 1  # repro: disable=SAN01 -- fixture\n"
        "# repro: disable=SAN02 -- next-line form\n"
        "y = 2\n"
        "z = 3  # repro: disable=all\n"
        "w = 4\n"
    )
    path = tmp_path / "module.py"
    path.write_text(source, encoding="utf-8")
    assert suppressed_at(str(path), 1, SAN01)
    assert not suppressed_at(str(path), 1, SAN02)
    assert suppressed_at(str(path), 3, SAN02)  # standalone -> next code line
    assert suppressed_at(str(path), 4, SAN03)  # all
    assert not suppressed_at(str(path), 5, SAN01)


def test_runtime_file_wide_suppression(tmp_path):
    path = tmp_path / "module.py"
    # Concatenated so this literal is not itself a live directive for
    # *this* file (the scanner is lexical).
    directive = "# repro: " + "disable-file=SAN03 -- fan-out fixture"
    path.write_text(directive + "\nx = 1\n", encoding="utf-8")
    assert suppressed_at(str(path), 2, SAN03)
    assert not suppressed_at(str(path), 2, SAN01)


def test_suppressed_sanitizer_findings_are_dropped(tmp_path):
    # End to end: the finding site carries a directive, so the recorded
    # list stays empty.
    with lock_sanitizer() as san:
        a, b = san.Lock(), san.Lock()
        with a:
            with b:
                pass
        with b:
            with a:  # repro: disable=SAN01 -- deliberate parity fixture
                pass
    assert san.findings == []


# ----------------------------------------------------------------------
# Lifecycle: stopping restores the world
# ----------------------------------------------------------------------
def test_stop_restores_threading_constructors_and_pool_observers():
    from repro.runtime import pool

    before = (threading.Lock, threading.RLock, threading.Condition)
    with lock_sanitizer():
        assert threading.Lock is not before[0]
    assert (threading.Lock, threading.RLock, threading.Condition) == before
    assert pool._SCATTER_OBSERVERS == []


def test_stop_restores_patched_model_classes(lock_model):
    import repro.serving.service as svc

    init_before = svc.JOCLService.__init__
    rw_read_before = svc._ReadWriteLock.read
    with lock_sanitizer(model=lock_model):
        assert svc.JOCLService.__init__ is not init_before
        assert svc._ReadWriteLock.read is not rw_read_before
    assert svc.JOCLService.__init__ is init_before
    assert svc._ReadWriteLock.read is rw_read_before


def test_constructors_outside_repro_modules_stay_raw():
    with lock_sanitizer():
        lock = threading.Lock()  # caller module is "tests.*", not repro
        assert type(lock).__name__ == "lock"
