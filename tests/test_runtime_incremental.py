"""Tests for incremental ingest-then-infer (:mod:`repro.runtime.incremental`).

The load-bearing promise of ISSUE 3: after any sequence of ingests, the
engine's decisions are *identical* to a cold batch run over the union —
across every shipped runtime — while the incremental runtime demonstrably
reuses clean components (``ExecutionProfile.reused_components > 0``).
"""

import json

import pytest

from repro.api import JOCLEngine
from repro.core import JOCLConfig
from repro.datasets import (
    StreamingIngestConfig,
    generate_streaming_ingest,
)
from repro.factorgraph.partition import dirty_components
from repro.okb.triples import OIETriple
from repro.runtime import (
    IncrementalRuntime,
    ParallelRuntime,
    PartitionedRuntime,
    SerialRuntime,
)
from repro.runtime.incremental import phrases_of_variable

CONFIG = JOCLConfig(lbp_iterations=15)

#: Fresh runtime per engine — IncrementalRuntime is stateful.
RUNTIME_FACTORIES = {
    "serial": SerialRuntime,
    "partitioned": PartitionedRuntime,
    "parallel-w2": lambda: ParallelRuntime(max_workers=2),
    "incremental": IncrementalRuntime,
    "incremental-warm": lambda: IncrementalRuntime(warm_start=True),
}


def _decisions(report):
    """The decision payload: canonicalization + linking, stats excluded."""
    return json.dumps(
        {
            "canonicalization": report.canonicalization.to_dict(),
            "linking": report.linking.to_dict(),
        },
        sort_keys=True,
    )


@pytest.fixture(scope="module")
def workload():
    return generate_streaming_ingest(
        StreamingIngestConfig(
            n_shards=4, triples_per_shard=25, n_batches=2, seed=11
        )
    )


@pytest.fixture(scope="module")
def cold_reports(workload):
    """Cold batch-run decisions after each ingest stage (the oracle)."""
    reports = {}
    triples = list(workload.seed_triples)
    reports[0] = _cold_report(workload, triples)
    for stage, batch in enumerate(workload.batches, start=1):
        triples = triples + list(batch)
        reports[stage] = _cold_report(workload, triples)
    return reports


def _cold_report(workload, triples):
    side = workload.side_information(list(triples))
    engine = (
        JOCLEngine.builder().with_side_information(side).with_config(CONFIG).build()
    )
    return engine.run_joint()


# ----------------------------------------------------------------------
# The ingest-then-infer decision-equivalence matrix
# ----------------------------------------------------------------------
class TestEquivalenceMatrix:
    @pytest.mark.parametrize("name", sorted(RUNTIME_FACTORIES))
    def test_ingest_then_infer_equals_cold_batch(self, workload, cold_reports, name):
        """Every runtime: decisions after each ingest == cold batch run."""
        engine = workload.engine(CONFIG, RUNTIME_FACTORIES[name]())
        assert _decisions(engine.run_joint()) == _decisions(cold_reports[0])
        for stage, batch in enumerate(workload.batches, start=1):
            engine.ingest(batch)
            assert _decisions(engine.run_joint()) == _decisions(
                cold_reports[stage]
            ), f"{name} diverged from the cold batch run at stage {stage}"

    @pytest.mark.parametrize("name", sorted(RUNTIME_FACTORIES))
    def test_multi_batch_ingest_single_inference(self, workload, cold_reports, name):
        """N batches between inferences cost one flush, same decisions."""
        engine = workload.engine(CONFIG, RUNTIME_FACTORIES[name]())
        engine.run_joint()
        for batch in workload.batches:
            engine.ingest(batch)
        assert _decisions(engine.run_joint()) == _decisions(
            cold_reports[len(workload.batches)]
        )

    def test_raw_vocabulary_growing_arrivals_stay_equivalent(self):
        """The drift paths: new vocabulary shifts global IDF, the
        incremental engine must still match the cold batch run."""
        raw = generate_streaming_ingest(
            StreamingIngestConfig(
                n_shards=3,
                triples_per_shard=20,
                n_batches=2,
                arrivals="raw",
                seed=23,
            )
        )
        engine = raw.engine(CONFIG, IncrementalRuntime())
        engine.run_joint()
        triples = list(raw.seed_triples)
        for batch in raw.batches:
            engine.ingest(batch)
            triples += list(batch)
            assert _decisions(engine.run_joint()) == _decisions(
                _cold_report(raw, triples)
            )


# ----------------------------------------------------------------------
# Reuse observability and mechanics
# ----------------------------------------------------------------------
class TestIncrementalReuse:
    def test_profile_reports_reused_components(self, workload):
        engine = workload.engine(CONFIG, IncrementalRuntime())
        engine.run_joint()
        first = engine.last_profile()
        assert first.runtime == "incremental"
        assert first.reused_components == 0  # nothing cached yet
        assert first.recomputed_components == first.n_components
        engine.ingest(workload.batches[0])
        engine.run_joint()
        profile = engine.last_profile()
        assert profile.reused_components > 0  # the observable win
        assert profile.recomputed_components >= 1  # the dirty shard ran
        assert (
            profile.reused_components + profile.recomputed_components
            == profile.n_components
        )

    def test_stateless_runtimes_never_reuse(self, workload):
        engine = workload.engine(CONFIG, PartitionedRuntime())
        engine.run_joint()
        engine.ingest(workload.batches[0])
        engine.run_joint()
        profile = engine.last_profile()
        assert profile.reused_components == 0
        assert profile.recomputed_components == profile.n_components

    def test_repeated_inference_without_ingest_reuses_everything(self, workload):
        engine = workload.engine(CONFIG, IncrementalRuntime())
        engine.run_joint()
        # Force a re-decode without any OKB change.
        engine._output = None
        report = engine.run_joint()
        profile = engine.last_profile()
        assert profile.reused_components == profile.n_components
        assert profile.recomputed_components == 0
        assert _decisions(report) == _decisions(engine.run_joint())

    def test_fit_invalidates_component_cache(self, workload):
        """New template weights change the problem: nothing may be
        spliced from the pre-fit converged state."""
        engine = workload.engine(CONFIG, IncrementalRuntime())
        engine.run_joint()
        engine.fit(workload.dataset.triples[:40])
        engine.run_joint()
        profile = engine.last_profile()
        assert profile.reused_components == 0
        assert profile.recomputed_components == profile.n_components

    def test_ingest_merging_two_components(self, workload, cold_reports):
        """A bridging triple fuses two shards' components; the merged
        component recomputes, the rest splice, decisions match cold."""
        engine = workload.engine(CONFIG, IncrementalRuntime())
        engine.run_joint()
        components = engine.last_profile().n_components
        # Bridge the vocabularies of two different shards.
        by_shard = {}
        for triple in workload.seed_triples:
            by_shard.setdefault(triple.triple_id.split(":", 1)[0], triple)
        shards = sorted(by_shard)
        first, second = by_shard[shards[0]], by_shard[shards[1]]
        # Reuse an existing O node of the second shard, so the bridging
        # U4 factor scopes live variables of *both* shards.
        bridge = OIETriple(
            "bridge:0", first.subject, first.predicate, second.object
        )
        engine.ingest([bridge])
        report = engine.run_joint()
        profile = engine.last_profile()
        assert profile.n_components < components  # two shards fused
        assert profile.reused_components > 0  # untouched shards spliced
        cold = _cold_report(
            workload, list(workload.seed_triples) + [bridge]
        )
        assert _decisions(report) == _decisions(cold)

    def test_reset_drops_cached_state(self, workload):
        runtime = IncrementalRuntime()
        engine = workload.engine(CONFIG, runtime)
        engine.run_joint()
        runtime.reset()
        engine._output = None
        engine.run_joint()
        assert engine.last_profile().reused_components == 0

    def test_custom_signal_registry_forces_cold_builds_but_stays_correct(
        self, workload, cold_reports
    ):
        """Custom registries bypass the build cache; the structural
        check still recovers reuse and decisions stay equivalent."""
        from repro.core.signals.registry import default_registry

        engine = (
            JOCLEngine.builder()
            .with_side_information(workload.side_information())
            .with_config(CONFIG)
            .with_signals(lambda side, variant: default_registry(side, variant))
            .with_runtime(IncrementalRuntime())
            .build()
        )
        assert engine._build_cache is None
        engine.run_joint()
        engine.ingest(workload.batches[0])
        report = engine.run_joint()
        assert _decisions(report) == _decisions(cold_reports[1])
        profile = engine.last_profile()
        assert profile.reused_components > 0  # recovered structurally


# ----------------------------------------------------------------------
# The delta-to-dirty-component mapping
# ----------------------------------------------------------------------
class TestDirtyMapping:
    def test_dirty_components_indices(self):
        components = [
            frozenset({"a1", "a2"}),
            frozenset({"b1"}),
            frozenset({"c1", "c2", "c3"}),
        ]
        assert dirty_components(components, ["b1", "c2"]) == frozenset({1, 2})
        assert dirty_components(components, []) == frozenset()
        assert dirty_components(components, ["unknown"]) == frozenset()

    def test_phrases_of_variable_parsing(self):
        assert phrases_of_variable("link:S:umd") == (("S", "umd"),)
        assert phrases_of_variable("canon:P:locate in||located in") == (
            ("P", "locate in"),
            ("P", "located in"),
        )
        assert phrases_of_variable("weird-name") == ()
        assert phrases_of_variable("other:S:x") == ()

    def test_mark_dirty_accumulates_until_consumed(self, workload):
        runtime = IncrementalRuntime()
        runtime.mark_dirty({"S": {"a"}})
        runtime.mark_dirty({"S": {"b"}, "P": {"p"}})
        assert runtime._pending_dirty == {"S": {"a", "b"}, "P": {"p"}}


# ----------------------------------------------------------------------
# The streaming workload generator
# ----------------------------------------------------------------------
class TestStreamingWorkload:
    def test_repeat_arrivals_add_no_vocabulary(self, workload):
        seed_phrases = set()
        for triple in workload.seed_triples:
            seed_phrases.update(triple.as_tuple())
        for batch in workload.batches:
            for triple in batch:
                assert set(triple.as_tuple()) <= seed_phrases

    def test_stream_is_partitioned_exactly(self, workload):
        stream_ids = {t.triple_id for t in workload.dataset.triples}
        split_ids = [t.triple_id for t in workload.all_triples]
        assert len(split_ids) == len(stream_ids)
        assert set(split_ids) == stream_ids

    def test_raw_arrivals_preserve_stream_order(self):
        raw = generate_streaming_ingest(
            StreamingIngestConfig(
                n_shards=3, triples_per_shard=20, arrivals="raw", seed=3
            )
        )
        assert [t.triple_id for t in raw.all_triples] == [
            t.triple_id for t in raw.dataset.triples
        ]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            StreamingIngestConfig(ingest_fraction=0.0)
        with pytest.raises(ValueError):
            StreamingIngestConfig(n_batches=0)
        with pytest.raises(ValueError):
            StreamingIngestConfig(arrivals="bursty")


# ----------------------------------------------------------------------
# Warm-start mechanics at the LBP level
# ----------------------------------------------------------------------
class TestWarmStartMessages:
    @staticmethod
    def _chain_graph(strength=2.0):
        import numpy as np

        from repro.factorgraph.graph import FactorGraph, FactorTemplate, Variable

        graph = FactorGraph()
        template = FactorTemplate("U", ["agree"], initial_weights=[strength])
        graph.add_template(template)
        table = np.array([[0.9], [0.1], [0.2], [0.8]])
        for name in ("x1", "x2", "x3"):
            graph.add_variable(Variable(name, [0, 1]))
        graph.add_factor("u12", template, ["x1", "x2"], table)
        graph.add_factor("u23", template, ["x2", "x3"], table)
        return graph

    def test_keep_messages_attaches_state(self):
        from repro.factorgraph.lbp import LoopyBP

        graph = self._chain_graph()
        cold = LoopyBP(graph, max_iterations=40).run()
        assert cold.messages is None
        kept = LoopyBP(graph, max_iterations=40).run(keep_messages=True)
        assert kept.messages is not None
        assert ("u12", "x1") in kept.messages.f2v
        assert ("x1", "u12") in kept.messages.v2f

    def test_warm_start_converges_faster_to_same_decisions(self):
        from repro.factorgraph.lbp import LoopyBP

        graph = self._chain_graph()
        first = LoopyBP(graph, max_iterations=40).run(keep_messages=True)
        warm = LoopyBP(graph, max_iterations=40).run(warm_start=first.messages)
        assert warm.converged
        assert warm.iterations <= first.iterations
        for name in graph.variables:
            assert warm.map_state(name) == first.map_state(name)

    def test_warm_start_respects_evidence_masks(self):
        from repro.factorgraph.lbp import LoopyBP

        graph = self._chain_graph()
        free = LoopyBP(graph, max_iterations=40).run(keep_messages=True)
        clamped = LoopyBP(graph, max_iterations=40).run(
            evidence={"x1": 1}, warm_start=free.messages
        )
        assert clamped.map_state("x1") == 1
        reference = LoopyBP(graph, max_iterations=40).run(evidence={"x1": 1})
        for name in graph.variables:
            assert clamped.map_state(name) == reference.map_state(name)

    def test_mismatched_warm_entries_ignored(self):
        import numpy as np

        from repro.factorgraph.lbp import LBPMessages, LoopyBP

        graph = self._chain_graph()
        bogus = LBPMessages(
            f2v={
                ("u12", "x1"): np.array([0.1, 0.2, 0.7]),  # wrong shape
                ("nope", "x1"): np.array([0.5, 0.5]),  # unknown factor
            },
            v2f={("x9", "u12"): np.array([0.5, 0.5])},  # unknown variable
        )
        seeded = LoopyBP(graph, max_iterations=40).run(warm_start=bogus)
        cold = LoopyBP(graph, max_iterations=40).run()
        for name in graph.variables:
            assert np.allclose(seeded.marginal(name), cold.marginal(name))
