"""Integration tests for the JOCL facade (fit + infer)."""

import numpy as np
import pytest

from repro.core.config import JOCLConfig
from repro.core.learning import GoldAnnotations
from repro.core.model import JOCL
from repro.core.signals.base import PairSignal
from repro.core.signals.registry import default_registry
from repro.core.variants import jocl_cano_config, jocl_link_config


@pytest.fixture(scope="module")
def fast_config():
    return JOCLConfig(lbp_iterations=12, learn_iterations=3)


class TestInfer:
    def test_untrained_inference_runs(self, tiny_side, fast_config):
        output = JOCL(fast_config).infer(tiny_side)
        assert output.converged
        assert output.entity_links["umd"] == "e:umd"

    def test_cano_variant_produces_no_links(self, tiny_side, fast_config):
        output = JOCL(jocl_cano_config(fast_config)).infer(tiny_side)
        assert all(link is None for link in output.entity_links.values())
        assert len(output.np_clusters) > 0

    def test_link_variant_clusters_by_entity(self, tiny_side, fast_config):
        output = JOCL(jocl_link_config(fast_config)).infer(tiny_side)
        assert output.entity_links["umd"] == "e:umd"
        # Grouping induced purely by linking.
        assert output.np_clusters.same_cluster("umd", "university of maryland")


class TestFit:
    def test_fit_updates_weights(self, tiny_side, tiny_triples, fast_config):
        model = JOCL(fast_config)
        gold = GoldAnnotations.from_triples(tiny_triples)
        history = model.fit(tiny_side, gold)
        assert model.weights is not None
        assert history.iterations >= 1
        # Weights moved away from the all-ones init for at least one template.
        moved = any(
            not np.allclose(weights, np.ones_like(weights))
            for weights in model.weights.values()
        )
        assert moved

    def test_fit_then_infer_uses_weights(self, tiny_side, tiny_triples, fast_config):
        model = JOCL(fast_config)
        model.fit(tiny_side, GoldAnnotations.from_triples(tiny_triples))
        output = model.infer(tiny_side)
        assert output.entity_links["umd"] == "e:umd"

    def test_fit_requires_usable_gold(self, tiny_side, fast_config):
        model = JOCL(fast_config)
        with pytest.raises(ValueError):
            model.fit(tiny_side, GoldAnnotations())

    def test_weights_transfer_across_okbs(
        self, tiny_side, tiny_triples, small_dataset, fast_config
    ):
        model = JOCL(fast_config)
        model.fit(tiny_side, GoldAnnotations.from_triples(tiny_triples))
        other_side = small_dataset.side_information("test")
        output = model.infer(other_side)
        assert output.iterations >= 1


class TestExtensibility:
    def test_custom_signal_registry(self, tiny_side, fast_config):
        """The 'fit any new signals' claim: adding a custom NP signal."""

        def factory(side, variant):
            registry = default_registry(side, variant)
            registry.np_pair.append(
                PairSignal("f_same_len", lambda a, b: float(len(a) == len(b)))
            )
            return registry

        model = JOCL(fast_config, registry_factory=factory)
        graph, _index, _builder = model.build_graph(tiny_side)
        assert "f_same_len" in graph.templates["F1"].feature_names
        output = model.infer(tiny_side)
        assert output.converged


class TestDiagnostics:
    def test_infer_raw_returns_marginals(self, tiny_side, fast_config):
        result, index = JOCL(fast_config).infer_raw(tiny_side)
        from repro.core.builder import link_var

        marginal = result.marginal(link_var("S", "umd"))
        assert marginal.sum() == pytest.approx(1.0)
        assert index.kind_nodes("S")
