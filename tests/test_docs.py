"""The documentation cannot rot: every fenced ``python`` block in
``docs/*.md`` and ``README.md`` is executed here, and the public
surface is audited for example-bearing docstrings.

Conventions the docs follow so this suite can run them:

* fenced blocks tagged ``python`` are executable; blocks tagged
  ``text``/``bash`` (or untagged) are illustrative and skipped;
* blocks in one file run **cumulatively** top to bottom in a shared
  namespace, so a later block may use names an earlier one defined —
  exactly how a reader works through the page.
"""

import inspect
import re
from pathlib import Path

import pytest

REPO = Path(__file__).parent.parent
DOC_FILES = sorted(REPO.glob("docs/*.md")) + [REPO / "README.md"]

_FENCE = re.compile(r"^```(\w*)\s*$")


def _python_blocks(path: Path):
    """(start_line, source) of every fenced ``python`` block."""
    blocks = []
    language = None
    buffer: list[str] = []
    start = 0
    for number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        fence = _FENCE.match(line)
        if fence and language is None:
            language = fence.group(1) or "untagged"
            buffer = []
            start = number + 1
        elif line.strip() == "```" and language is not None:
            if language == "python":
                blocks.append((start, "\n".join(buffer)))
            language = None
        elif language is not None:
            buffer.append(line)
    assert language is None, f"{path}: unclosed code fence"
    return blocks


def test_every_doc_page_has_executable_examples():
    for path in DOC_FILES:
        assert _python_blocks(path), (
            f"{path.relative_to(REPO)} contains no executable python "
            f"block; docs must demonstrate, not just describe"
        )


@pytest.mark.parametrize(
    "path", DOC_FILES, ids=lambda p: str(p.relative_to(REPO))
)
def test_doc_code_blocks_execute(path):
    """Run the page's blocks cumulatively; any exception (or failing
    assert inside a block) fails the page."""
    namespace: dict = {"__name__": f"docs-{path.stem}"}
    for start, source in _python_blocks(path):
        code = compile(
            source, f"{path.relative_to(REPO)}:{start}", "exec"
        )
        exec(code, namespace)


def test_intra_repo_links_resolve():
    """The docs link into each other and into the tree; a rename must
    not silently orphan them (tools/check_links.py, also a CI step)."""
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "check_links", REPO / "tools" / "check_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert module.check() == []


def test_link_checker_catches_breaks(tmp_path, monkeypatch):
    """The checker itself must actually detect a broken target and a
    broken anchor — otherwise the CI step is a green rubber stamp."""
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "check_links", REPO / "tools" / "check_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    (tmp_path / "docs").mkdir()
    (tmp_path / "a.md").write_text(
        "# Title\n[ok](a.md) [gone](missing.md) [bad](a.md#nope)\n",
        encoding="utf-8",
    )
    monkeypatch.setattr(module, "REPO", tmp_path)
    problems = module.check()
    assert len(problems) == 2
    assert any("missing.md" in problem for problem in problems)
    assert any("nope" in problem for problem in problems)


# ----------------------------------------------------------------------
# Docstring audit of the public surface
# ----------------------------------------------------------------------
def _public_members(cls):
    for name, member in vars(cls).items():
        if name.startswith("_"):
            continue
        if callable(member) or isinstance(
            member, (property, classmethod, staticmethod)
        ):
            yield name, member


def _doc_of(member):
    if isinstance(member, property):
        return member.fget.__doc__ if member.fget else None
    if isinstance(member, (classmethod, staticmethod)):
        return member.__func__.__doc__
    return member.__doc__


def test_public_surface_is_fully_documented():
    """Every public class and method of the exported API carries a
    docstring."""
    import repro
    from repro.api import engine as engine_module
    from repro.cluster import engine as cluster_module
    from repro.cluster import results, router
    from repro.http import app as http_app
    from repro.http import loadgen as http_loadgen
    from repro.http import server as http_server
    from repro.persist import store
    from repro.serving import cluster_service, service

    undocumented = []
    for module in (
        engine_module, service, cluster_service, store,
        cluster_module, results, router,
        http_app, http_server, http_loadgen,
    ):
        for name, obj in vars(module).items():
            if name.startswith("_") or not inspect.isclass(obj):
                continue
            if obj.__module__ != module.__name__:
                continue
            if not obj.__doc__:
                undocumented.append(f"{module.__name__}.{name}")
            for member_name, member in _public_members(obj):
                if _doc_of(member):
                    continue
                # An override inherits its contract's docstring (the
                # convention Sphinx and help() follow): documented iff
                # some base class documents the same member.
                inherited = any(
                    _doc_of(vars(base)[member_name])
                    for base in obj.__mro__[1:]
                    if member_name in vars(base)
                )
                if not inherited:
                    undocumented.append(
                        f"{module.__name__}.{name}.{member_name}"
                    )
    for name in repro.__all__:
        obj = getattr(repro, name)
        if getattr(obj, "__doc__", None) is None:
            undocumented.append(f"repro.{name}")
    assert not undocumented, (
        "public surface without docstrings: " + ", ".join(sorted(undocumented))
    )


#: Classes whose docstrings must carry a runnable-looking example — the
#: entry points a new user meets first.
EXAMPLE_BEARING = [
    ("repro", "JOCLEngine"),
    ("repro", "EngineBuilder"),
    ("repro", "JOCLService"),
    ("repro", "JOCLClusterService"),
    ("repro", "ShardedEngine"),
    ("repro", "FileStateStore"),
    ("repro", "SQLiteStateStore"),
    ("repro.cluster", "ClusterBuilder"),
    ("repro.cluster", "HashShardRouter"),
    ("repro.cluster", "VocabularyAffinityRouter"),
    ("repro.cluster", "ClusterReport"),
    ("repro.cluster", "IngestReport"),
    ("repro.http", "ServingApp"),
    ("repro.http", "HTTPServingServer"),
]

#: Methods whose docstrings must carry an example.
EXAMPLE_BEARING_METHODS = [
    ("repro.api.engine", "JOCLEngine", "ingest"),
    ("repro.api.engine", "JOCLEngine", "resolve"),
    ("repro.api.engine", "JOCLEngine", "save"),
    ("repro.api.engine", "JOCLEngine", "load"),
    ("repro.api.engine", "JOCLEngine", "note_vocabulary_drift"),
    ("repro.serving.service", "JOCLService", "exclusive"),
    ("repro.persist.store", "StateStore", "namespace"),
    ("repro.persist.store", "StateStore", "save_document"),
    ("repro.cluster.engine", "ShardedEngine", "ingest"),
    ("repro.cluster.engine", "ShardedEngine", "resolve"),
    ("repro.cluster.engine", "ShardedEngine", "save"),
    ("repro.cluster.engine", "ShardedEngine", "load"),
    ("repro.okb.store", "OpenKB", "adopt_shared_idf"),
]


def _has_example(docstring: str) -> bool:
    return bool(docstring) and (
        "::" in docstring or ">>>" in docstring
    )


@pytest.mark.parametrize(
    "module_name,class_name", EXAMPLE_BEARING,
    ids=[f"{m}.{c}" for m, c in EXAMPLE_BEARING],
)
def test_entry_point_docstrings_show_usage(module_name, class_name):
    import importlib

    cls = getattr(importlib.import_module(module_name), class_name)
    # The class docstring, its builder() or its module docstring must
    # show a usage example (`::` literal block or doctest prompt).
    candidates = [cls.__doc__, inspect.getmodule(cls).__doc__]
    assert any(_has_example(doc) for doc in candidates), (
        f"{module_name}.{class_name} has no example-bearing docstring"
    )


@pytest.mark.parametrize(
    "module_name,class_name,method_name", EXAMPLE_BEARING_METHODS,
    ids=[f"{c}.{m}" for _mod, c, m in EXAMPLE_BEARING_METHODS],
)
def test_method_docstrings_show_usage(module_name, class_name, method_name):
    import importlib

    cls = getattr(importlib.import_module(module_name), class_name)
    method = getattr(cls, method_name)
    assert _has_example(method.__doc__), (
        f"{class_name}.{method_name} has no example-bearing docstring"
    )
