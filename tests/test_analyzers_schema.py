"""SCHEMA checker fixtures: serializer pairing, versioning, parse guards."""

from __future__ import annotations

import textwrap

from tools.analyzers.core import REPO_ROOT, Suppressions, parse_module
from tools.analyzers.schema import SchemaContractCheck


def findings_of(source: str, path: str = "src/repro/api/fixture.py"):
    source = textwrap.dedent(source)
    module = parse_module(path, source)
    check = SchemaContractCheck()
    return Suppressions(source).apply(list(check.run(module)))


def codes_of(source: str, path: str = "src/repro/api/fixture.py"):
    return [finding.code for finding in findings_of(source, path)]


def test_scope_is_the_repro_package():
    check = SchemaContractCheck()
    assert check.interested("src/repro/api/results.py")
    assert check.interested("src/repro/cluster/results.py")
    assert not check.interested("tools/analyzers/core.py")


# ----------------------------------------------------------------------
# True positives
# ----------------------------------------------------------------------
def test_tp_to_dict_without_from_dict():
    source = """
        FIXTURE_SCHEMA_VERSION = 1

        class Report:
            def to_dict(self):
                return {"schema_version": FIXTURE_SCHEMA_VERSION}
    """
    assert codes_of(source) == ["SCHEMA01"]


def test_tp_from_dict_without_to_dict():
    source = """
        FIXTURE_SCHEMA_VERSION = 1

        class Report:
            @classmethod
            def from_dict(cls, payload):
                try:
                    if payload["schema_version"] != FIXTURE_SCHEMA_VERSION:
                        raise ValueError
                    return cls()
                except (KeyError, TypeError, ValueError) as exc:
                    raise SchemaError("bad payload") from exc
    """
    assert codes_of(source) == ["SCHEMA01"]


def test_tp_unversioned_pair():
    source = """
        class Report:
            def to_dict(self):
                return {"count": self.count}

            @classmethod
            def from_dict(cls, payload):
                try:
                    return cls(payload["count"])
                except (KeyError, TypeError) as exc:
                    raise SchemaError("bad payload") from exc
    """
    # Both halves lack the version constant.
    assert codes_of(source) == ["SCHEMA02", "SCHEMA02"]


def test_tp_from_dict_leaking_raw_subscripts():
    source = """
        FIXTURE_SCHEMA_VERSION = 1

        class Report:
            def to_dict(self):
                return {
                    "schema_version": FIXTURE_SCHEMA_VERSION,
                    "count": self.count,
                }

            @classmethod
            def from_dict(cls, payload):
                if payload["schema_version"] != FIXTURE_SCHEMA_VERSION:
                    raise SchemaError("version mismatch")
                return cls(payload["count"])
    """
    assert codes_of(source) == ["SCHEMA03"]


# ----------------------------------------------------------------------
# True negatives
# ----------------------------------------------------------------------
def test_tn_full_contract_with_local_helpers():
    source = """
        FIXTURE_SCHEMA_VERSION = 2

        def _envelope(kind, payload):
            return {"schema_version": FIXTURE_SCHEMA_VERSION, "kind": kind, **payload}

        def check_envelope(payload, kind):
            if payload.get("schema_version") != FIXTURE_SCHEMA_VERSION:
                raise SchemaError("version mismatch")

        def _parsing(kind):
            import contextlib

            @contextlib.contextmanager
            def guard():
                try:
                    yield
                except (KeyError, TypeError, ValueError) as exc:
                    raise SchemaError(kind) from exc

            return guard()

        class Report:
            def to_dict(self):
                return _envelope("report", {"count": self.count})

            @classmethod
            def from_dict(cls, payload):
                check_envelope(payload, "report")
                with _parsing("report"):
                    return cls(int(payload["count"]))
    """
    assert codes_of(source) == []


def test_tn_direct_version_and_try_except():
    source = """
        FIXTURE_SCHEMA_VERSION = 1

        class Report:
            def to_dict(self):
                return {"schema_version": FIXTURE_SCHEMA_VERSION}

            @classmethod
            def from_dict(cls, payload):
                try:
                    if payload["schema_version"] != FIXTURE_SCHEMA_VERSION:
                        raise ValueError(payload["schema_version"])
                    return cls()
                except (KeyError, TypeError, ValueError) as exc:
                    raise SchemaError("bad report payload") from exc
    """
    assert codes_of(source) == []


def test_tn_guarded_accessor_helper():
    source = """
        FIXTURE_SCHEMA_VERSION = 1

        def _require(payload, field):
            try:
                return payload[field]
            except (KeyError, TypeError) as exc:
                raise SchemaError(field) from exc

        class Report:
            def to_dict(self):
                return {"schema_version": FIXTURE_SCHEMA_VERSION}

            @classmethod
            def from_dict(cls, payload):
                if _require(payload, "schema_version") != FIXTURE_SCHEMA_VERSION:
                    raise SchemaError("version mismatch")
                return cls()
    """
    assert codes_of(source) == []


def test_tn_class_without_serializers_is_out_of_scope():
    source = """
        class Accumulator:
            def add(self, item):
                self._items.append(item)
    """
    assert codes_of(source) == []


# ----------------------------------------------------------------------
# Cross-module helper resolution (the repro.cluster.results pattern)
# ----------------------------------------------------------------------
def test_imported_helpers_resolve_across_modules():
    """``from repro.api.results import check_envelope, _parsing`` must
    qualify those names exactly as module-local definitions would."""
    source = """
        from repro.api.results import _envelope, _parsing, check_envelope

        class Report:
            def to_dict(self):
                return _envelope("report", {"count": self.count})

            @classmethod
            def from_dict(cls, payload):
                check_envelope(payload, "report")
                with _parsing("report"):
                    return cls(int(payload["count"]))
    """
    assert codes_of(source, path="src/repro/cluster/fixture.py") == []


def test_real_cluster_results_module_is_clean():
    path = REPO_ROOT / "src" / "repro" / "cluster" / "results.py"
    relative = str(path.relative_to(REPO_ROOT))
    source = path.read_text(encoding="utf-8")
    module = parse_module(relative, source)
    check = SchemaContractCheck()
    findings = Suppressions(source).apply(list(check.run(module)))
    assert findings == [], f"unexpected SCHEMA findings: {findings}"


def test_repo_src_is_clean_of_schema_findings():
    check = SchemaContractCheck()
    for path in sorted((REPO_ROOT / "src" / "repro").rglob("*.py")):
        relative = str(path.relative_to(REPO_ROOT))
        source = path.read_text(encoding="utf-8")
        module = parse_module(relative, source)
        findings = Suppressions(source).apply(list(check.run(module)))
        assert findings == [], f"unexpected SCHEMA findings in {relative}: {findings}"
