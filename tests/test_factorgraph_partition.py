"""Tests for graph segmentation (distributed LBP, Section 3.4)."""

import numpy as np
import pytest

from repro.factorgraph.graph import FactorGraph, FactorTemplate, Variable
from repro.factorgraph.lbp import LoopyBP
from repro.factorgraph.partition import (
    assign_factors,
    component_subgraph,
    connected_components,
    partition_graph,
)


@pytest.fixture
def two_island_graph():
    """Two disconnected pairs plus an isolated variable."""
    graph = FactorGraph()
    template = FactorTemplate("U", ["agree"], initial_weights=[1.2])
    graph.add_template(template)
    table = np.array([[0.8], [0.2], [0.2], [0.8]])
    for island in ("a", "b"):
        graph.add_variable(Variable(f"{island}1", [0, 1]))
        graph.add_variable(Variable(f"{island}2", [0, 1]))
        graph.add_factor(f"u:{island}", template, [f"{island}1", f"{island}2"], table)
    graph.add_variable(Variable("lonely", [0, 1, 2]))
    return graph


class TestConnectedComponents:
    def test_components_found(self, two_island_graph):
        components = connected_components(two_island_graph)
        assert len(components) == 3
        assert frozenset({"a1", "a2"}) in components
        assert frozenset({"lonely"}) in components

    def test_sorted_largest_first(self, two_island_graph):
        components = connected_components(two_island_graph)
        sizes = [len(c) for c in components]
        assert sizes == sorted(sizes, reverse=True)

    def test_jocl_graph_decomposes(self, tiny_side):
        from repro.core import GraphBuilder, JOCLConfig

        graph, _index = GraphBuilder(tiny_side, JOCLConfig()).build()
        components = connected_components(graph)
        assert sum(len(c) for c in components) == len(graph.variables)


class TestSubgraphs:
    def test_subgraph_contents(self, two_island_graph):
        sub = component_subgraph(two_island_graph, frozenset({"a1", "a2"}))
        assert set(sub.variables) == {"a1", "a2"}
        assert set(sub.factors) == {"u:a"}

    def test_templates_shared_not_copied(self, two_island_graph):
        sub = component_subgraph(two_island_graph, frozenset({"a1", "a2"}))
        assert sub.templates["U"] is two_island_graph.templates["U"]

    def test_straddling_component_rejected(self, two_island_graph):
        with pytest.raises(ValueError):
            component_subgraph(two_island_graph, frozenset({"a1", "b1"}))

    def test_partition_marginals_equal_whole_graph(self, two_island_graph):
        whole = LoopyBP(two_island_graph, max_iterations=40).run()
        for sub in partition_graph(two_island_graph):
            part = LoopyBP(sub, max_iterations=40).run()
            for name in sub.variables:
                assert np.allclose(
                    part.marginal(name), whole.marginal(name), atol=1e-8
                )

    def test_partition_covers_everything(self, two_island_graph):
        subs = partition_graph(two_island_graph)
        variables = {name for sub in subs for name in sub.variables}
        factors = {name for sub in subs for name in sub.factors}
        assert variables == set(two_island_graph.variables)
        assert factors == set(two_island_graph.factors)


class TestAssignFactors:
    """The single-pass component -> factor assignment behind
    :func:`partition_graph` (no per-component graph rescan)."""

    def test_assignment_matches_rescan(self, two_island_graph):
        components = connected_components(two_island_graph)
        assigned = assign_factors(two_island_graph, components)
        assert len(assigned) == len(components)
        for component, factor_names in zip(components, assigned, strict=True):
            rescan = set(component_subgraph(two_island_graph, component).factors)
            assert set(factor_names) == rescan

    def test_every_factor_assigned_exactly_once(self, tiny_side):
        from repro.core import GraphBuilder, JOCLConfig

        graph, _index = GraphBuilder(tiny_side, JOCLConfig()).build()
        components = connected_components(graph)
        assigned = assign_factors(graph, components)
        flattened = [name for names in assigned for name in names]
        assert sorted(flattened) == sorted(graph.factors)

    def test_foreign_components_rejected(self, two_island_graph):
        with pytest.raises(ValueError):
            assign_factors(two_island_graph, [frozenset({"lonely"})])

    def test_straddling_components_rejected(self, two_island_graph):
        split = [
            frozenset({"a1", "b1", "lonely"}),
            frozenset({"a2", "b2"}),
        ]
        with pytest.raises(ValueError, match="straddles"):
            assign_factors(two_island_graph, split)

    def test_partition_equals_per_component_subgraphs(self, tiny_side):
        from repro.core import GraphBuilder, JOCLConfig

        graph, _index = GraphBuilder(tiny_side, JOCLConfig()).build()
        components = connected_components(graph)
        fast = partition_graph(graph)
        slow = [component_subgraph(graph, component) for component in components]
        assert len(fast) == len(slow)
        for fast_sub, slow_sub in zip(fast, slow, strict=True):
            assert set(fast_sub.variables) == set(slow_sub.variables)
            assert list(fast_sub.factors) == list(slow_sub.factors)
            for name in fast_sub.factors:
                assert np.array_equal(
                    fast_sub.factors[name].feature_table,
                    slow_sub.factors[name].feature_table,
                )
