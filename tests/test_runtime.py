"""Tests for the pluggable execution runtimes (:mod:`repro.runtime`).

The load-bearing promise: every shipped runtime is decision-for-decision
equivalent — same marginals (up to per-component early stopping), same
decoded clusters/links, byte-identical :class:`EngineReport` payloads —
while the :class:`ExecutionProfile` faithfully reports how differently
the work was executed.
"""

import json

import numpy as np
import pytest

from repro.api import (
    EngineBuildError,
    EngineReport,
    ExecutionProfile,
    JOCLEngine,
    SchemaError,
)
from repro.core import JOCLConfig
from repro.core.model import JOCL
from repro.datasets import ShardedOKBConfig, generate_sharded_reverb45k
from repro.factorgraph.graph import FactorGraph, FactorTemplate, Variable
from repro.factorgraph.lbp import LBPSettings, LoopyBP, merge_results
from repro.runtime import (
    InferenceTask,
    ParallelRuntime,
    PartitionedRuntime,
    SerialRuntime,
)

CONFIG = JOCLConfig(lbp_iterations=15)

RUNTIMES = [
    SerialRuntime(),
    PartitionedRuntime(),
    ParallelRuntime(max_workers=2),
    ParallelRuntime(max_workers=4),
]


@pytest.fixture(scope="module")
def islands_graph():
    """Three disconnected chain components plus an isolated variable."""
    graph = FactorGraph()
    template = FactorTemplate("U", ["agree"], initial_weights=[1.3])
    graph.add_template(template)
    table = np.array([[0.9], [0.1], [0.2], [0.8]])
    for island in ("a", "b", "c"):
        graph.add_variable(Variable(f"{island}1", [0, 1]))
        graph.add_variable(Variable(f"{island}2", [0, 1]))
        graph.add_variable(Variable(f"{island}3", [0, 1]))
        graph.add_factor(
            f"u:{island}:12", template, [f"{island}1", f"{island}2"], table
        )
        graph.add_factor(
            f"u:{island}:23", template, [f"{island}2", f"{island}3"], table
        )
    graph.add_variable(Variable("lonely", [0, 1, 2]))
    return graph


@pytest.fixture(scope="module")
def sharded_dataset():
    return generate_sharded_reverb45k(
        ShardedOKBConfig(n_shards=3, triples_per_shard=25, seed=11)
    )


@pytest.fixture(scope="module")
def sharded_side(sharded_dataset):
    return sharded_dataset.side_information("test")


def _engine(side, runtime=None):
    builder = (
        JOCLEngine.builder().with_side_information(side).with_config(CONFIG)
    )
    if runtime is not None:
        builder = builder.with_runtime(runtime)
    return builder.build()


# ----------------------------------------------------------------------
# The plan/execute/merge contract
# ----------------------------------------------------------------------
class TestContract:
    def test_serial_plans_one_unit(self, islands_graph):
        plan = SerialRuntime().plan(InferenceTask(graph=islands_graph))
        assert len(plan.components) == 1
        assert plan.components[0].graph is islands_graph

    def test_partitioned_plans_per_component(self, islands_graph):
        plan = PartitionedRuntime().plan(InferenceTask(graph=islands_graph))
        assert len(plan.components) == 4  # 3 chains + the isolated var
        sizes = [unit.n_variables for unit in plan.components]
        assert sizes == sorted(sizes, reverse=True)

    def test_profile_reports_execution_shape(self, islands_graph):
        outcome = ParallelRuntime(max_workers=3).run(
            InferenceTask(graph=islands_graph)
        )
        profile = outcome.profile
        assert profile.runtime == "parallel"
        assert profile.n_components == 4
        assert profile.component_sizes == (3, 3, 3, 1)
        assert len(profile.component_iterations) == 4
        assert profile.max_workers == 3
        assert profile.backend == "thread"
        assert profile.converged
        assert profile.wall_time_s >= 0.0
        assert profile.iterations == max(profile.component_iterations)

    def test_serial_profile_has_no_backend(self, islands_graph):
        outcome = SerialRuntime().run(InferenceTask(graph=islands_graph))
        assert outcome.profile.backend is None

    def test_evidence_clamped_per_component(self, islands_graph):
        """Evidence is filtered to each unit and matches whole-graph LBP."""
        evidence = {"a1": 1, "c3": 0}
        whole = LoopyBP(islands_graph, max_iterations=40).run(evidence)
        for runtime in RUNTIMES:
            merged = runtime.run(
                InferenceTask(
                    graph=islands_graph,
                    settings=LBPSettings(max_iterations=40),
                    evidence=evidence,
                )
            ).result
            assert merged.map_state("a1") == 1
            assert merged.map_state("c3") == 0
            for name in whole.marginals:
                assert np.allclose(
                    merged.marginal(name), whole.marginal(name), atol=1e-8
                )

    def test_empty_graph_equivalent_across_runtimes(self):
        empty = FactorGraph()
        baseline = SerialRuntime().run(InferenceTask(graph=empty))
        for runtime in RUNTIMES[1:]:
            outcome = runtime.run(InferenceTask(graph=empty))
            assert outcome.result.marginals == {}
            assert outcome.result.iterations == baseline.result.iterations
            assert outcome.result.converged == baseline.result.converged
            assert outcome.profile.n_components == 1

    def test_parallel_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            ParallelRuntime(max_workers=0)
        with pytest.raises(ValueError):
            ParallelRuntime(backend="gpu")

    def test_with_runtime_rejects_non_runtime(self):
        with pytest.raises(EngineBuildError):
            JOCLEngine.builder().with_runtime(object())

    def test_lbp_settings_validation(self):
        with pytest.raises(ValueError):
            LBPSettings(max_iterations=0)
        with pytest.raises(ValueError):
            LBPSettings(damping=1.0)

    def test_plan_inference_carries_config(self, small_side):
        model = JOCL(CONFIG)
        graph, _index, builder = model.build_graph(small_side)
        task = model.plan_inference(graph, builder)
        assert task.graph is graph
        assert task.settings.max_iterations == CONFIG.lbp_iterations
        assert task.settings.tolerance == CONFIG.lbp_tolerance

    def test_merge_results_validates_coverage(self, islands_graph):
        with pytest.raises(ValueError):
            merge_results([], islands_graph)
        other = FactorGraph()
        other.add_variable(Variable("elsewhere", [0, 1]))
        part = LoopyBP(other, max_iterations=2).run()
        with pytest.raises(ValueError):
            merge_results([part], islands_graph)


# ----------------------------------------------------------------------
# Equivalence: serial == partitioned == parallel
# ----------------------------------------------------------------------
class TestEquivalence:
    def test_marginals_equal_whole_graph_on_islands(self, islands_graph):
        whole = LoopyBP(islands_graph, max_iterations=40).run()
        for runtime in RUNTIMES[1:]:
            merged = runtime.run(
                InferenceTask(
                    graph=islands_graph,
                    settings=LBPSettings(max_iterations=40),
                )
            ).result
            assert set(merged.marginals) == set(whole.marginals)
            for name in whole.marginals:
                assert np.allclose(
                    merged.marginal(name), whole.marginal(name), atol=1e-8
                )

    @pytest.mark.parametrize("runtime", RUNTIMES[1:], ids=lambda r: r.name)
    def test_reports_byte_identical_on_reverb(self, small_side, runtime):
        """The acceptance bar: identical wire payloads vs SerialRuntime."""
        baseline = _engine(small_side, SerialRuntime()).run_joint()
        report = _engine(small_side, runtime).run_joint()
        assert report == baseline
        assert json.dumps(report.to_dict(), sort_keys=True) == json.dumps(
            baseline.to_dict(), sort_keys=True
        )

    def test_reports_identical_on_sharded_multicomponent(self, sharded_side):
        reports = [_engine(sharded_side, rt).run_joint() for rt in RUNTIMES]
        assert reports[1].profile.n_components >= 3  # truly multi-component
        payloads = {
            json.dumps(report.to_dict(), sort_keys=True) for report in reports
        }
        assert len(payloads) == 1

    def test_process_backend_identical(self, sharded_side):
        baseline = _engine(sharded_side, SerialRuntime()).run_joint()
        report = _engine(
            sharded_side, ParallelRuntime(max_workers=2, backend="process")
        ).run_joint()
        assert report == baseline

    def test_parallel_merge_is_deterministic(self, sharded_side):
        runtime = ParallelRuntime(max_workers=4)
        first = _engine(sharded_side, runtime).run_joint()
        second = _engine(sharded_side, runtime).run_joint()
        assert first.to_dict(include_profile=False) == second.to_dict(
            include_profile=False
        )

    def test_core_infer_accepts_runtime(self, small_side):
        serial_output = JOCL(CONFIG).infer(small_side)
        partitioned_output = JOCL(CONFIG).infer(
            small_side, runtime=PartitionedRuntime()
        )
        assert partitioned_output == serial_output
        assert partitioned_output.profile.runtime == "partitioned"


# ----------------------------------------------------------------------
# ExecutionProfile on the wire
# ----------------------------------------------------------------------
class TestProfileSerialization:
    def test_round_trip(self, small_side):
        report = _engine(small_side, ParallelRuntime(max_workers=2)).run_joint()
        profile = report.profile
        assert profile is not None
        assert ExecutionProfile.from_dict(profile.to_dict()) == profile

    def test_report_payload_excludes_profile_by_default(self, small_side):
        report = _engine(small_side, ParallelRuntime(max_workers=2)).run_joint()
        assert "profile" not in report.to_dict()
        restored = EngineReport.from_dict(report.to_dict())
        assert restored == report
        assert restored.profile is None

    def test_report_payload_includes_profile_on_request(self, small_side):
        report = _engine(small_side, ParallelRuntime(max_workers=2)).run_joint()
        payload = json.loads(json.dumps(report.to_dict(include_profile=True)))
        restored = EngineReport.from_dict(payload)
        assert restored == report
        assert restored.profile == report.profile

    def test_malformed_profile_payload(self):
        with pytest.raises(SchemaError):
            ExecutionProfile.from_dict({"schema_version": 1, "type": "execution_profile"})
        with pytest.raises(SchemaError):
            ExecutionProfile.from_dict(
                {
                    "schema_version": 1,
                    "type": "execution_profile",
                    "runtime": "serial",
                    "component_sizes": "not-a-list-of-ints",
                }
            )


# ----------------------------------------------------------------------
# Engine integration: last_profile and batched serving
# ----------------------------------------------------------------------
class TestEngineIntegration:
    def test_last_profile_lifecycle(self, small_dataset, small_side):
        engine = _engine(small_side, PartitionedRuntime())
        assert engine.last_profile() is None
        engine.run_joint()
        profile = engine.last_profile()
        assert profile is not None and profile.runtime == "partitioned"
        assert engine.runtime.name == "partitioned"

    def test_default_runtime_is_serial(self, small_side):
        engine = _engine(small_side)
        engine.run_joint()
        assert engine.last_profile().runtime == "serial"

    def test_resolve_many_matches_per_mention_loop(self, small_dataset, small_side):
        engine = _engine(small_side, ParallelRuntime(max_workers=2))
        mentions = [triple.subject for triple in small_dataset.test_triples[:12]]
        assert engine.resolve_many(mentions) == [
            engine.resolve(mention) for mention in mentions
        ]

    def test_resolve_many_respects_kind(self, small_dataset, small_side):
        engine = _engine(small_side)
        mentions = [triple.predicate for triple in small_dataset.test_triples[:5]]
        batch = engine.resolve_many(mentions, kind="relation")
        assert batch == [engine.resolve(m, kind="relation") for m in mentions]
        assert all(answer.kind == "P" for answer in batch)

    def test_resolve_many_unknown_mention(self, small_side):
        from repro.api import UnknownMentionError

        engine = _engine(small_side)
        with pytest.raises(UnknownMentionError):
            engine.resolve_many(["definitely not an okb phrase 42"])

    def test_resolve_many_empty_batch(self, small_side):
        assert _engine(small_side).resolve_many([]) == []


# ----------------------------------------------------------------------
# The sharded workload generator
# ----------------------------------------------------------------------
class TestShardedDataset:
    def test_shards_have_disjoint_surfaces(self, sharded_dataset):
        by_shard: dict[str, set[str]] = {}
        for triple in sharded_dataset.triples:
            shard = triple.triple_id.split(":", 1)[0]
            by_shard.setdefault(shard, set()).update(triple.as_tuple())
        shards = sorted(by_shard)
        assert len(shards) == 3
        for i, first in enumerate(shards):
            for second in shards[i + 1 :]:
                assert not by_shard[first] & by_shard[second]

    def test_gold_ids_resolve_against_merged_kb(self, sharded_dataset):
        kb = sharded_dataset.kb
        for triple in sharded_dataset.triples:
            gold = triple.gold
            assert gold is not None
            if gold.subject_entity is not None:
                assert gold.subject_entity in kb.entities
            if gold.relation is not None:
                assert gold.relation in kb.relations

    def test_graph_decomposes_per_shard(self, sharded_side):
        from repro.core import GraphBuilder
        from repro.factorgraph.partition import connected_components

        graph, _index = GraphBuilder(sharded_side, CONFIG).build()
        assert len(connected_components(graph)) >= 3

    def test_relation_slices_must_fit_catalog(self):
        with pytest.raises(ValueError):
            ShardedOKBConfig(n_shards=9, relations_per_shard=3)


# ----------------------------------------------------------------------
# Executor lifecycle: pools shut down (and cancel) on every error path
# ----------------------------------------------------------------------
class TestExecutorLifecycle:
    @staticmethod
    def _leaked_since(baseline):
        import threading

        return [
            thread
            for thread in threading.enumerate()
            if thread.ident not in baseline and thread.is_alive()
        ]

    def test_scatter_propagates_first_failure_in_submission_order(self):
        from repro.runtime.pool import scatter

        def boom(message):
            raise RuntimeError(message)

        with pytest.raises(RuntimeError, match="first"):
            scatter(
                [
                    lambda: 1,
                    lambda: boom("first"),
                    lambda: boom("second"),
                ],
                max_workers=3,
            )

    def test_scatter_failure_leaves_no_pool_threads_behind(self):
        import threading

        from repro.runtime.pool import scatter

        baseline = {thread.ident for thread in threading.enumerate()}
        with pytest.raises(RuntimeError, match="injected"):
            scatter(
                [lambda: 1]
                + [lambda: (_ for _ in ()).throw(RuntimeError("injected"))]
                + [lambda: 2, lambda: 3],
                max_workers=2,
            )
        assert self._leaked_since(baseline) == []

    def test_scatter_cancels_the_queued_remainder_after_a_failure(self):
        import threading
        import time

        from repro.runtime.pool import scatter

        ran = []
        first_counter_done = threading.Event()

        def failing():
            # Fail only once the other worker is demonstrably churning,
            # so cancellation has a queue to act on.
            assert first_counter_done.wait(5)
            raise RuntimeError("boom")

        def counter(index):
            time.sleep(0.005)
            ran.append(index)
            first_counter_done.set()

        tasks = [failing] + [
            lambda index=index: counter(index) for index in range(100)
        ]
        with pytest.raises(RuntimeError, match="boom"):
            scatter(tasks, max_workers=2)
        assert ran  # work had started before the failure surfaced
        assert len(ran) < 100  # ... and the queued remainder was cancelled

    def test_parallel_runtime_failure_shuts_down_and_recovers(
        self, islands_graph, monkeypatch
    ):
        import threading

        import repro.runtime.parallel as parallel_mod

        real_run_unit = parallel_mod._run_unit

        def injected_failure(payload):
            raise RuntimeError("injected unit failure")

        monkeypatch.setattr(parallel_mod, "_run_unit", injected_failure)
        runtime = ParallelRuntime(max_workers=3)
        baseline = {thread.ident for thread in threading.enumerate()}
        with pytest.raises(RuntimeError, match="injected unit failure"):
            runtime.run(InferenceTask(graph=islands_graph))
        assert self._leaked_since(baseline) == []

        # The runtime instance stays serviceable: pools are per-run, so
        # a failed run must not poison the next one.
        monkeypatch.setattr(parallel_mod, "_run_unit", real_run_unit)
        outcome = runtime.run(InferenceTask(graph=islands_graph))
        assert outcome.profile.n_components == 4
        assert self._leaked_since(baseline) == []
