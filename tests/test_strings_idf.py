"""Tests for IDF statistics and IDF token overlap (Section 3.1.3)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.strings.idf import IdfStatistics, idf_token_overlap

PHRASES = [
    "university of maryland",
    "university of virginia",
    "maryland",
    "bank of maryland",
    "warren buffett",
    "buffett",
]


@pytest.fixture
def stats():
    return IdfStatistics(PHRASES)


class TestIdfStatistics:
    def test_frequency_counts_occurrences(self, stats):
        assert stats.frequency("maryland") == 3
        assert stats.frequency("of") == 3
        assert stats.frequency("buffett") == 2
        assert stats.frequency("virginia") == 1

    def test_unseen_word_frequency_zero(self, stats):
        assert stats.frequency("zebra") == 0

    def test_weight_decreases_with_frequency(self, stats):
        assert stats.weight("virginia") > stats.weight("maryland")

    def test_unseen_word_weight_is_max(self, stats):
        assert stats.weight("zebra") == pytest.approx(1.0 / math.log(2.0))

    def test_contains(self, stats):
        assert "maryland" in stats
        assert "zebra" not in stats

    def test_update_extends(self):
        stats = IdfStatistics(["alpha"])
        stats.update(["alpha beta"])
        assert stats.frequency("alpha") == 2
        assert stats.frequency("beta") == 1

    def test_vocabulary_and_total(self, stats):
        # university, of, maryland, virginia, bank, warren, buffett
        assert stats.vocabulary_size == 7
        assert stats.total_tokens == 13

    def test_case_insensitive(self, stats):
        assert stats.frequency("MARYLAND") == 3


class TestIdfTokenOverlap:
    def test_identical_phrases(self, stats):
        assert idf_token_overlap("maryland", "maryland", stats) == 1.0

    def test_disjoint_phrases(self, stats):
        assert idf_token_overlap("maryland", "buffett", stats) == 0.0

    def test_rare_shared_word_scores_high(self, stats):
        # "buffett" (frequency 2) outweighs "warren" (frequency 1 but
        # absent from the intersection); the score clearly exceeds the
        # frequent-token-only overlap below.
        rare = idf_token_overlap("warren buffett", "buffett", stats)
        frequent = idf_token_overlap("bank of maryland", "university of virginia", stats)
        assert rare > 0.3
        assert rare > frequent

    def test_frequent_shared_word_scores_low(self, stats):
        # Sharing only "of" and "university" (both frequent).
        high = idf_token_overlap("university of maryland", "university of virginia", stats)
        rare = idf_token_overlap("warren buffett", "buffett", stats)
        assert high < 1.0
        assert rare > 0.0

    def test_empty_phrases(self, stats):
        assert idf_token_overlap("", "", stats) == 0.0
        assert idf_token_overlap("maryland", "", stats) == 0.0

    def test_symmetry(self, stats):
        a, b = "university of maryland", "bank of maryland"
        assert idf_token_overlap(a, b, stats) == idf_token_overlap(b, a, stats)

    @given(
        st.text(alphabet="abc de", max_size=20),
        st.text(alphabet="abc de", max_size=20),
    )
    def test_bounds(self, first, second):
        stats = IdfStatistics(PHRASES)
        score = idf_token_overlap(first, second, stats)
        assert 0.0 <= score <= 1.0

    @given(st.text(alphabet="abcde ", min_size=1, max_size=20))
    def test_self_similarity_is_one_when_tokenizable(self, phrase):
        stats = IdfStatistics([phrase])
        from repro.strings.tokenize import tokenize

        if tokenize(phrase):
            assert idf_token_overlap(phrase, phrase, stats) == pytest.approx(1.0)
