"""EXC checker fixtures: true positives, true negatives, the repo gate.

Each fixture is a minimal module exercising one pattern the checker
must flag (or must not).  Paths are synthetic but inside the checker's
scope (``src/repro/api/``)."""

from __future__ import annotations

import textwrap
from pathlib import Path

from tools.analyzers.core import Suppressions, parse_module
from tools.analyzers.exceptions import ExceptionContractCheck
from tools.analyzers.runner import run_checks

CHECK = ExceptionContractCheck()


def findings_of(source: str, path: str = "src/repro/api/fixture.py"):
    source = textwrap.dedent(source)
    module = parse_module(path, source)
    return Suppressions(source).apply(list(CHECK.run(module)))


def codes_of(source: str, path: str = "src/repro/api/fixture.py"):
    return [finding.code for finding in findings_of(source, path)]


# ----------------------------------------------------------------------
# Scope
# ----------------------------------------------------------------------
def test_only_public_surface_packages_are_in_scope():
    assert CHECK.interested("src/repro/api/engine.py")
    assert CHECK.interested("src/repro/serving/service.py")
    assert CHECK.interested("src/repro/cluster/router.py")
    assert not CHECK.interested("src/repro/okb/store.py")
    assert not CHECK.interested("src/repro/runtime/pool.py")
    assert not CHECK.interested("tools/analyzers/core.py")


# ----------------------------------------------------------------------
# True positives
# ----------------------------------------------------------------------
RAW_RAISE_IN_PUBLIC_METHOD = """
    class Engine:
        def resolve(self, mention):
            if not mention:
                raise ValueError("mention must be non-empty")
            return mention
"""


def test_tp_public_method_raising_raw_builtin():
    findings = findings_of(RAW_RAISE_IN_PUBLIC_METHOD)
    assert [f.code for f in findings] == ["EXC01"]
    assert "Engine.resolve" in findings[0].message
    assert "ValueError" in findings[0].message


RAW_RAISE_IN_MODULE_FUNCTION = """
    def router_from_state(payload):
        if "type" not in payload:
            raise KeyError("type")
        return payload["type"]
"""


def test_tp_public_module_function_raising_raw_builtin():
    assert codes_of(RAW_RAISE_IN_MODULE_FUNCTION) == ["EXC01"]


RAW_RAISE_IN_NESTED_DEF = """
    class Service:
        def checkpoint(self, store):
            def ensure(value):
                if value is None:
                    raise RuntimeError("no store configured")
                return value

            return ensure(store)
"""


def test_tp_nested_def_inside_public_method_is_included():
    findings = findings_of(RAW_RAISE_IN_NESTED_DEF)
    assert [f.code for f in findings] == ["EXC01"]
    assert "Service.checkpoint" in findings[0].message


RAW_RAISE_IN_DUNDER = """
    class Service:
        def __init__(self, max_batch_size):
            if max_batch_size < 1:
                raise ValueError("max_batch_size must be >= 1")
"""


def test_tp_dunder_init_counts_as_public():
    assert codes_of(RAW_RAISE_IN_DUNDER) == ["EXC01"]


# ----------------------------------------------------------------------
# True negatives
# ----------------------------------------------------------------------
PROJECT_ERROR_RAISE = """
    from repro.api.errors import InvalidRequestError

    class Engine:
        def resolve(self, mention):
            if not mention:
                raise InvalidRequestError("mention must be non-empty")
            return mention
"""


def test_tn_project_hierarchy_raise_is_fine():
    assert codes_of(PROJECT_ERROR_RAISE) == []


PRIVATE_HELPERS = """
    class Engine:
        def _validate(self, mention):
            if not mention:
                raise ValueError("mention must be non-empty")

    class _Support:
        def check(self):
            raise RuntimeError("internal invariant")

    def _ensure(value):
        if value is None:
            raise KeyError("value")
"""


def test_tn_private_functions_classes_and_methods_are_not_flagged():
    assert codes_of(PRIVATE_HELPERS) == []


RERAISE_AND_VARIABLE = """
    class Engine:
        def resolve(self, mention):
            try:
                return self._decode(mention)
            except KeyError as error:
                err = error
                raise err

        def run(self):
            try:
                return self._go()
            except Exception:
                raise
"""


def test_tn_reraise_of_caught_variable_and_bare_raise_never_fire():
    assert codes_of(RERAISE_AND_VARIABLE) == []


NOT_IMPLEMENTED_CONTRACT = """
    class Runtime:
        def execute(self, plan):
            raise NotImplementedError
"""


def test_tn_not_implemented_error_declares_an_abstract_contract():
    assert codes_of(NOT_IMPLEMENTED_CONTRACT) == []


def test_tn_out_of_scope_path_is_never_visited():
    assert not CHECK.interested("src/repro/core/model.py")


# ----------------------------------------------------------------------
# Suppression integration
# ----------------------------------------------------------------------
def test_inline_suppression_silences_exc01():
    source = RAW_RAISE_IN_PUBLIC_METHOD.replace(
        'raise ValueError("mention must be non-empty")',
        'raise ValueError("x")  # repro: disable=EXC01 -- doc example',
    )
    assert codes_of(source) == []


# ----------------------------------------------------------------------
# The repo gate: the public surface is already clean (no baseline debt)
# ----------------------------------------------------------------------
def test_repo_public_surface_has_no_exc01_findings():
    repo_src = Path(__file__).resolve().parents[1] / "src"
    files = sorted(repo_src.rglob("*.py"))
    findings = [
        finding
        for finding in run_checks(files, checks=[CHECK])
        if finding.code == "EXC01"
    ]
    assert findings == []
