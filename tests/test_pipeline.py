"""Tests for the end-to-end pipeline and the experiment harness."""

import pytest

from repro.baselines import MorphNormBaseline, SpotlightBaseline
from repro.core.config import JOCLConfig
from repro.core.variants import jocl_cano_config, jocl_link_config
from repro.pipeline.experiment import (
    CanonicalizationRow,
    LinkingRow,
    format_table,
    run_canonicalization_systems,
    run_linking_systems,
    score_clustering,
)
from repro.pipeline.jocl_pipeline import JOCLPipeline


@pytest.fixture(scope="module")
def fast_config():
    return JOCLConfig(lbp_iterations=10, learn_iterations=2)


class TestJOCLPipeline:
    def test_run_trains_and_evaluates(self, small_dataset, fast_config):
        pipeline = JOCLPipeline.from_dataset(small_dataset, fast_config)
        result = pipeline.run()
        assert result.trained
        assert 0.0 <= result.np_report.average_f1 <= 1.0
        assert 0.0 <= result.entity_accuracy <= 1.0
        summary = result.summary()
        assert set(summary) == {
            "np_average_f1",
            "rp_average_f1",
            "entity_accuracy",
            "relation_accuracy",
        }

    def test_run_without_training(self, small_dataset, fast_config):
        pipeline = JOCLPipeline.from_dataset(small_dataset, fast_config, train=False)
        result = pipeline.run()
        assert not result.trained

    def test_pipeline_beats_trivial_floor(self, small_dataset, fast_config):
        result = JOCLPipeline.from_dataset(small_dataset, fast_config).run()
        assert result.np_report.average_f1 > 0.5
        assert result.entity_accuracy > 0.5

    def test_empty_test_split_returns_empty_result(self, small_dataset, fast_config):
        """Historical behavior: an empty split decodes to empty output."""
        from repro.datasets.base import Dataset, EvaluationGold

        empty = Dataset(
            name="empty",
            world=small_dataset.world,
            triples=[],
            kb=small_dataset.kb,
            anchors=small_dataset.anchors,
            ppdb=small_dataset.ppdb,
            gold=EvaluationGold.from_triples([]),
        )
        result = JOCLPipeline.from_dataset(empty, fast_config).run()
        assert not result.trained
        assert len(result.output.np_clusters) == 0
        assert result.output.entity_links == {}
        # Historical shape: an empty graph counts as converged.
        assert result.output.converged
        assert result.output.iterations == 1

    def test_ablation_order(self, small_dataset, fast_config):
        """Table 4 shape: full JOCL >= each single-task variant."""
        full = JOCLPipeline.from_dataset(small_dataset, fast_config).run()
        cano = JOCLPipeline.from_dataset(
            small_dataset, jocl_cano_config(fast_config)
        ).run()
        link = JOCLPipeline.from_dataset(
            small_dataset, jocl_link_config(fast_config)
        ).run()
        assert full.np_report.average_f1 >= cano.np_report.average_f1 - 1e-9
        assert full.entity_accuracy >= link.entity_accuracy - 0.02


class TestExperimentHarness:
    def test_run_canonicalization_systems(self, small_dataset, small_side):
        rows = run_canonicalization_systems(
            [MorphNormBaseline()], small_side, small_dataset.gold.np_clusters, "S"
        )
        assert len(rows) == 1
        assert rows[0].system == "Morph Norm"
        assert 0.0 <= rows[0].average_f1 <= 1.0

    def test_run_linking_systems_skips_non_relation_linkers(
        self, small_dataset, small_side
    ):
        rows = run_linking_systems(
            [SpotlightBaseline()],
            small_side,
            small_dataset.gold.relation_links,
            task="relation",
        )
        assert rows == []  # Spotlight links entities only

    def test_format_table(self):
        rows = [
            CanonicalizationRow("Morph Norm", 0.5, 0.6, 0.7, 0.6),
            CanonicalizationRow("JOCL", 0.9, 0.9, 0.9, 0.9),
        ]
        text = format_table("Table X", rows)
        assert "Table X" in text
        assert "*JOCL*" in text
        assert "0.900" in text

    def test_format_linking_table(self):
        text = format_table("T", [LinkingRow("Spotlight", 0.71)], highlight=None)
        assert "0.710" in text

    def test_format_empty(self):
        assert "(no rows)" in format_table("T", [])

    def test_score_clustering_row(self, small_dataset, small_side):
        predicted = MorphNormBaseline().cluster(small_side, "S")
        row = score_clustering("m", predicted, small_dataset.gold.np_clusters)
        assert row.system == "m"
