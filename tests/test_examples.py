"""The example scripts must at least compile and expose a main(),
and the package docstring's quickstart must actually run."""

import ast
import importlib.util
import textwrap
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


def test_package_quickstart_docstring_runs(capsys):
    """The ``Quickstart::`` block in ``repro.__doc__`` is executable.

    Guards against the docstring drifting from the real API (it used to
    print attributes that did not exist on the advertised result type).
    """
    import repro

    _, _, block = repro.__doc__.partition("Quickstart::")
    assert block, "repro.__doc__ lost its Quickstart:: section"
    code = textwrap.dedent(block)
    exec(compile(code, "repro-quickstart", "exec"), {})
    printed = capsys.readouterr().out
    assert "Clustering(" in printed  # the advertised np_clusters repr


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_parses(path):
    tree = ast.parse(path.read_text(encoding="utf-8"))
    functions = {
        node.name for node in ast.walk(tree) if isinstance(node, ast.FunctionDef)
    }
    assert "main" in functions
    assert ast.get_docstring(tree), "examples must be documented"


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_imports_resolve(path):
    """Import the module (without running main) so broken imports fail."""
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    # Guard: examples run main() only under __main__.
    spec.loader.exec_module(module)
    assert hasattr(module, "main")


def test_cluster_serving_example_runs(capsys):
    """The scale-out walkthrough actually exercises its claims:
    cluster decisions identical to the single engine, threaded answers
    equal to the serial loop, warm splice after restore."""
    path = Path(__file__).parent.parent / "examples" / "cluster_serving.py"
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    printed = capsys.readouterr().out
    assert "decisions identical to the single engine = True" in printed
    assert "identical to serial loop = True" in printed
    assert "decisions identical = True, all shards spliced warm = True" in printed


def test_checkpoint_serving_example_runs(capsys):
    """The durability walkthrough actually exercises its claims:
    identical decisions after restore, live incremental state, threaded
    answers equal to the serial loop."""
    path = Path(__file__).parent.parent / "examples" / "checkpoint_serving.py"
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    printed = capsys.readouterr().out
    assert "decisions identical = True" in printed
    assert "identical to serial loop = True" in printed
    assert "rolled back" in printed


def test_http_serving_example_runs(capsys):
    """The network walkthrough actually exercises its claims: wire
    answers identical to the in-process engine, the batching window
    coalescing concurrent load, the durability cycle over HTTP, and a
    clean drain on shutdown."""
    path = Path(__file__).parent.parent / "examples" / "http_serving.py"
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    printed = capsys.readouterr().out
    assert "HTTP answer identical to in-process = True" in printed
    assert "coalesced under load = True" in printed
    assert "rolled back" in printed
    assert "drained cleanly = True" in printed
