"""Behavioral tests of :mod:`repro.cluster` and the cluster service.

The load-bearing claims:

* a cluster over a domain-partitioned workload makes decisions
  *identical* to one engine over the union — at build time, after
  routed ingest (both arrival regimes, including the cross-shard
  vocabulary-drift broadcast), and after a save/load round trip;
* routing is deterministic and ``PYTHONHASHSEED``-independent;
* scatter/gather resolve answers match the single engine's;
* the session layer's per-shard locking never changes answers.
"""

import json
import threading

import pytest

from repro.api import JOCLEngine
from repro.api.errors import (
    CheckpointError,
    EngineBuildError,
    EngineStateError,
    IngestError,
    SchemaError,
    SchemaVersionError,
    UnknownMentionError,
)
from repro.api.results import EngineStats
from repro.cluster import (
    ClusterReport,
    ClusterStats,
    HashShardRouter,
    IngestReport,
    ShardedEngine,
    VocabularyAffinityRouter,
    merge_shard_outputs,
    router_from_state,
    stable_hash,
)
from repro.core import JOCLConfig
from repro.datasets import (
    StreamingIngestConfig,
    generate_streaming_ingest,
    shard_partition,
)
from repro.okb.store import OpenKB
from repro.okb.triples import OIETriple
from repro.persist import FileStateStore, SQLiteStateStore
from repro.runtime import IncrementalRuntime
from repro.serving import JOCLClusterService

CONFIG = JOCLConfig(lbp_iterations=15)


def _workload(arrivals="repeat", n_shards=2, per_shard=40, seed=7):
    return generate_streaming_ingest(
        StreamingIngestConfig(
            n_shards=n_shards,
            triples_per_shard=per_shard,
            entities_per_shard=30,
            facts_per_shard=65,
            seed=seed,
            arrivals=arrivals,
        )
    )


def _single(workload, runtime=None):
    dataset = workload.dataset
    builder = (
        JOCLEngine.builder()
        .with_ckb(dataset.kb)
        .with_anchors(dataset.anchors)
        .with_ppdb(dataset.ppdb)
        .with_config(CONFIG)
        .with_triples(workload.seed_triples)
    )
    if runtime is not None:
        builder = builder.with_runtime(runtime)
    return builder.build()


def _cluster(workload, router=None, runtime_factory=None):
    dataset = workload.dataset
    builder = (
        ShardedEngine.builder()
        .with_ckb(dataset.kb)
        .with_anchors(dataset.anchors)
        .with_ppdb(dataset.ppdb)
        .with_config(CONFIG)
        .with_shard_triples(shard_partition(workload.seed_triples))
    )
    if router is not None:
        builder = builder.with_router(router)
    if runtime_factory is not None:
        builder = builder.with_runtime_factory(runtime_factory)
    return builder.build()


def _decisions(canonicalization, linking):
    return json.dumps(
        {"c": canonicalization.to_dict(), "l": linking.to_dict()},
        sort_keys=True,
    )


def _triple(triple_id, subject, predicate, obj):
    return OIETriple(
        triple_id=triple_id, subject=subject, predicate=predicate, object=obj
    )


# ----------------------------------------------------------------------
# Routers
# ----------------------------------------------------------------------
class TestRouters:
    def test_stable_hash_is_process_independent(self):
        # Pinned value: must never depend on PYTHONHASHSEED.
        assert stable_hash("university of maryland") == stable_hash(
            "university of maryland"
        )
        assert stable_hash("a") != stable_hash("b")

    def test_hash_router_routes_by_subject(self):
        router = HashShardRouter()
        shards = [OpenKB(()) for _ in range(4)]
        first = _triple("t1", "Alice", "works at", "Acme")
        second = _triple("t2", "Alice", "lives in", "Berlin")
        assert router.route_triple(first, shards) == router.route_triple(
            second, shards
        )

    def test_affinity_router_follows_vocabulary(self):
        router = VocabularyAffinityRouter()
        known = OpenKB([_triple("t1", "alice", "works at", "acme")])
        empty = OpenKB(())
        triple = _triple("t2", "alice", "works at", "acme labs")
        assert router.route_triple(triple, [empty, known]) == 1
        assert router.route_triple(triple, [known, empty]) == 0

    def test_affinity_router_tie_breaks_deterministically(self):
        router = VocabularyAffinityRouter()
        shards = [OpenKB(()) for _ in range(4)]
        triple = _triple("t1", "unseen phrase", "never seen", "also unseen")
        first = router.route_triple(triple, shards)
        assert router.route_triple(triple, shards) == first
        assert 0 <= first < 4

    def test_candidate_shards_exact_membership(self):
        router = HashShardRouter()
        shard_a = OpenKB([_triple("t1", "alice", "works at", "acme")])
        shard_b = OpenKB([_triple("t2", "bob", "works at", "initech")])
        shards = [shard_a, shard_b]
        assert router.candidate_shards("alice", ("S", "O"), shards) == (0,)
        assert router.candidate_shards("works at", ("P",), shards) == (0, 1)
        assert router.candidate_shards("alice", ("P",), shards) == ()
        assert router.candidate_shards("nobody", ("S", "P", "O"), shards) == ()

    def test_candidate_shards_are_slot_exact(self):
        """Regression: a shard holding the phrase only as an *object*
        used to be a candidate for a subject-restricted query, and its
        engine then failed the whole scatter with UnknownMentionError."""
        router = HashShardRouter()
        object_only = OpenKB([_triple("t1", "acme corp", "acquired", "widgetco")])
        subject_too = OpenKB([_triple("t2", "widgetco", "is based in", "berlin")])
        shards = [object_only, subject_too]
        assert router.candidate_shards("widgetco", ("S",), shards) == (1,)
        assert router.candidate_shards("widgetco", ("O",), shards) == (0,)
        assert router.candidate_shards("widgetco", ("S", "O"), shards) == (0, 1)

    def test_router_state_round_trip(self):
        for router in (HashShardRouter(), VocabularyAffinityRouter()):
            restored = router_from_state(router.to_state())
            assert type(restored) is type(router)

    def test_router_from_state_rejects_unknown_type(self):
        with pytest.raises(ValueError, match="unknown shard router"):
            router_from_state({"type": "no-such-router"})


# ----------------------------------------------------------------------
# Builder validation
# ----------------------------------------------------------------------
class TestClusterBuilder:
    def test_requires_ckb(self):
        with pytest.raises(EngineBuildError, match="curated KB"):
            ShardedEngine.builder().with_n_shards(2).build()

    def test_stream_and_partition_are_exclusive(self, workload):
        builder = (
            ShardedEngine.builder()
            .with_ckb(workload.dataset.kb)
            .with_triples(workload.seed_triples[:2])
            .with_shard_triples([workload.seed_triples[2:4]])
        )
        with pytest.raises(EngineBuildError, match="mutually exclusive"):
            builder.build()

    def test_n_shards_conflict(self, workload):
        builder = (
            ShardedEngine.builder()
            .with_ckb(workload.dataset.kb)
            .with_n_shards(3)
            .with_shard_triples(shard_partition(workload.seed_triples))
        )
        with pytest.raises(EngineBuildError, match="conflicts"):
            builder.build()

    def test_rejects_non_router(self, workload):
        with pytest.raises(EngineBuildError, match="ShardRouter"):
            ShardedEngine.builder().with_router(object())

    def test_runtime_factory_must_produce_runtimes(self, workload):
        builder = (
            ShardedEngine.builder()
            .with_ckb(workload.dataset.kb)
            .with_n_shards(2)
            .with_triples(workload.seed_triples[:4])
            .with_runtime_factory(lambda: "not a runtime")
        )
        with pytest.raises(EngineBuildError, match="InferenceRuntime"):
            builder.build()

    def test_duplicate_ids_rejected_across_shards(self, workload):
        """Regression: a duplicate id whose copies route to *different*
        shards used to slip past the per-shard engines' checks."""
        first = _triple("dup", "alice", "works at", "acme")
        second = _triple("dup", "bob", "works at", "initech")
        with pytest.raises(EngineBuildError, match="duplicate triple id"):
            (
                ShardedEngine.builder()
                .with_ckb(workload.dataset.kb)
                .with_n_shards(4)
                .with_triples([first, second])
                .build()
            )
        with pytest.raises(EngineBuildError, match="duplicate triple id"):
            (
                ShardedEngine.builder()
                .with_ckb(workload.dataset.kb)
                .with_shard_triples([[first], [second]])
                .build()
            )

    def test_routed_stream_covers_every_triple(self, workload):
        cluster = (
            ShardedEngine.builder()
            .with_ckb(workload.dataset.kb)
            .with_n_shards(3)
            .with_triples(workload.seed_triples)
            .build()
        )
        stats = cluster.stats()
        assert stats.n_shards == 3
        assert stats.n_triples == len(workload.seed_triples)


# ----------------------------------------------------------------------
# Equivalence with a single engine
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def workload():
    return _workload()


@pytest.fixture(scope="module")
def single_report(workload):
    engine = _single(workload)
    return engine.run_joint(), engine


@pytest.fixture(scope="module")
def cluster_and_report(workload):
    cluster = _cluster(
        workload,
        router=VocabularyAffinityRouter(),
        runtime_factory=IncrementalRuntime,
    )
    return cluster, cluster.run_joint()


class TestClusterEquivalence:
    def test_seed_decisions_identical(self, single_report, cluster_and_report):
        report, _engine = single_report
        _cluster_engine, cluster_report = cluster_and_report
        assert _decisions(
            cluster_report.canonicalization, cluster_report.linking
        ) == _decisions(report.canonicalization, report.linking)

    def test_report_carries_per_shard_drill_down(self, cluster_and_report):
        cluster, report = cluster_and_report
        assert report.n_shards == cluster.n_shards
        assert sum(s.stats.n_triples for s in report.shards) == (
            cluster.stats().n_triples
        )

    def test_resolve_matches_single_engine(
        self, workload, single_report, cluster_and_report
    ):
        _report, engine = single_report
        cluster, _cluster_report = cluster_and_report
        mentions = [t.subject for t in workload.seed_triples[:12]]
        mentions += [t.predicate for t in workload.seed_triples[:6]]
        for mention in mentions:
            assert (
                cluster.resolve(mention).to_dict()
                == engine.resolve(mention).to_dict()
            )

    def test_resolve_many_matches_resolve_loop(
        self, workload, cluster_and_report
    ):
        cluster, _report = cluster_and_report
        mentions = [t.object for t in workload.seed_triples[:10]]
        batched = cluster.resolve_many(mentions)
        looped = [cluster.resolve(m) for m in mentions]
        assert [r.to_dict() for r in batched] == [r.to_dict() for r in looped]

    def test_resolve_many_accepts_generators(
        self, workload, cluster_and_report
    ):
        """Regression: the mentions iterable used to be consumed twice,
        so a generator input crashed with KeyError instead of
        resolving."""
        cluster, _report = cluster_and_report
        mentions = [t.subject for t in workload.seed_triples[:4]]
        from_generator = cluster.resolve_many(m for m in mentions)
        from_list = cluster.resolve_many(mentions)
        assert [r.to_dict() for r in from_generator] == [
            r.to_dict() for r in from_list
        ]

    def test_unknown_mention_raises(self, cluster_and_report):
        cluster, _report = cluster_and_report
        with pytest.raises(UnknownMentionError):
            cluster.resolve("no such phrase anywhere")
        with pytest.raises(UnknownMentionError):
            cluster.resolve_many(["no such phrase anywhere"])

    def test_kind_filter_respected(self, workload, cluster_and_report):
        cluster, _report = cluster_and_report
        predicate = workload.seed_triples[0].predicate
        answer = cluster.resolve(predicate, kind="relation")
        assert answer.kind == "P"
        with pytest.raises(UnknownMentionError):
            cluster.resolve(predicate, kind="entity")

    def test_slot_restricted_resolve_with_cross_shard_roles(self, workload):
        """Regression: a subject-restricted resolve used to fail when
        another shard held the mention only as an object (its engine
        raised UnknownMentionError and the scatter propagated it)."""
        cluster = (
            ShardedEngine.builder()
            .with_ckb(workload.dataset.kb)
            .with_config(CONFIG)
            .with_shard_triples(
                [
                    [_triple("x1", "acme corp", "acquired", "widgetco")],
                    [_triple("x2", "widgetco", "is based in", "berlin")],
                ]
            )
            .build()
        )
        answer = cluster.resolve("widgetco", kind="S")
        assert answer.kind == "S"
        service = JOCLClusterService(cluster)
        assert service.resolve("widgetco", kind="S").kind == "S"


@pytest.mark.parametrize("arrivals", ["repeat", "raw"])
def test_ingest_decisions_identical(arrivals):
    """Routed shard-parallel ingest stays decision-identical to one
    engine ingesting everything — including the ``raw`` regime, where
    new vocabulary entering one shard re-weights the corpus-global IDF
    tables and the drift broadcast must invalidate *other* shards."""
    workload = _workload(arrivals=arrivals)
    single = _single(workload, runtime=IncrementalRuntime())
    single.run_joint()
    cluster = _cluster(
        workload,
        router=VocabularyAffinityRouter(),
        runtime_factory=IncrementalRuntime,
    )
    cluster.run_joint()
    for batch in workload.batches:
        single.ingest(batch)
        report = cluster.ingest(batch)
        assert report.n_triples == len(batch)
        assert len(report.per_shard) == cluster.n_shards
    single_report = single.run_joint()
    cluster_report = cluster.run_joint()
    assert _decisions(
        cluster_report.canonicalization, cluster_report.linking
    ) == _decisions(single_report.canonicalization, single_report.linking)


class TestClusterIngest:
    def test_duplicate_id_rejected_atomically(self, workload):
        cluster = _cluster(workload)
        existing = workload.seed_triples[0].triple_id
        before = cluster.stats().n_triples
        batch = [
            _triple("brand-new", "new subject", "relates to", "new object"),
            _triple(existing, "another", "relates to", "thing"),
        ]
        with pytest.raises(IngestError, match="duplicate"):
            cluster.ingest(batch)
        assert cluster.stats().n_triples == before

    def test_empty_batch_is_a_noop(self, workload):
        cluster = _cluster(workload)
        report = cluster.ingest([])
        assert report.n_triples == 0
        assert cluster.stats().n_ingests == 1

    def test_ingest_report_shape(self, workload):
        cluster = _cluster(workload, router=VocabularyAffinityRouter())
        report = cluster.ingest(workload.batches[0])
        assert report.router == "vocabulary_affinity"
        assert report.n_triples == sum(report.per_shard)
        assert report.wall_time_s >= 0.0

    def test_batched_new_domain_co_locates(self, workload):
        """Regression: routing used to score every triple of a batch
        against the pre-batch vocabularies only, so a new domain
        arriving as one batch scattered on the cold tie-break instead
        of co-locating like the builder's stream routing."""
        cluster = _cluster(workload, router=VocabularyAffinityRouter())
        new_domain = [
            _triple("nd1", "zorblat inc", "manufactures", "zorblat widgets"),
            _triple("nd2", "zorblat inc", "is headquartered in", "zorblat city"),
            _triple("nd3", "zorblat widgets", "are sold by", "zorblat inc"),
            _triple("nd4", "zorblat labs", "supplies", "zorblat inc"),
        ]
        report = cluster.ingest(new_domain)
        # After the first tie-broken placement, affinity attracts the
        # rest of the domain to the same shard.
        assert sorted(report.per_shard, reverse=True)[0] == len(new_domain)


# ----------------------------------------------------------------------
# Empty shards
# ----------------------------------------------------------------------
class TestEmptyShards:
    def test_empty_shard_contributes_empty_report(self, workload):
        parts = shard_partition(workload.seed_triples)
        cluster = (
            ShardedEngine.builder()
            .with_ckb(workload.dataset.kb)
            .with_config(CONFIG)
            .with_shard_triples([parts[0], []])
            .build()
        )
        report = cluster.run_joint()
        assert report.shards[1].stats.n_triples == 0
        assert len(report.shards[1].canonicalization.clusters["S"]) == 0

    def test_all_empty_raises(self, workload):
        cluster = (
            ShardedEngine.builder()
            .with_ckb(workload.dataset.kb)
            .with_shard_triples([[], []])
            .build()
        )
        with pytest.raises(EngineStateError, match="empty"):
            cluster.run_joint()


# ----------------------------------------------------------------------
# Result dataclasses
# ----------------------------------------------------------------------
class TestClusterResults:
    def test_ingest_report_round_trip(self):
        report = IngestReport(router="hash", per_shard=(3, 0, 2))
        restored = IngestReport.from_dict(
            json.loads(json.dumps(report.to_dict()))
        )
        assert restored == report
        assert restored.n_triples == 5

    def test_cluster_report_round_trip(self, cluster_and_report):
        _cluster_engine, report = cluster_and_report
        wire = json.dumps(report.to_dict(), sort_keys=True)
        restored = ClusterReport.from_dict(json.loads(wire))
        assert restored == report

    def test_cluster_stats_round_trip(self, cluster_and_report):
        cluster, _report = cluster_and_report
        stats = cluster.stats()
        assert ClusterStats.from_dict(stats.to_dict()) == stats

    def test_schema_version_checked(self):
        payload = IngestReport(router="hash", per_shard=(1,)).to_dict()
        payload["schema_version"] = 999
        with pytest.raises(SchemaVersionError):
            IngestReport.from_dict(payload)

    def test_malformed_body_raises_schema_error(self):
        payload = IngestReport(router="hash", per_shard=(1,)).to_dict()
        payload["per_shard"] = "not-a-list-of-ints"
        with pytest.raises(SchemaError):
            IngestReport.from_dict(payload)

    def test_merge_first_shard_wins_on_conflict(self):
        from repro.api.results import (
            CanonicalizationResult,
            EngineReport,
            LinkingResult,
        )
        from repro.clustering.clusters import Clustering

        def report(groups, links):
            return EngineReport(
                canonicalization=CanonicalizationResult(
                    clusters={
                        "S": Clustering(groups),
                        "P": Clustering(()),
                        "O": Clustering(()),
                    }
                ),
                linking=LinkingResult(
                    links={"S": links, "P": {}, "O": {}}
                ),
                stats=EngineStats(),
            )

        first = report([("a", "b")], {"a": "e1", "b": "e1"})
        second = report([("b", "c")], {"b": "e2", "c": "e2"})
        canonicalization, linking = merge_shard_outputs((first, second))
        groups = {tuple(sorted(g)) for g in canonicalization.clusters["S"].groups}
        assert groups == {("a", "b"), ("c",)}   # "b" stays with shard 0
        assert linking.links["S"] == {"a": "e1", "b": "e1", "c": "e2"}


# ----------------------------------------------------------------------
# Durability
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["file", "sqlite"])
def test_cluster_save_gc_and_history_cap_safety(tmp_path, backend):
    """Regression: with a history-capped store, the per-shard saves used
    to prune the snapshot the still-current manifest referenced before
    the new manifest committed.  Shard namespaces no longer inherit the
    cap; unreachable shard snapshots are GC'd only after the commit."""
    workload = _workload()
    cluster = _cluster(workload)
    store = (
        FileStateStore(tmp_path / "ckpt", history=1)
        if backend == "file"
        else SQLiteStateStore(tmp_path / "ckpt.db", history=1)
    )
    cluster.save(store)
    first = cluster.run_joint()
    cluster.ingest(workload.batches[0])
    manifest = cluster.save(store)
    # Old shard snapshots are unreachable after the commit and GC'd;
    # exactly the referenced one remains per shard.
    for entry in manifest["shards"]:
        assert store.namespace(entry["namespace"]).snapshots() == [
            entry["snapshot"]
        ]
    restored = ShardedEngine.load(store)
    report = restored.run_joint()
    grown = cluster.run_joint()
    assert _decisions(report.canonicalization, report.linking) == _decisions(
        grown.canonicalization, grown.linking
    )
    assert _decisions(report.canonicalization, report.linking) != _decisions(
        first.canonicalization, first.linking
    )


@pytest.mark.parametrize("backend", ["file", "sqlite"])
def test_drop_snapshot_refuses_current(tmp_path, backend):
    workload = _workload()
    cluster = _cluster(workload)
    store = (
        FileStateStore(tmp_path / "ckpt")
        if backend == "file"
        else SQLiteStateStore(tmp_path / "ckpt.db")
    )
    sub = store.namespace("shard-00")
    snapshot = cluster.shards[0].save(sub)
    with pytest.raises(CheckpointError, match="refusing to drop"):
        sub.drop_snapshot(snapshot)
    assert sub.snapshots() == [snapshot]


@pytest.mark.parametrize("backend", ["file", "sqlite"])
def test_cluster_save_load_round_trip(tmp_path, backend):
    workload = _workload()
    cluster = _cluster(
        workload,
        router=VocabularyAffinityRouter(),
        runtime_factory=IncrementalRuntime,
    )
    original = cluster.run_joint()
    cluster.ingest(workload.batches[0])
    grown = cluster.run_joint()
    store = (
        FileStateStore(tmp_path / "cluster")
        if backend == "file"
        else SQLiteStateStore(tmp_path / "cluster.db")
    )
    manifest = cluster.save(store)
    assert manifest["n_shards"] == cluster.n_shards
    assert len(manifest["shards"]) == cluster.n_shards

    restored = ShardedEngine.load(store)
    assert restored.n_shards == cluster.n_shards
    assert type(restored.router) is VocabularyAffinityRouter
    assert restored.stats().n_ingests == cluster.stats().n_ingests
    report = restored.run_joint()
    assert _decisions(report.canonicalization, report.linking) == _decisions(
        grown.canonicalization, grown.linking
    )
    # Warm: the first post-restore inference splices every cached
    # component instead of re-running LBP.
    for profile in restored.last_profiles():
        assert profile.reused_components == profile.n_components
    # And decisions must differ from the pre-ingest state (the grown
    # snapshot was saved, not the seed one).
    assert _decisions(report.canonicalization, report.linking) != _decisions(
        original.canonicalization, original.linking
    )


class TestClusterLoadErrors:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(CheckpointError, match="no document"):
            ShardedEngine.load(FileStateStore(tmp_path / "empty"))

    def test_bad_schema_version(self, tmp_path):
        store = FileStateStore(tmp_path / "bad")
        store.save_document(
            "cluster", {"schema_version": 999, "type": "cluster_manifest"}
        )
        with pytest.raises(SchemaVersionError):
            ShardedEngine.load(store)

    def test_wrong_type(self, tmp_path):
        store = FileStateStore(tmp_path / "bad")
        store.save_document(
            "cluster", {"schema_version": 1, "type": "something-else"}
        )
        with pytest.raises(SchemaError, match="type"):
            ShardedEngine.load(store)

    def test_unknown_router_needs_override(self, tmp_path):
        workload = _workload()
        cluster = _cluster(workload)
        store = FileStateStore(tmp_path / "cluster")
        manifest = cluster.save(store)
        manifest = dict(manifest)
        manifest["router"] = {"type": "bespoke"}
        store.save_document("cluster", manifest)
        with pytest.raises(CheckpointError, match="router"):
            ShardedEngine.load(store)
        restored = ShardedEngine.load(store, router=HashShardRouter())
        assert type(restored.router) is HashShardRouter


# ----------------------------------------------------------------------
# The cluster service
# ----------------------------------------------------------------------
class TestClusterService:
    def test_threaded_resolve_matches_serial_loop(self, workload):
        cluster = _cluster(
            workload,
            router=VocabularyAffinityRouter(),
            runtime_factory=IncrementalRuntime,
        )
        service = JOCLClusterService(cluster)
        mentions = [t.subject for t in workload.seed_triples[:24]]
        serial = [service.resolve(m).to_dict() for m in mentions]
        answers = [None] * len(mentions)
        errors = []

        def worker(offset):
            try:
                for index in range(offset, len(mentions), 6):
                    answers[index] = service.resolve(mentions[index]).to_dict()
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert answers == serial

    def test_vocab_bearing_ingest_is_atomic_under_readers(self, workload):
        """An ingest carrying new vocabulary must never let a reader
        observe post-batch IDF weights against a pre-batch OKB: the
        fold, drift broadcast and per-shard ingests happen under the
        all-shards exclusion, so every answer matches either the
        pre-ingest or the post-ingest engine state."""
        service = JOCLClusterService(
            _cluster(workload, router=VocabularyAffinityRouter())
        )
        mention = workload.seed_triples[0].subject
        before = service.resolve(mention).to_dict()
        batch = [
            _triple("vb1", "brandnewco", "emerged in", "newville"),
            _triple("vb2", "brandnewco", "acquired", mention),
        ]
        answers = []
        errors = []

        def reader():
            try:
                for _ in range(30):
                    answers.append(service.resolve(mention).to_dict())
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        thread = threading.Thread(target=reader)
        thread.start()
        service.ingest(batch)
        thread.join()
        assert not errors
        after = service.resolve(mention).to_dict()
        assert all(answer in (before, after) for answer in answers)

    def test_service_ingest_matches_engine_ingest(self, workload):
        service = JOCLClusterService(
            _cluster(workload, router=VocabularyAffinityRouter())
        )
        direct = _cluster(workload, router=VocabularyAffinityRouter())
        for batch in workload.batches:
            via_service = service.ingest(batch)
            via_engine = direct.ingest(batch)
            assert via_service.per_shard == via_engine.per_shard
        service_report = service.run_joint()
        direct_report = direct.run_joint()
        assert _decisions(
            service_report.canonicalization, service_report.linking
        ) == _decisions(
            direct_report.canonicalization, direct_report.linking
        )

    def test_run_joint_and_stats(self, workload):
        service = JOCLClusterService(_cluster(workload))
        report = service.run_joint()
        stats = service.stats()
        assert report.n_shards == stats.n_shards
        assert stats.n_triples == len(workload.seed_triples)
        assert len(service.serving_stats()) == stats.n_shards

    def test_save_requires_store(self, workload):
        service = JOCLClusterService(_cluster(workload))
        with pytest.raises(CheckpointError, match="no state store"):
            service.save()

    def test_save_and_restore(self, workload, tmp_path):
        store = FileStateStore(tmp_path / "svc")
        cluster = _cluster(workload, runtime_factory=IncrementalRuntime)
        service = JOCLClusterService(cluster, store=store)
        before = service.run_joint()
        manifest = service.save()
        assert manifest["n_shards"] == cluster.n_shards
        restored = ShardedEngine.load(store)
        report = restored.run_joint()
        assert _decisions(
            report.canonicalization, report.linking
        ) == _decisions(before.canonicalization, before.linking)

    def test_resolve_many_no_partial_results(self, workload):
        service = JOCLClusterService(_cluster(workload))
        known = workload.seed_triples[0].subject
        with pytest.raises(UnknownMentionError):
            service.resolve_many([known, "absolutely unknown phrase"])

    def test_resolve_many_accepts_generators(self, workload):
        """Regression: same double-consumption bug as the engine's."""
        service = JOCLClusterService(_cluster(workload))
        mentions = [t.subject for t in workload.seed_triples[:4]]
        from_generator = service.resolve_many(m for m in mentions)
        from_list = service.resolve_many(mentions)
        assert [r.to_dict() for r in from_generator] == [
            r.to_dict() for r in from_list
        ]

    def test_run_joint_tolerates_empty_shards(self, workload):
        """Regression: the service used to crash with EngineStateError
        when any shard was empty, unlike the engine's run_joint."""
        parts = shard_partition(workload.seed_triples)
        cluster = (
            ShardedEngine.builder()
            .with_ckb(workload.dataset.kb)
            .with_config(CONFIG)
            .with_shard_triples([parts[0], []])
            .build()
        )
        service = JOCLClusterService(cluster)
        report = service.run_joint()
        assert report.shards[1].stats.n_triples == 0
        empty = JOCLClusterService(
            ShardedEngine.builder()
            .with_ckb(workload.dataset.kb)
            .with_shard_triples([[], []])
            .build()
        )
        with pytest.raises(EngineStateError, match="empty"):
            empty.run_joint()
