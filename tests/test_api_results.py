"""JSON round-trips and schema validation for the API result types."""

import json

import pytest

from repro.api import (
    SCHEMA_VERSION,
    CanonicalizationResult,
    EngineReport,
    EngineStats,
    LinkingResult,
    ResolveResult,
    SchemaError,
    SchemaVersionError,
)
from repro.clustering.clusters import Clustering
from repro.core.inference import JOCLOutput


def make_canonicalization() -> CanonicalizationResult:
    return CanonicalizationResult(
        clusters={
            "S": Clustering([{"umd", "university of maryland"}, {"maryland"}]),
            "P": Clustering([{"locate in", "be located in"}]),
            "O": Clustering([{"u21"}]),
        },
        iterations=7,
        converged=True,
    )


def make_linking() -> LinkingResult:
    return LinkingResult(
        links={
            "S": {"umd": "e:umd", "university of maryland": "e:umd"},
            "P": {"locate in": "r:contained_by"},
            "O": {"u21": None},
        },
        iterations=7,
        converged=True,
    )


def make_stats() -> EngineStats:
    return EngineStats(
        n_triples=3,
        n_noun_phrases=5,
        n_relation_phrases=2,
        n_ingests=1,
        trained=True,
    )


def make_report() -> EngineReport:
    return EngineReport(
        canonicalization=make_canonicalization(),
        linking=make_linking(),
        stats=make_stats(),
    )


def make_resolve() -> ResolveResult:
    return ResolveResult(
        mention="umd",
        kind="S",
        target="e:umd",
        cluster=("umd", "university of maryland"),
        candidates=(("e:umd", 1.0), ("e:maryland", 0.4)),
    )


ALL_RESULTS = [
    make_canonicalization,
    make_linking,
    make_stats,
    make_report,
    make_resolve,
]


@pytest.mark.parametrize("factory", ALL_RESULTS, ids=lambda f: f.__name__)
def test_json_round_trip_equality(factory):
    """to_dict -> json -> from_dict reproduces an equal object."""
    original = factory()
    wire = json.dumps(original.to_dict())
    restored = type(original).from_dict(json.loads(wire))
    assert restored == original


@pytest.mark.parametrize("factory", ALL_RESULTS, ids=lambda f: f.__name__)
def test_payload_envelope(factory):
    payload = factory().to_dict()
    assert payload["schema_version"] == SCHEMA_VERSION
    assert payload["type"] == type(factory()).TYPE


@pytest.mark.parametrize("factory", ALL_RESULTS, ids=lambda f: f.__name__)
def test_schema_version_mismatch_raises(factory):
    original = factory()
    payload = original.to_dict()
    payload["schema_version"] = SCHEMA_VERSION + 1
    with pytest.raises(SchemaVersionError) as excinfo:
        type(original).from_dict(payload)
    assert excinfo.value.found == SCHEMA_VERSION + 1
    assert excinfo.value.expected == SCHEMA_VERSION


@pytest.mark.parametrize("factory", ALL_RESULTS, ids=lambda f: f.__name__)
def test_missing_schema_version_raises(factory):
    original = factory()
    payload = original.to_dict()
    del payload["schema_version"]
    with pytest.raises(SchemaVersionError):
        type(original).from_dict(payload)


@pytest.mark.parametrize("factory", ALL_RESULTS, ids=lambda f: f.__name__)
def test_wrong_type_discriminator_raises(factory):
    original = factory()
    payload = original.to_dict()
    payload["type"] = "something_else"
    with pytest.raises(SchemaError):
        type(original).from_dict(payload)


@pytest.mark.parametrize("factory", ALL_RESULTS, ids=lambda f: f.__name__)
def test_non_mapping_payload_raises(factory):
    with pytest.raises(SchemaError):
        type(factory()).from_dict([1, 2, 3])


def test_schema_version_error_is_schema_error():
    assert issubclass(SchemaVersionError, SchemaError)


def test_malformed_cluster_body_raises_schema_error():
    """An item repeated across clusters must not leak raw ValueError."""
    payload = make_canonicalization().to_dict()
    payload["clusters"]["S"] = [["a"], ["a"]]
    with pytest.raises(SchemaError, match="malformed"):
        CanonicalizationResult.from_dict(payload)


def test_scalar_cluster_body_raises_schema_error():
    payload = make_canonicalization().to_dict()
    payload["clusters"] = 7
    with pytest.raises(SchemaError):
        CanonicalizationResult.from_dict(payload)


def test_scalar_links_body_raises_schema_error():
    payload = make_linking().to_dict()
    payload["links"] = "not a mapping"
    with pytest.raises(SchemaError):
        LinkingResult.from_dict(payload)


def test_resolve_candidates_missing_id_raises_schema_error():
    payload = make_resolve().to_dict()
    payload["candidates"] = [{"score": 1.0}]
    with pytest.raises(SchemaError, match="malformed"):
        ResolveResult.from_dict(payload)


def test_non_numeric_stats_raise_schema_error():
    payload = make_stats().to_dict()
    payload["n_triples"] = "many"
    with pytest.raises(SchemaError):
        EngineStats.from_dict(payload)


def test_canonicalization_accessors():
    result = make_canonicalization()
    assert result.np_clusters.same_cluster("umd", "university of maryland")
    assert "locate in" in result.rp_clusters
    assert "u21" in result.object_clusters


def test_linking_accessors():
    result = make_linking()
    assert result.entity_links["umd"] == "e:umd"
    assert result.relation_links["locate in"] == "r:contained_by"
    assert result.object_links["u21"] is None


def test_linking_nil_survives_round_trip():
    result = make_linking()
    restored = LinkingResult.from_dict(json.loads(json.dumps(result.to_dict())))
    assert restored.object_links["u21"] is None


def test_report_missing_section_raises():
    payload = make_report().to_dict()
    del payload["linking"]
    with pytest.raises(SchemaError):
        EngineReport.from_dict(payload)


def test_report_as_output_round_trip():
    """EngineReport <-> JOCLOutput conversion preserves decisions."""
    report = make_report()
    output = report.as_output()
    assert isinstance(output, JOCLOutput)
    assert output.np_clusters == report.canonicalization.np_clusters
    assert output.entity_links == report.linking.entity_links
    assert output.iterations == report.iterations
    rewrapped = EngineReport.from_output(output, stats=report.stats)
    assert rewrapped == report


def test_resolve_result_candidates_round_trip():
    restored = ResolveResult.from_dict(
        json.loads(json.dumps(make_resolve().to_dict()))
    )
    assert restored.candidates == (("e:umd", 1.0), ("e:maryland", 0.4))
