"""Local mirrors of the CI static gates.

CI installs ruff and mypy and runs them as blocking jobs; this module
runs the same commands when the tools happen to be installed locally
(``pip install -e .[dev]``) so a contributor sees the failure before
pushing.  Environments without the tools — including the minimal test
container — skip cleanly: the gates of record live in
``.github/workflows/ci.yml``.

The analyzer gate needs no external tool and is exercised for real in
``tests/test_analyzers_runner.py``
(``test_repo_src_is_clean_with_committed_baseline``).
"""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).parent.parent


def _run(arguments: list[str]) -> subprocess.CompletedProcess:
    return subprocess.run(
        arguments,
        cwd=REPO,
        capture_output=True,
        text=True,
        check=False,
    )


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_clean():
    """``ruff check .`` passes with the widened E,W,F,I,B,UP,SIM set."""
    result = _run(["ruff", "check", "."])
    assert result.returncode == 0, (
        f"ruff found violations:\n{result.stdout}{result.stderr}"
    )


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_clean():
    """``mypy src/repro`` passes, including the strict-ratchet packages
    (repro.api, repro.persist, repro.runtime) from pyproject.toml."""
    result = _run([sys.executable, "-m", "mypy", "src/repro"])
    assert result.returncode == 0, (
        f"mypy found errors:\n{result.stdout}{result.stderr}"
    )


def test_typed_marker_ships():
    """The PEP 561 marker exists and setuptools is told to package it —
    downstream type checkers only read inline annotations if both hold."""
    assert (REPO / "src" / "repro" / "py.typed").exists()
    pyproject = (REPO / "pyproject.toml").read_text(encoding="utf-8")
    assert 'repro = ["py.typed"]' in pyproject


def test_strict_ratchet_configured():
    """The strict-ratchet override stays pinned to the public surface;
    loosening it (or dropping a flag) is a reviewable diff here."""
    pyproject = (REPO / "pyproject.toml").read_text(encoding="utf-8")
    assert '"repro.api.*"' in pyproject
    assert '"repro.persist.*"' in pyproject
    assert '"repro.runtime.*"' in pyproject
    for flag in (
        "disallow_untyped_defs",
        "disallow_incomplete_defs",
        "check_untyped_defs",
        "disallow_untyped_decorators",
        "no_implicit_optional",
        "strict_equality",
    ):
        assert f"{flag} = true" in pyproject, f"ratchet flag {flag} dropped"
