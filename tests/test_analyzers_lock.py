"""LOCK checker fixtures: true positives, true negatives, resolution.

Each fixture is a minimal module exercising one pattern the checker
must flag (or must not).  Paths are synthetic but inside the checker's
scope (``src/repro/serving/``)."""

from __future__ import annotations

import textwrap

from tools.analyzers.core import Suppressions, parse_module
from tools.analyzers.lock import LockDisciplineCheck

CHECK = LockDisciplineCheck()


def findings_of(source: str, path: str = "src/repro/serving/fixture.py"):
    source = textwrap.dedent(source)
    module = parse_module(path, source)
    return Suppressions(source).apply(list(CHECK.run(module)))


def codes_of(source: str, path: str = "src/repro/serving/fixture.py"):
    return [finding.code for finding in findings_of(source, path)]


# ----------------------------------------------------------------------
# Scope
# ----------------------------------------------------------------------
def test_only_serving_and_cluster_paths_are_in_scope():
    assert CHECK.interested("src/repro/serving/service.py")
    assert CHECK.interested("src/repro/cluster/engine.py")
    assert not CHECK.interested("src/repro/api/engine.py")
    assert not CHECK.interested("src/repro/okb/store.py")


# ----------------------------------------------------------------------
# True positives
# ----------------------------------------------------------------------
UNGUARDED_ASSIGN = """
    import threading

    class Service:
        def __init__(self):
            self._lock = threading.Lock()
            self._engine = None

        def swap(self, engine):
            self._engine = engine
"""


def test_tp_unguarded_assignment_is_flagged():
    findings = findings_of(UNGUARDED_ASSIGN)
    assert [f.code for f in findings] == ["LOCK01"]
    assert "self._engine" in findings[0].message


UNGUARDED_MUTATOR_CALL = """
    import threading

    class Service:
        def __init__(self):
            self._lock = threading.Lock()
            self._pending = []

        def enqueue(self, item):
            self._pending.append(item)
"""


def test_tp_unguarded_container_mutator_is_flagged():
    assert codes_of(UNGUARDED_MUTATOR_CALL) == ["LOCK01"]


UNGUARDED_AUGASSIGN = """
    import threading

    class Service:
        def __init__(self):
            self._lock = threading.Lock()
            self._writes = 0

        def record(self):
            self._writes += 1
"""


def test_tp_unguarded_augmented_assignment_is_flagged():
    assert codes_of(UNGUARDED_AUGASSIGN) == ["LOCK01"]


ABBA_INVERSION = """
    import threading

    class Service:
        def __init__(self):
            self._a = threading.Lock()
            self._b = threading.Lock()

        def first(self):
            with self._a:
                with self._b:
                    pass

        def second(self):
            with self._b:
                with self._a:
                    pass
"""


def test_tp_abba_inversion_is_flagged():
    findings = findings_of(ABBA_INVERSION)
    assert [f.code for f in findings] == ["LOCK02"]
    assert "opposite order" in findings[0].message


REVERSED_SHARD_LOOP = """
    from contextlib import ExitStack

    class ClusterFacade:
        def __init__(self, services):
            self._services = list(services)

        def save_all(self):
            with ExitStack() as stack:
                for service in reversed(self._services):
                    stack.enter_context(service.exclusive())
"""


def test_tp_reversed_shard_lock_loop_is_flagged():
    findings = findings_of(REVERSED_SHARD_LOOP)
    assert [f.code for f in findings] == ["LOCK02"]
    assert "shard-order" in findings[0].message


DESCENDING_SORTED_SHARD_LOOP = """
    class ClusterFacade:
        def __init__(self, services):
            self._services = list(services)

        def save_all(self):
            for service in sorted(self._services, reverse=True):
                with service.exclusive():
                    pass
"""


def test_tp_descending_sorted_shard_loop_is_flagged():
    assert codes_of(DESCENDING_SORTED_SHARD_LOOP) == ["LOCK02"]


# ----------------------------------------------------------------------
# True negatives
# ----------------------------------------------------------------------
GUARDED_ASSIGN = """
    import threading

    class Service:
        def __init__(self):
            self._lock = threading.Lock()
            self._engine = None

        def swap(self, engine):
            with self._lock:
                self._engine = engine
"""


def test_tn_guarded_assignment_passes():
    assert codes_of(GUARDED_ASSIGN) == []


RW_GUARD_METHODS = """
    import threading

    class Service:
        def __init__(self):
            self._rw = threading.Lock()
            self._engine = None
            self._stats = []

        def swap(self, engine):
            with self._rw.write():
                self._engine = engine

        def note(self, item):
            with self._rw.read():
                self._stats.append(item)
"""


def test_tn_read_write_lock_contexts_pass():
    assert codes_of(RW_GUARD_METHODS) == []


LOCK_HOLDING_CALL_GRAPH = """
    import threading

    class Engine:
        def __init__(self):
            self._lock = threading.Lock()
            self._count = 0
            self._vocab = set()

        def ingest(self, batch):
            with self._lock:
                return self._apply(batch)

        def _apply(self, batch):
            self._vocab.update(batch)
            self._count += 1
            return self._count
"""


def test_tn_method_called_only_under_lock_resolves_as_lock_holding():
    assert codes_of(LOCK_HOLDING_CALL_GRAPH) == []


LOCKED_SUFFIX_CONVENTION = """
    import threading

    class Engine:
        def __init__(self):
            self._lock = threading.Lock()
            self._count = 0

        def _bump_locked(self):
            self._count += 1
"""


def test_tn_locked_suffix_marks_callee_side_contract():
    assert codes_of(LOCKED_SUFFIX_CONVENTION) == []


NO_LOCKS_NO_DISCIPLINE = """
    class PlainBuilder:
        def __init__(self):
            self._parts = []

        def add(self, part):
            self._parts.append(part)
            return self
"""


def test_tn_class_without_locks_is_out_of_scope():
    assert codes_of(NO_LOCKS_NO_DISCIPLINE) == []


CONSISTENT_NESTING = """
    import threading

    class Service:
        def __init__(self):
            self._a = threading.Lock()
            self._b = threading.Lock()

        def first(self):
            with self._a:
                with self._b:
                    pass

        def second(self):
            with self._a:
                with self._b:
                    pass
"""


def test_tn_consistent_acquisition_order_passes():
    assert codes_of(CONSISTENT_NESTING) == []


ASCENDING_SHARD_LOOP = """
    from contextlib import ExitStack

    class ClusterFacade:
        def __init__(self, services):
            self._services = list(services)

        def save_all(self):
            with ExitStack() as stack:
                for service in self._services:
                    stack.enter_context(service.exclusive())
"""


def test_tn_ascending_shard_lock_loop_passes():
    assert codes_of(ASCENDING_SHARD_LOOP) == []


# ----------------------------------------------------------------------
# The shipped concurrent layers stay clean (the CI gate, in-process)
# ----------------------------------------------------------------------
def test_repo_serving_and_cluster_modules_are_clean():
    from tools.analyzers.core import REPO_ROOT

    for package in ("serving", "cluster"):
        for path in sorted((REPO_ROOT / "src" / "repro" / package).glob("*.py")):
            relative = str(path.relative_to(REPO_ROOT))
            source = path.read_text(encoding="utf-8")
            module = parse_module(relative, source)
            findings = Suppressions(source).apply(list(CHECK.run(module)))
            assert findings == [], f"unexpected LOCK findings in {relative}"
