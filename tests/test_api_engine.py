"""Behavioral tests for the JOCLEngine service surface.

Covers builder validation, incremental ingest (metric-level equivalence
with a from-scratch batch run), serving-time resolve, training and the
weight export/import round-trip.
"""

import json

import pytest

from repro.api import (
    EngineBuildError,
    EngineStateError,
    IngestError,
    JOCLAPIError,
    JOCLEngine,
    TrainingError,
    UnknownMentionError,
)
from repro.core import JOCLConfig
from repro.core.variants import jocl_cano_config
from repro.metrics import evaluate_clustering, linking_accuracy
from repro.okb.triples import OIETriple

FAST = JOCLConfig(lbp_iterations=10, learn_iterations=2)


def build_engine(dataset, triples, config=FAST):
    return (
        JOCLEngine.builder()
        .with_ckb(dataset.kb)
        .with_anchors(dataset.anchors)
        .with_ppdb(dataset.ppdb)
        .with_config(config)
        .with_triples(triples)
        .build()
    )


# ----------------------------------------------------------------------
# Builder
# ----------------------------------------------------------------------
class TestBuilder:
    def test_requires_ckb(self):
        with pytest.raises(EngineBuildError):
            JOCLEngine.builder().build()

    def test_side_information_conflicts_with_resources(self, small_dataset):
        side = small_dataset.side_information("test")
        builder = (
            JOCLEngine.builder()
            .with_side_information(side)
            .with_ckb(small_dataset.kb)
        )
        with pytest.raises(EngineBuildError, match="with_ckb"):
            builder.build()

    def test_bad_trained_weights_rejected(self, small_dataset):
        builder = (
            JOCLEngine.builder()
            .with_ckb(small_dataset.kb)
            .with_trained_weights({"F1": []})
        )
        with pytest.raises(EngineBuildError):
            builder.build()

    def test_empty_trained_weights_rejected(self, small_dataset):
        """An empty snapshot must not masquerade as a trained engine."""
        builder = (
            JOCLEngine.builder()
            .with_ckb(small_dataset.kb)
            .with_trained_weights({})
        )
        with pytest.raises(EngineBuildError, match="empty"):
            builder.build()

    def test_duplicate_seed_triples_rejected(self, small_dataset):
        triple = small_dataset.test_triples[0]
        builder = (
            JOCLEngine.builder()
            .with_ckb(small_dataset.kb)
            .with_triples([triple, triple])
        )
        with pytest.raises(EngineBuildError):
            builder.build()

    def test_builder_chains_and_builds(self, small_dataset):
        engine = build_engine(small_dataset, small_dataset.test_triples)
        assert engine.config is FAST
        assert len(engine.okb) == len(small_dataset.test_triples)

    def test_dataset_engine_hook(self, small_dataset):
        engine = small_dataset.engine("test", config=FAST)
        assert engine.kb is small_dataset.kb
        assert len(engine.okb) == len(small_dataset.test_triples)


# ----------------------------------------------------------------------
# Batch inference
# ----------------------------------------------------------------------
class TestInference:
    def test_run_joint_report(self, small_dataset):
        engine = small_dataset.engine("test", config=FAST)
        report = engine.run_joint()
        assert report.stats.n_triples == len(small_dataset.test_triples)
        assert not report.stats.trained
        assert report.canonicalization.np_clusters.items
        assert set(report.linking.links) == {"S", "P", "O"}

    def test_canonicalize_and_link_share_decoding(self, small_dataset):
        engine = small_dataset.engine("test", config=FAST)
        report = engine.run_joint()
        assert engine.canonicalize() == report.canonicalization
        assert engine.link() == report.linking

    def test_empty_okb_raises(self, small_dataset):
        engine = JOCLEngine.builder().with_ckb(small_dataset.kb).build()
        with pytest.raises(EngineStateError):
            engine.run_joint()

    def test_errors_share_api_base(self):
        for error_type in (EngineStateError, IngestError, TrainingError):
            assert issubclass(error_type, JOCLAPIError)

    def test_invalid_kind_is_api_error_and_value_error(self, small_dataset):
        from repro.api import InvalidRequestError

        engine = small_dataset.engine("test", config=FAST)
        mention = small_dataset.test_triples[0].subject
        with pytest.raises(InvalidRequestError) as excinfo:
            engine.resolve(mention, kind="verb")
        assert isinstance(excinfo.value, JOCLAPIError)
        assert isinstance(excinfo.value, ValueError)


# ----------------------------------------------------------------------
# Incremental ingest
# ----------------------------------------------------------------------
class TestIngest:
    def test_ingest_then_join_matches_batch_run(self, small_dataset):
        """ingest + run_joint == from-scratch batch run on the union.

        Metric-level equivalence on a ReVerb45K-shaped dataset, per the
        incremental-ingest contract: warm CKB-derived caches must not
        change any decision.
        """
        triples = small_dataset.test_triples
        half = len(triples) // 2
        gold = small_dataset.gold

        batch = build_engine(small_dataset, triples)
        batch_report = batch.run_joint()

        incremental = build_engine(small_dataset, triples[:half])
        incremental.run_joint()  # force side-info build + a stale decode
        assert incremental.ingest(triples[half:]) == len(triples) - half
        incremental_report = incremental.run_joint()

        assert incremental_report.stats.n_ingests == 1
        assert incremental_report.stats.n_triples == len(triples)
        for report in (batch_report, incremental_report):
            assert report.stats.n_triples == len(triples)

        batch_np = evaluate_clustering(
            batch_report.canonicalization.np_clusters, gold.np_clusters
        )
        incremental_np = evaluate_clustering(
            incremental_report.canonicalization.np_clusters, gold.np_clusters
        )
        assert batch_np == incremental_np
        assert linking_accuracy(
            incremental_report.linking.entity_links, gold.entity_links
        ) == linking_accuracy(
            batch_report.linking.entity_links, gold.entity_links
        )
        # The equivalence is in fact exact, decision for decision.
        assert incremental_report.canonicalization == batch_report.canonicalization
        assert incremental_report.linking == batch_report.linking

    def test_ingest_invalidates_inference_cache(self, small_dataset):
        triples = small_dataset.test_triples
        engine = build_engine(small_dataset, triples[:20])
        before = engine.run_joint()
        engine.ingest(triples[20:40])
        after = engine.run_joint()
        assert after.stats.n_triples == 40
        assert before.canonicalization != after.canonicalization

    def test_duplicate_ingest_rejected_atomically(self, small_dataset):
        triples = small_dataset.test_triples
        engine = build_engine(small_dataset, triples[:10])
        fresh = triples[10:12]
        with pytest.raises(IngestError):
            engine.ingest([*fresh, triples[0]])
        # Atomicity: the two fresh triples were not half-applied.
        assert len(engine.okb) == 10
        assert engine.ingest(fresh) == 2
        assert len(engine.okb) == 12

    def test_non_triple_ingest_rejected(self, small_dataset):
        engine = build_engine(small_dataset, small_dataset.test_triples[:5])
        with pytest.raises(IngestError):
            engine.ingest(["not a triple"])
        assert len(engine.okb) == 5

    def test_pinned_amie_and_kbp_survive_ingest_without_rebuild(
        self, small_dataset
    ):
        """User-pinned OKB-derived resources are kept verbatim on ingest."""
        from repro.kbp.categorizer import RelationCategorizer
        from repro.okb.store import OpenKB
        from repro.rules.amie import AmieConfig, AmieMiner

        triples = small_dataset.test_triples
        pinned_amie = AmieMiner(OpenKB(triples).triples, AmieConfig())
        pinned_kbp = RelationCategorizer(small_dataset.kb, triples)
        engine = (
            JOCLEngine.builder()
            .with_ckb(small_dataset.kb)
            .with_config(FAST)
            .with_triples(triples[:10])
            .with_amie(pinned_amie)
            .with_kbp(pinned_kbp)
            .build()
        )
        side = engine.side_information()
        assert side.amie is pinned_amie
        assert side.kbp is pinned_kbp
        engine.ingest(triples[10:20])
        side = engine.side_information()  # post-ingest refresh point
        assert side.amie is pinned_amie  # same object: no rebuild happened
        assert side.kbp is pinned_kbp

    def test_ingest_extends_amie_and_kbp_in_place(self, small_dataset):
        """Ingest extends OKB-derived resources in place, keeping their
        settings, and lands them exactly where a rebuild from the union
        would."""
        from repro.core.side_info import SideInformation
        from repro.kbp.categorizer import RelationCategorizer
        from repro.okb.store import OpenKB
        from repro.rules.amie import AmieConfig, AmieMiner

        triples = small_dataset.test_triples
        okb = OpenKB(triples[:10])
        bundled_amie = AmieMiner(okb.triples, AmieConfig(min_support=5))
        bundled_kbp = RelationCategorizer(small_dataset.kb, okb.triples, min_votes=3)
        side = SideInformation.build(
            okb=okb, kb=small_dataset.kb, amie=bundled_amie, kbp=bundled_kbp
        )
        engine = (
            JOCLEngine.builder().with_side_information(side).with_config(FAST).build()
        )
        engine.ingest(triples[10:20])
        side = engine.side_information()  # post-ingest extension point
        assert side.amie is bundled_amie  # extended in place, not rebuilt
        assert side.amie.config == AmieConfig(min_support=5)  # same settings
        assert side.kbp is bundled_kbp
        assert side.kbp.min_votes == 3
        # Ingest-equals-batch: the extended state matches a fresh build
        # over the union under the same settings.
        union = OpenKB(triples[:20])
        fresh_amie = AmieMiner(union.triples, AmieConfig(min_support=5))
        assert side.amie.rules == fresh_amie.rules
        fresh_kbp = RelationCategorizer(small_dataset.kb, union.triples, min_votes=3)
        assert side.kbp.mapped_phrases == fresh_kbp.mapped_phrases

    def test_many_ingests_cost_one_extension(self, small_dataset, monkeypatch):
        """OKB-derived extension is lazy: N batches, one extend pass."""
        from repro.core.side_info import SideInformation

        calls = []
        original = SideInformation.extend_okb_derived

        def counting(self, new_triples, **kwargs):
            calls.append(list(new_triples))
            return original(self, new_triples, **kwargs)

        monkeypatch.setattr(SideInformation, "extend_okb_derived", counting)
        triples = small_dataset.test_triples
        engine = build_engine(small_dataset, triples[:10])
        engine.run_joint()  # materialize side info
        for start in range(10, 40, 10):
            engine.ingest(triples[start : start + 10])
        assert calls == []  # nothing touched while only ingesting
        engine.run_joint()
        assert len(calls) == 1  # one extension served all three batches
        assert calls[0] == triples[10:40]  # ...covering every batch

    def test_empty_ingest_is_noop(self, small_dataset):
        engine = build_engine(small_dataset, small_dataset.test_triples[:5])
        report = engine.run_joint()
        assert engine.ingest([]) == 0
        assert engine.run_joint() == report
        assert engine.stats().n_ingests == 0


# ----------------------------------------------------------------------
# Serving-time resolve
# ----------------------------------------------------------------------
class TestResolve:
    def test_resolve_subject(self, small_dataset):
        engine = small_dataset.engine("test", config=FAST)
        triple = small_dataset.test_triples[0]
        result = engine.resolve(triple.subject)
        assert result.kind == "S"
        assert result.mention == triple.subject_norm
        assert result.mention in result.cluster
        assert result.target is None or isinstance(result.target, str)

    def test_resolve_relation_kind_aliases(self, small_dataset):
        engine = small_dataset.engine("test", config=FAST)
        predicate = small_dataset.test_triples[0].predicate
        for kind in ("P", "relation", "predicate"):
            result = engine.resolve(predicate, kind=kind)
            assert result.kind == "P"

    def test_resolve_object_only_np_via_entity_alias(self, small_dataset):
        """'entity'/'np' aliases span both NP slots, not just subjects."""
        engine = small_dataset.engine("test", config=FAST)
        report = engine.run_joint()
        subject_nps = set(report.canonicalization.np_clusters.items)
        object_only = next(
            phrase
            for phrase in report.canonicalization.object_clusters.items
            if phrase not in subject_nps
        )
        for alias in ("entity", "np"):
            result = engine.resolve(object_only, kind=alias)
            assert result.kind == "O"
        with pytest.raises(UnknownMentionError):
            engine.resolve(object_only, kind="subject")

    def test_resolve_unknown_mention(self, small_dataset):
        engine = small_dataset.engine("test", config=FAST)
        with pytest.raises(UnknownMentionError):
            engine.resolve("a mention nobody ever extracted")

    def test_resolve_normalizes_mention(self, small_dataset):
        engine = small_dataset.engine("test", config=FAST)
        triple = small_dataset.test_triples[0]
        shouted = triple.subject.upper() + "   "
        assert engine.resolve(shouted).mention == triple.subject_norm

    def test_resolve_result_serializes(self, small_dataset):
        engine = small_dataset.engine("test", config=FAST)
        result = engine.resolve(small_dataset.test_triples[0].subject)
        assert json.dumps(result.to_dict())


# ----------------------------------------------------------------------
# Training and weight export
# ----------------------------------------------------------------------
class TestFit:
    def test_fit_on_validation_side_improves_report(self, small_dataset):
        engine = small_dataset.engine("test", config=FAST)
        assert not engine.trained
        engine.fit(
            small_dataset.validation_triples,
            side=small_dataset.side_information("validation"),
        )
        assert engine.trained
        assert engine.run_joint().stats.trained

    def test_fit_without_usable_gold_raises(self, small_dataset):
        config = jocl_cano_config(FAST)
        engine = small_dataset.engine("test", config=config)
        unannotated = [
            OIETriple(triple_id=f"u{i}", subject=f"s{i}", predicate="p", object="o")
            for i in range(3)
        ]
        with pytest.raises(TrainingError):
            engine.fit(unannotated)

    def test_export_weights_untrained_raises(self, small_dataset):
        engine = small_dataset.engine("test", config=FAST)
        with pytest.raises(EngineStateError):
            engine.export_weights()

    def test_wrong_length_weight_snapshot_raises_api_error(self, small_dataset):
        """Shape mismatches surface as API errors, not raw core ValueError."""
        engine = (
            JOCLEngine.builder()
            .with_ckb(small_dataset.kb)
            .with_config(FAST)
            .with_triples(small_dataset.test_triples[:10])
            .with_trained_weights({"F1": [0.1] * 7})
            .build()
        )
        with pytest.raises(EngineStateError, match="do not fit"):
            engine.run_joint()

    def test_unknown_template_names_raise_instead_of_silent_skip(
        self, small_dataset
    ):
        """A mistyped snapshot key must not silently run untrained."""
        engine = (
            JOCLEngine.builder()
            .with_ckb(small_dataset.kb)
            .with_config(FAST)
            .with_triples(small_dataset.test_triples[:10])
            .with_trained_weights({"f1": [0.5, 0.5]})
            .build()
        )
        with pytest.raises(EngineStateError, match="unknown templates"):
            engine.run_joint()

    def test_weight_export_import_round_trip(self, small_dataset):
        trainer = small_dataset.engine("validation", config=FAST)
        trainer.fit(small_dataset.validation_triples)
        snapshot = json.loads(json.dumps(trainer.export_weights()))

        warm = (
            JOCLEngine.builder()
            .with_side_information(small_dataset.side_information("test"))
            .with_config(FAST)
            .with_trained_weights(snapshot)
            .build()
        )
        assert warm.trained
        report = warm.run_joint()
        assert report.stats.trained

        # Weights survive the JSON hop bit-for-bit: inference matches an
        # engine trained in-process with the same protocol.
        direct = small_dataset.engine("test", config=FAST)
        direct.fit(
            small_dataset.validation_triples,
            side=small_dataset.side_information("validation"),
        )
        direct_report = direct.run_joint()
        assert report.canonicalization == direct_report.canonicalization
        assert report.linking == direct_report.linking
