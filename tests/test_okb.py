"""Tests for the OKB substrate: triples, normalization, store."""

import pytest

from repro.okb.normalize import morph_normalize, morph_normalize_tokens
from repro.okb.store import OpenKB, PhraseRole
from repro.okb.triples import OIETriple, TripleGold


class TestMorphNormalize:
    @pytest.mark.parametrize(
        "raw, expected",
        [
            ("is located in", "locate in"),
            ("was located in", "locate in"),
            ("be located in", "locate in"),
            ("universities", "university"),
            ("the cities", "city"),
            ("running", "run"),
            ("has founded", "found"),
            ("be a member of", "member of"),
            ("be an early member of", "early member of"),
            ("studies at", "study at"),
            ("wrote", "write"),
            ("taught at", "teach at"),
        ],
    )
    def test_known_normalizations(self, raw, expected):
        assert morph_normalize(raw) == expected

    def test_found_is_not_find(self):
        # found-(establish) must not merge with the past tense of find.
        assert morph_normalize("found") == "found"
        assert morph_normalize("founded") == "found"

    def test_keep_auxiliaries_option(self):
        assert "be" in morph_normalize_tokens("be located in", drop_auxiliaries=False)

    def test_never_empty_for_nonempty_input(self):
        assert morph_normalize("the") != ""
        assert morph_normalize("is") != ""

    def test_determiners_dropped(self):
        assert morph_normalize("the university") == "university"

    def test_idempotent_on_common_phrases(self):
        for phrase in ("locate in", "member of", "university"):
            assert morph_normalize(morph_normalize(phrase)) == morph_normalize(phrase)


class TestOIETriple:
    def test_normalized_accessors(self):
        triple = OIETriple("t1", " University of Maryland ", "Locate In", "Maryland")
        assert triple.subject_norm == "university of maryland"
        assert triple.predicate_norm == "locate in"
        assert triple.as_tuple() == ("university of maryland", "locate in", "maryland")

    def test_gold_optional(self):
        triple = OIETriple("t1", "a", "b", "c")
        assert triple.gold is None
        annotated = OIETriple("t2", "a", "b", "c", gold=TripleGold("e:x", None, None))
        assert annotated.gold.subject_entity == "e:x"


class TestOpenKB:
    def test_vocabularies(self, tiny_okb):
        assert "university of maryland" in tiny_okb.noun_phrases
        assert "umd" in tiny_okb.noun_phrases
        assert "maryland" in tiny_okb.noun_phrases  # object NP
        assert "locate in" in tiny_okb.relation_phrases
        assert len(tiny_okb) == 3

    def test_mentions(self, tiny_okb):
        mentions = tiny_okb.np_mentions("umd")
        assert mentions == [("t2", PhraseRole.SUBJECT)]
        assert tiny_okb.rp_mentions("locate in") == ["t1"]

    def test_frequencies(self, tiny_okb):
        assert tiny_okb.np_frequency("umd") == 1
        assert tiny_okb.np_frequency("missing") == 0
        assert tiny_okb.rp_frequency("be a member of") == 1

    def test_duplicate_triple_id_rejected(self):
        triples = [
            OIETriple("t1", "a", "b", "c"),
            OIETriple("t1", "d", "e", "f"),
        ]
        with pytest.raises(ValueError):
            OpenKB(triples)

    def test_attributes(self, tiny_okb):
        attrs = tiny_okb.attributes("university of maryland")
        assert ("locate in", "maryland") in attrs

    def test_np_pairs_of_rp(self, tiny_okb):
        pairs = tiny_okb.np_pairs_of_rp("be a member of")
        assert pairs == {("umd", "universitas 21")}

    def test_idf_statistics_cover_vocab(self, tiny_okb):
        assert tiny_okb.np_idf.frequency("university") == 2
        assert tiny_okb.rp_idf.frequency("member") == 2

    def test_triple_lookup(self, tiny_okb):
        assert tiny_okb.triple("t1").subject_norm == "university of maryland"
        with pytest.raises(KeyError):
            tiny_okb.triple("t999")

    def test_iteration_order(self, tiny_okb):
        assert [t.triple_id for t in tiny_okb] == ["t1", "t2", "t3"]
