"""Tests for the OKB substrate: triples, normalization, store."""

import pytest

from repro.okb.normalize import morph_normalize, morph_normalize_tokens
from repro.okb.store import OpenKB, PhraseRole
from repro.okb.triples import OIETriple, TripleGold


class TestMorphNormalize:
    @pytest.mark.parametrize(
        "raw, expected",
        [
            ("is located in", "locate in"),
            ("was located in", "locate in"),
            ("be located in", "locate in"),
            ("universities", "university"),
            ("the cities", "city"),
            ("running", "run"),
            ("has founded", "found"),
            ("be a member of", "member of"),
            ("be an early member of", "early member of"),
            ("studies at", "study at"),
            ("wrote", "write"),
            ("taught at", "teach at"),
        ],
    )
    def test_known_normalizations(self, raw, expected):
        assert morph_normalize(raw) == expected

    def test_found_is_not_find(self):
        # found-(establish) must not merge with the past tense of find.
        assert morph_normalize("found") == "found"
        assert morph_normalize("founded") == "found"

    def test_keep_auxiliaries_option(self):
        assert "be" in morph_normalize_tokens("be located in", drop_auxiliaries=False)

    def test_never_empty_for_nonempty_input(self):
        assert morph_normalize("the") != ""
        assert morph_normalize("is") != ""

    def test_determiners_dropped(self):
        assert morph_normalize("the university") == "university"

    def test_idempotent_on_common_phrases(self):
        for phrase in ("locate in", "member of", "university"):
            assert morph_normalize(morph_normalize(phrase)) == morph_normalize(phrase)


class TestOIETriple:
    def test_normalized_accessors(self):
        triple = OIETriple("t1", " University of Maryland ", "Locate In", "Maryland")
        assert triple.subject_norm == "university of maryland"
        assert triple.predicate_norm == "locate in"
        assert triple.as_tuple() == ("university of maryland", "locate in", "maryland")

    def test_gold_optional(self):
        triple = OIETriple("t1", "a", "b", "c")
        assert triple.gold is None
        annotated = OIETriple("t2", "a", "b", "c", gold=TripleGold("e:x", None, None))
        assert annotated.gold.subject_entity == "e:x"


class TestOpenKB:
    def test_vocabularies(self, tiny_okb):
        assert "university of maryland" in tiny_okb.noun_phrases
        assert "umd" in tiny_okb.noun_phrases
        assert "maryland" in tiny_okb.noun_phrases  # object NP
        assert "locate in" in tiny_okb.relation_phrases
        assert len(tiny_okb) == 3

    def test_mentions(self, tiny_okb):
        mentions = tiny_okb.np_mentions("umd")
        assert mentions == [("t2", PhraseRole.SUBJECT)]
        assert tiny_okb.rp_mentions("locate in") == ["t1"]

    def test_frequencies(self, tiny_okb):
        assert tiny_okb.np_frequency("umd") == 1
        assert tiny_okb.np_frequency("missing") == 0
        assert tiny_okb.rp_frequency("be a member of") == 1

    def test_duplicate_triple_id_rejected(self):
        triples = [
            OIETriple("t1", "a", "b", "c"),
            OIETriple("t1", "d", "e", "f"),
        ]
        with pytest.raises(ValueError):
            OpenKB(triples)

    def test_attributes(self, tiny_okb):
        attrs = tiny_okb.attributes("university of maryland")
        assert ("locate in", "maryland") in attrs

    def test_np_pairs_of_rp(self, tiny_okb):
        pairs = tiny_okb.np_pairs_of_rp("be a member of")
        assert pairs == {("umd", "universitas 21")}

    def test_idf_statistics_cover_vocab(self, tiny_okb):
        assert tiny_okb.np_idf.frequency("university") == 2
        assert tiny_okb.rp_idf.frequency("member") == 2

    def test_triple_lookup(self, tiny_okb):
        assert tiny_okb.triple("t1").subject_norm == "university of maryland"
        with pytest.raises(KeyError):
            tiny_okb.triple("t999")

    def test_iteration_order(self, tiny_okb):
        assert [t.triple_id for t in tiny_okb] == ["t1", "t2", "t3"]


class TestIngestDelta:
    def _delta_triples(self):
        return [
            OIETriple("t1", "university of maryland", "locate in", "maryland"),
            OIETriple("t2", "umd", "be a member of", "universitas 21"),
        ]

    def test_extend_returns_typed_delta(self):
        okb = OpenKB(self._delta_triples())
        batch = [
            OIETriple("t3", "umd", "locate in", "college park"),
            OIETriple("t4", "college park", "be part of", "maryland"),
        ]
        delta = okb.extend(batch)
        assert delta
        assert delta.triples == tuple(batch)
        assert delta.triple_ids == ("t3", "t4")
        # touched = every distinct mention; new = vocabulary entrants.
        assert delta.touched_noun_phrases == (
            "umd",
            "college park",
            "maryland",
        )
        assert delta.new_noun_phrases == ("college park",)
        assert delta.touched_relation_phrases == ("locate in", "be part of")
        assert delta.new_relation_phrases == ("be part of",)

    def test_empty_extend_is_falsy(self):
        okb = OpenKB(self._delta_triples())
        delta = okb.extend([])
        assert not delta
        assert delta.triples == ()

    def test_merge_deduplicates_preserving_order(self):
        okb = OpenKB(self._delta_triples())
        first = okb.extend([OIETriple("t3", "umd", "locate in", "college park")])
        second = okb.extend(
            [OIETriple("t4", "college park", "be part of", "maryland")]
        )
        merged = first.merge(second)
        assert merged.triple_ids == ("t3", "t4")
        assert merged.touched_noun_phrases == (
            "umd",
            "college park",
            "maryland",
        )
        assert merged.new_noun_phrases == ("college park",)
        assert merged.new_relation_phrases == ("be part of",)

    def test_failed_extend_leaves_store_untouched(self):
        okb = OpenKB(self._delta_triples())
        before = len(okb)
        with pytest.raises(ValueError):
            okb.extend(
                [
                    OIETriple("t9", "a", "b", "c"),
                    OIETriple("t1", "dup", "dup", "dup"),
                ]
            )
        assert len(okb) == before
        assert "a" not in okb.noun_phrases


class TestIdfIncrementalParity:
    """Regression: `np_idf` / `rp_idf` must track `OpenKB.extend`.

    Ingest-then-score must equal batch-build scores for the `f_idf`
    signal (ISSUE 3, satellite 3)."""

    def _stream(self):
        return [
            OIETriple("s1", "university of maryland", "locate in", "maryland"),
            OIETriple("s2", "umd", "be a member of", "universitas 21"),
            OIETriple("s3", "university of virginia", "locate in", "virginia"),
            OIETriple("s4", "maryland university", "be adjacent to", "virginia"),
            OIETriple("s5", "virginia tech", "be a member of", "acc"),
        ]

    def test_ingest_then_score_equals_batch_build(self):
        from repro.strings.idf import idf_token_overlap

        stream = self._stream()
        incremental = OpenKB(stream[:2])
        incremental.extend(stream[2:4])
        incremental.extend(stream[4:])
        batch = OpenKB(stream)

        for word in ("university", "of", "maryland", "virginia", "member"):
            assert incremental.np_idf.frequency(word) == batch.np_idf.frequency(word)
            assert incremental.rp_idf.frequency(word) == batch.rp_idf.frequency(word)
            assert incremental.np_idf.weight(word) == batch.np_idf.weight(word)
        assert incremental.np_idf.total_tokens == batch.np_idf.total_tokens
        assert incremental.rp_idf.total_tokens == batch.rp_idf.total_tokens

        phrases = batch.noun_phrases
        for i, first in enumerate(phrases):
            for second in phrases[i + 1 :]:
                assert idf_token_overlap(
                    first, second, incremental.np_idf
                ) == idf_token_overlap(first, second, batch.np_idf)

    def test_repeat_mentions_leave_idf_untouched(self):
        stream = self._stream()
        okb = OpenKB(stream)
        before = okb.np_idf.frequency("maryland")
        okb.extend([OIETriple("s6", "umd", "locate in", "maryland")])
        assert okb.np_idf.frequency("maryland") == before  # distinct-phrase stats
