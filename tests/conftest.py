"""Shared fixtures: a hand-built micro world and a small generated dataset.

The micro world is deliberately tiny and fully understood — every test
that asserts exact behaviour uses it.  The generated dataset exercises
the full pipeline at a scale where tests stay fast.
"""

from __future__ import annotations

import pytest

from repro.ckb.anchors import AnchorStatistics
from repro.ckb.kb import CuratedKB, Entity, Fact, Relation
from repro.core.side_info import SideInformation
from repro.datasets import ReVerb45KConfig, generate_reverb45k
from repro.diagnostics.pytest_support import sanitized_test
from repro.okb.store import OpenKB
from repro.okb.triples import OIETriple, TripleGold
from repro.paraphrase.ppdb import ParaphraseDB


@pytest.fixture(autouse=True)
def _concurrency_sanitizer():
    """Run every test under the lock sanitizer when asked.

    Off by default; ``REPRO_SANITIZE_LOCKS=1|text|github`` turns it on
    (the CI ``sanitized-stress`` job).  See
    :mod:`repro.diagnostics.pytest_support`.
    """
    with sanitized_test():
        yield


@pytest.fixture(scope="session")
def tiny_kb() -> CuratedKB:
    """The paper's running example, as a curated KB."""
    kb = CuratedKB()
    kb.add_entity(
        Entity(
            entity_id="e:umd",
            name="university of maryland",
            aliases=frozenset({"umd", "maryland university"}),
            types=frozenset({"organization"}),
        )
    )
    kb.add_entity(
        Entity(
            entity_id="e:maryland",
            name="maryland",
            aliases=frozenset({"md"}),
            types=frozenset({"place"}),
        )
    )
    kb.add_entity(
        Entity(
            entity_id="e:u21",
            name="universitas 21",
            aliases=frozenset({"u21"}),
            types=frozenset({"organization"}),
        )
    )
    kb.add_entity(
        Entity(
            entity_id="e:uva",
            name="university of virginia",
            aliases=frozenset({"uva"}),
            types=frozenset({"organization"}),
        )
    )
    kb.add_relation(
        Relation(
            relation_id="r:contained_by",
            name="location.contained_by",
            lexicalizations=frozenset({"locate in", "be located in"}),
            category="location",
        )
    )
    kb.add_relation(
        Relation(
            relation_id="r:founded",
            name="organizations_founded",
            lexicalizations=frozenset({"be a member of"}),
            category="founding",
        )
    )
    kb.add_fact(Fact("e:umd", "r:contained_by", "e:maryland"))
    kb.add_fact(Fact("e:umd", "r:founded", "e:u21"))
    kb.add_fact(Fact("e:uva", "r:founded", "e:u21"))
    return kb


@pytest.fixture(scope="session")
def tiny_triples() -> list[OIETriple]:
    """The three OIE triples of Figure 1(a), with gold annotations."""
    return [
        OIETriple(
            triple_id="t1",
            subject="University of Maryland",
            predicate="locate in",
            object="Maryland",
            gold=TripleGold("e:umd", "r:contained_by", "e:maryland"),
        ),
        OIETriple(
            triple_id="t2",
            subject="UMD",
            predicate="be a member of",
            object="Universitas 21",
            gold=TripleGold("e:umd", "r:founded", "e:u21"),
        ),
        OIETriple(
            triple_id="t3",
            subject="University of Virginia",
            predicate="be an early member of",
            object="U21",
            gold=TripleGold("e:uva", "r:founded", "e:u21"),
        ),
    ]


@pytest.fixture(scope="session")
def tiny_okb(tiny_triples) -> OpenKB:
    return OpenKB(tiny_triples)


@pytest.fixture(scope="session")
def tiny_anchors() -> AnchorStatistics:
    anchors = AnchorStatistics()
    anchors.record("university of maryland", "e:umd", 50)
    anchors.record("umd", "e:umd", 20)
    anchors.record("maryland", "e:maryland", 60)
    anchors.record("maryland", "e:umd", 6)
    anchors.record("universitas 21", "e:u21", 10)
    anchors.record("u21", "e:u21", 8)
    anchors.record("university of virginia", "e:uva", 40)
    return anchors


@pytest.fixture(scope="session")
def tiny_ppdb() -> ParaphraseDB:
    db = ParaphraseDB(seed=0)
    db.add_pair("be a member of", "be an early member of")
    db.add_pair("umd", "university of maryland")
    return db


@pytest.fixture(scope="session")
def tiny_side(tiny_okb, tiny_kb, tiny_anchors, tiny_ppdb) -> SideInformation:
    return SideInformation.build(
        okb=tiny_okb,
        kb=tiny_kb,
        anchors=tiny_anchors,
        ppdb=tiny_ppdb,
    )


@pytest.fixture(scope="session")
def small_dataset():
    """A small generated ReVerb45K-shaped dataset (fast, deterministic)."""
    return generate_reverb45k(
        ReVerb45KConfig(n_entities=32, n_facts=70, n_triples=90, seed=3)
    )


@pytest.fixture(scope="session")
def small_side(small_dataset) -> SideInformation:
    return small_dataset.side_information("test")
