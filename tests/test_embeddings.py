"""Tests for the embedding substrate (hashed n-gram + SGNS)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embeddings.base import cosine_similarity
from repro.embeddings.hashed import HashedCharNgramEmbedding
from repro.embeddings.sgns import SkipGramConfig, SkipGramModel

words = st.text(alphabet="abcdefgh", min_size=1, max_size=10)


class TestCosine:
    def test_parallel(self):
        assert cosine_similarity(np.array([1.0, 0.0]), np.array([2.0, 0.0])) == 1.0

    def test_orthogonal(self):
        assert cosine_similarity(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 0.0

    def test_negative_clipped(self):
        assert cosine_similarity(np.array([1.0]), np.array([-1.0])) == 0.0

    def test_zero_vector(self):
        assert cosine_similarity(np.zeros(3), np.ones(3)) == 0.0


class TestHashedEmbedding:
    def test_deterministic(self):
        a = HashedCharNgramEmbedding(dimension=32, seed=1)
        b = HashedCharNgramEmbedding(dimension=32, seed=1)
        assert np.allclose(a.vector("maryland"), b.vector("maryland"))

    def test_seed_changes_space(self):
        a = HashedCharNgramEmbedding(dimension=32, seed=1)
        b = HashedCharNgramEmbedding(dimension=32, seed=2)
        assert not np.allclose(a.vector("maryland"), b.vector("maryland"))

    def test_case_insensitive(self):
        emb = HashedCharNgramEmbedding(dimension=32)
        assert np.allclose(emb.vector("Maryland"), emb.vector("maryland"))

    def test_unit_norm(self):
        emb = HashedCharNgramEmbedding(dimension=32)
        assert np.linalg.norm(emb.vector("maryland")) == pytest.approx(1.0)

    def test_morphological_variants_closer_than_random(self):
        emb = HashedCharNgramEmbedding(dimension=64)
        related = emb.similarity("maryland", "marylands")
        unrelated = emb.similarity("maryland", "zyxwvu")
        assert related > unrelated + 0.2

    def test_phrase_vector_averages(self):
        emb = HashedCharNgramEmbedding(dimension=16)
        phrase = emb.phrase_vector("university of maryland")
        mean = np.mean(
            [emb.vector(w) for w in ("university", "of", "maryland")], axis=0
        )
        assert np.allclose(phrase, mean)

    def test_empty_phrase_is_zero(self):
        emb = HashedCharNgramEmbedding(dimension=16)
        assert np.allclose(emb.phrase_vector("!!!"), np.zeros(16))

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            HashedCharNgramEmbedding(dimension=0)
        with pytest.raises(ValueError):
            HashedCharNgramEmbedding(min_n=4, max_n=3)

    @given(words, words)
    @settings(max_examples=25, deadline=None)
    def test_similarity_bounds(self, first, second):
        emb = HashedCharNgramEmbedding(dimension=16)
        assert 0.0 <= emb.similarity(first, second) <= 1.0

    @given(words)
    @settings(max_examples=25, deadline=None)
    def test_self_similarity(self, word):
        emb = HashedCharNgramEmbedding(dimension=16)
        assert emb.similarity(word, word) == pytest.approx(1.0)


class TestSkipGram:
    @pytest.fixture(scope="class")
    def trained(self):
        # Tiny corpus with two clear co-occurrence clusters.
        corpus = []
        for _ in range(60):
            corpus.append(["king", "rules", "castle"])
            corpus.append(["queen", "rules", "castle"])
            corpus.append(["fish", "swims", "ocean"])
            corpus.append(["shark", "swims", "ocean"])
        model = SkipGramModel(SkipGramConfig(dimension=16, epochs=4, seed=3))
        return model.train(corpus)

    def test_vocabulary(self, trained):
        assert "king" in trained.vocabulary
        assert "king" in trained

    def test_cooccurring_words_closer(self, trained):
        same_cluster = trained.similarity("king", "queen")
        cross_cluster = trained.similarity("king", "shark")
        assert same_cluster > cross_cluster

    def test_oov_fallback(self, trained):
        vector = trained.vector("neverseen")
        assert vector.shape == (16,)
        assert np.linalg.norm(vector) > 0

    def test_untrained_model_uses_fallback(self):
        model = SkipGramModel(SkipGramConfig(dimension=8))
        assert model.vector("anything").shape == (8,)

    def test_empty_corpus(self):
        model = SkipGramModel(SkipGramConfig(dimension=8))
        model.train([])
        assert model.vocabulary == frozenset()

    def test_min_count_prunes(self):
        model = SkipGramModel(SkipGramConfig(dimension=8, min_count=2))
        model.train([["rare", "common"], ["common", "word"], ["common", "word"]])
        assert "rare" not in model.vocabulary
        assert "common" in model.vocabulary
