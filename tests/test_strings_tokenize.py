"""Tests for repro.strings.tokenize."""

from hypothesis import given
from hypothesis import strategies as st

from repro.strings.tokenize import normalize_text, tokenize, word_set


class TestNormalizeText:
    def test_lowercases(self):
        assert normalize_text("University Of Maryland") == "university of maryland"

    def test_collapses_whitespace(self):
        assert normalize_text("  a \t b\n c ") == "a b c"

    def test_empty_string(self):
        assert normalize_text("") == ""

    def test_idempotent(self):
        text = "University  of   MARYLAND"
        assert normalize_text(normalize_text(text)) == normalize_text(text)


class TestTokenize:
    def test_basic_split(self):
        assert tokenize("University of Maryland") == ["university", "of", "maryland"]

    def test_punctuation_separates(self):
        assert tokenize("hello,world!") == ["hello", "world"]

    def test_numbers_kept(self):
        assert tokenize("universitas 21") == ["universitas", "21"]

    def test_apostrophe_inside_word(self):
        assert tokenize("o'brien works") == ["o'brien", "works"]

    def test_empty(self):
        assert tokenize("") == []

    def test_only_punctuation(self):
        assert tokenize("!!! ???") == []

    @given(st.text(max_size=60))
    def test_all_tokens_lowercase(self, text):
        for token in tokenize(text):
            assert token == token.lower()

    @given(st.text(max_size=60))
    def test_tokens_nonempty(self, text):
        assert all(token for token in tokenize(text))


class TestWordSet:
    def test_deduplicates(self):
        assert word_set("the cat and the hat") == frozenset(
            {"the", "cat", "and", "hat"}
        )

    def test_frozen(self):
        assert isinstance(word_set("a b"), frozenset)

    @given(st.text(max_size=60))
    def test_subset_of_tokens(self, text):
        assert word_set(text) == frozenset(tokenize(text))
