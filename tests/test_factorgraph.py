"""Tests for the factor-graph engine: graph, LBP, learning.

The key correctness test: on tree-shaped graphs sum-product LBP is
exact, so marginals must match brute-force enumeration.
"""

import itertools

import numpy as np
import pytest

from repro.factorgraph.graph import FactorGraph, FactorTemplate, Variable
from repro.factorgraph.lbp import LoopyBP, Schedule, ScheduleStep
from repro.factorgraph.learner import TemplateLearner


def build_chain(weights=(1.0, 1.0)):
    """x1 - f12 - x2 chain with unary factors; returns (graph, tables)."""
    graph = FactorGraph()
    graph.add_variable(Variable("x1", [0, 1], group="a"))
    graph.add_variable(Variable("x2", [0, 1], group="b"))
    unary = FactorTemplate("F", ["score"], initial_weights=[weights[0]])
    pairwise = FactorTemplate("U", ["agree"], initial_weights=[weights[1]])
    graph.add_template(unary)
    graph.add_template(pairwise)
    graph.add_factor("f1", unary, ["x1"], np.array([[0.2], [0.8]]))
    graph.add_factor("f2", unary, ["x2"], np.array([[0.7], [0.3]]))
    graph.add_factor(
        "u12", pairwise, ["x1", "x2"], np.array([[0.9], [0.1], [0.1], [0.9]])
    )
    return graph


def brute_force_marginals(graph):
    """Exact marginals by enumerating all joint assignments."""
    variables = list(graph.variables.values())
    marginals = {v.name: np.zeros(v.cardinality) for v in variables}
    total = 0.0
    for assignment in itertools.product(*(range(v.cardinality) for v in variables)):
        state = dict(zip((v.name for v in variables), assignment, strict=True))
        weight = 1.0
        for factor in graph.factors.values():
            idx = tuple(state[v.name] for v in factor.variables)
            weight *= float(factor.values()[idx])
        total += weight
        for v in variables:
            marginals[v.name][state[v.name]] += weight
    return {name: m / total for name, m in marginals.items()}


class TestGraphConstruction:
    def test_variable_validation(self):
        with pytest.raises(ValueError):
            Variable("x", [])
        with pytest.raises(ValueError):
            Variable("x", [0, 0])

    def test_template_weight_validation(self):
        template = FactorTemplate("T", ["a", "b"])
        with pytest.raises(ValueError):
            template.set_weights(np.array([1.0]))
        with pytest.raises(ValueError):
            FactorTemplate("T", [])

    def test_feature_table_shape_validation(self):
        graph = FactorGraph()
        graph.add_variable(Variable("x", [0, 1]))
        template = FactorTemplate("T", ["a"])
        with pytest.raises(ValueError):
            graph.add_factor("f", template, ["x"], np.zeros((3, 1)))

    def test_duplicate_names_rejected(self):
        graph = FactorGraph()
        graph.add_variable(Variable("x", [0, 1]))
        with pytest.raises(ValueError):
            graph.add_variable(Variable("x", [0, 1]))
        template = FactorTemplate("T", ["a"])
        graph.add_factor("f", template, ["x"], np.zeros((2, 1)))
        with pytest.raises(ValueError):
            graph.add_factor("f", template, ["x"], np.zeros((2, 1)))

    def test_values_cache_invalidation(self):
        graph = build_chain()
        factor = graph.factors["f1"]
        before = factor.values().copy()
        factor.template.set_weights(np.array([3.0]))
        after = factor.values()
        assert not np.allclose(before, after)

    def test_factors_of(self):
        graph = build_chain()
        names = {f.name for f in graph.factors_of("x1")}
        assert names == {"f1", "u12"}

    def test_variable_groups(self):
        graph = build_chain()
        groups = graph.variable_groups()
        assert {v.name for v in groups["a"]} == {"x1"}


class TestLBPExactness:
    def test_chain_marginals_match_enumeration(self):
        graph = build_chain()
        result = LoopyBP(graph, max_iterations=50).run()
        exact = brute_force_marginals(graph)
        for name in graph.variables:
            assert np.allclose(result.marginal(name), exact[name], atol=1e-6)

    def test_star_graph_marginals(self):
        # Hub variable with 3 leaves; still a tree -> exact.
        graph = FactorGraph()
        graph.add_variable(Variable("hub", [0, 1, 2]))
        template = FactorTemplate("U", ["match"], initial_weights=[1.5])
        graph.add_template(template)
        unary = FactorTemplate("F", ["bias"], initial_weights=[1.0])
        graph.add_template(unary)
        rng = np.random.default_rng(0)
        for leaf in ("l1", "l2", "l3"):
            graph.add_variable(Variable(leaf, [0, 1]))
            graph.add_factor(
                f"u:{leaf}", template, ["hub", leaf], rng.random((6, 1))
            )
            graph.add_factor(f"f:{leaf}", unary, [leaf], rng.random((2, 1)))
        result = LoopyBP(graph, max_iterations=60).run()
        exact = brute_force_marginals(graph)
        for name in graph.variables:
            assert np.allclose(result.marginal(name), exact[name], atol=1e-6)

    def test_evidence_clamps_variable(self):
        graph = build_chain()
        result = LoopyBP(graph).run(evidence={"x1": 1})
        assert result.marginal("x1")[1] == pytest.approx(1.0)

    def test_evidence_conditions_neighbors(self):
        graph = build_chain((1.0, 3.0))  # strong agreement factor
        free = LoopyBP(graph).run()
        clamped = LoopyBP(graph).run(evidence={"x1": 1})
        assert clamped.marginal("x2")[1] > free.marginal("x2")[1]

    def test_map_state(self):
        graph = build_chain()
        result = LoopyBP(graph).run()
        assert result.map_state("x1") == 1
        assert result.map_probability("x1") > 0.5

    def test_convergence_reported(self):
        graph = build_chain()
        result = LoopyBP(graph, max_iterations=50, tolerance=1e-6).run()
        assert result.converged
        assert result.iterations < 50
        assert result.residuals[-1] < 1e-6

    def test_loopy_graph_still_normalizes(self):
        # Triangle (loopy): marginals approximate but must be proper
        # distributions.
        graph = FactorGraph()
        for name in ("a", "b", "c"):
            graph.add_variable(Variable(name, [0, 1]))
        template = FactorTemplate("U", ["agree"], initial_weights=[1.0])
        graph.add_template(template)
        table = np.array([[0.9], [0.2], [0.2], [0.9]])
        graph.add_factor("ab", template, ["a", "b"], table)
        graph.add_factor("bc", template, ["b", "c"], table)
        graph.add_factor("ca", template, ["c", "a"], table)
        result = LoopyBP(graph, max_iterations=100, damping=0.3).run()
        for name in ("a", "b", "c"):
            assert result.marginal(name).sum() == pytest.approx(1.0)

    def test_damping_validation(self):
        graph = build_chain()
        with pytest.raises(ValueError):
            LoopyBP(graph, damping=1.0)

    def test_custom_schedule_equivalent_on_tree(self):
        graph = build_chain()
        schedule = Schedule.grouped([["F"], ["U"]], [["a"], ["b"]])
        result = LoopyBP(graph, schedule=schedule, max_iterations=60).run()
        exact = brute_force_marginals(graph)
        for name in graph.variables:
            assert np.allclose(result.marginal(name), exact[name], atol=1e-5)

    def test_schedule_step_validation(self):
        with pytest.raises(ValueError):
            ScheduleStep(kind="bogus")


class TestExpectedFeatures:
    def test_expected_features_match_enumeration(self):
        graph = build_chain()
        result = LoopyBP(graph, max_iterations=60).run()
        expectations = result.expected_features()
        # Brute force expected features for template F.
        exact = brute_force_marginals(graph)
        f1 = graph.factors["f1"].feature_table
        f2 = graph.factors["f2"].feature_table
        expected_F = exact["x1"] @ f1 + exact["x2"] @ f2
        assert np.allclose(expectations["F"], expected_F, atol=1e-5)


class TestLearner:
    def test_gradient_moves_toward_evidence(self):
        graph = build_chain()
        before = LoopyBP(graph).run().marginal("x2")[1]
        learner = TemplateLearner(graph, learning_rate=0.5, max_iterations=15)
        history = learner.fit({"x1": 1, "x2": 1})
        after = LoopyBP(graph).run().marginal("x2")[1]
        assert after > before
        assert history.iterations > 0

    def test_gradient_norm_decreases(self):
        graph = build_chain()
        learner = TemplateLearner(graph, learning_rate=0.2, max_iterations=10)
        history = learner.fit({"x1": 1})
        assert history.gradient_norms[-1] <= history.gradient_norms[0] + 1e-9

    def test_empty_evidence_rejected(self):
        graph = build_chain()
        with pytest.raises(ValueError):
            TemplateLearner(graph).fit({})

    def test_unknown_evidence_rejected(self):
        graph = build_chain()
        with pytest.raises(KeyError):
            TemplateLearner(graph).fit({"zzz": 1})

    def test_l2_regularization_shrinks(self):
        plain = build_chain()
        TemplateLearner(plain, learning_rate=0.3, max_iterations=8).fit({"x1": 1})
        regularized = build_chain()
        TemplateLearner(
            regularized, learning_rate=0.3, max_iterations=8, l2=1.0
        ).fit({"x1": 1})
        norm_plain = np.linalg.norm(plain.templates["F"].weights)
        norm_reg = np.linalg.norm(regularized.templates["F"].weights)
        assert norm_reg < norm_plain

    def test_transfer_weights(self):
        source = build_chain()
        TemplateLearner(source, learning_rate=0.3, max_iterations=5).fit({"x1": 1})
        target = build_chain()
        TemplateLearner(source).transfer_weights_to(target)
        assert np.allclose(
            source.templates["F"].weights, target.templates["F"].weights
        )

    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError):
            TemplateLearner(build_chain(), learning_rate=0.0)
