"""Tests for union-find, the Clustering container, and HAC."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.clustering.clusters import Clustering
from repro.clustering.hac import Linkage, hac_cluster
from repro.clustering.unionfind import UnionFind


class TestUnionFind:
    def test_singletons_initially(self):
        finder = UnionFind(["a", "b"])
        assert not finder.connected("a", "b")

    def test_union_connects(self):
        finder = UnionFind()
        finder.union("a", "b")
        assert finder.connected("a", "b")

    def test_transitive(self):
        finder = UnionFind()
        finder.union("a", "b")
        finder.union("b", "c")
        assert finder.connected("a", "c")

    def test_groups(self):
        finder = UnionFind(["a", "b", "c", "d"])
        finder.union("a", "b")
        groups = {frozenset(g) for g in finder.groups()}
        assert frozenset({"a", "b"}) in groups
        assert frozenset({"c"}) in groups
        assert len(groups) == 3

    def test_find_adds_lazily(self):
        finder = UnionFind()
        assert finder.find("new") == "new"
        assert "new" in finder

    def test_len(self):
        finder = UnionFind(["a", "b"])
        assert len(finder) == 2

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=40
        )
    )
    def test_groups_partition_items(self, pairs):
        finder = UnionFind()
        for a, b in pairs:
            finder.union(a, b)
        groups = finder.groups()
        seen = [item for group in groups for item in group]
        assert len(seen) == len(set(seen))  # disjoint
        assert set(seen) == {x for pair in pairs for x in pair}

    @given(
        st.lists(
            st.tuples(st.integers(0, 10), st.integers(0, 10)), max_size=30
        )
    )
    def test_connectivity_matches_naive_closure(self, pairs):
        finder = UnionFind()
        adjacency: dict[int, set[int]] = {}
        for a, b in pairs:
            finder.union(a, b)
            adjacency.setdefault(a, set()).add(b)
            adjacency.setdefault(b, set()).add(a)
        # naive BFS closure
        for start in adjacency:
            reachable = {start}
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for neighbor in adjacency.get(node, ()):
                    if neighbor not in reachable:
                        reachable.add(neighbor)
                        frontier.append(neighbor)
            for other in adjacency:
                assert finder.connected(start, other) == (other in reachable)


class TestClustering:
    def test_basic_groups(self):
        clustering = Clustering([["a", "b"], ["c"]])
        assert len(clustering) == 2
        assert clustering.same_cluster("a", "b")
        assert not clustering.same_cluster("a", "c")

    def test_duplicate_item_rejected(self):
        with pytest.raises(ValueError):
            Clustering([["a"], ["a", "b"]])

    def test_empty_groups_skipped(self):
        clustering = Clustering([[], ["a"]])
        assert len(clustering) == 1

    def test_from_pairs(self):
        clustering = Clustering.from_pairs(
            ["a", "b", "c", "d"], [("a", "b"), ("b", "c")]
        )
        assert clustering.same_cluster("a", "c")
        assert clustering.cluster_of("d") == frozenset({"d"})

    def test_from_assignment(self):
        clustering = Clustering.from_assignment({"a": 1, "b": 1, "c": 2})
        assert clustering.same_cluster("a", "b")
        assert not clustering.same_cluster("a", "c")

    def test_restricted_to(self):
        clustering = Clustering([["a", "b", "c"], ["d"]])
        projected = clustering.restricted_to(["a", "b", "d"])
        assert projected.items == frozenset({"a", "b", "d"})
        assert projected.same_cluster("a", "b")

    def test_non_singletons(self):
        clustering = Clustering([["a", "b"], ["c"]])
        assert clustering.non_singletons() == [frozenset({"a", "b"})]

    def test_merged_pairs(self):
        clustering = Clustering([["a", "b", "c"]])
        assert clustering.merged_pairs() == {
            frozenset({"a", "b"}),
            frozenset({"a", "c"}),
            frozenset({"b", "c"}),
        }

    def test_same_cluster_missing_item(self):
        clustering = Clustering([["a"]])
        assert not clustering.same_cluster("a", "zzz")

    def test_equality(self):
        assert Clustering([["a", "b"]]) == Clustering([["b", "a"]])
        assert Clustering([["a"], ["b"]]) != Clustering([["a", "b"]])


class TestHAC:
    @staticmethod
    def _char_overlap(first: str, second: str) -> float:
        union = set(first) | set(second)
        if not union:
            return 0.0
        return len(set(first) & set(second)) / len(union)

    def test_merges_above_threshold(self):
        clustering = hac_cluster(
            ["ab", "abc", "xyz"], self._char_overlap, threshold=0.5
        )
        assert clustering.same_cluster("ab", "abc")
        assert not clustering.same_cluster("ab", "xyz")

    def test_threshold_one_requires_identity(self):
        clustering = hac_cluster(["ab", "ba", "cd"], self._char_overlap, 1.0)
        assert clustering.same_cluster("ab", "ba")  # same char set
        assert not clustering.same_cluster("ab", "cd")

    def test_empty_and_singleton(self):
        assert len(hac_cluster([], self._char_overlap, 0.5)) == 0
        assert len(hac_cluster(["a"], self._char_overlap, 0.5)) == 1

    def test_duplicates_collapsed(self):
        clustering = hac_cluster(["a", "a", "b"], self._char_overlap, 0.9)
        assert clustering.items == frozenset({"a", "b"})

    def test_single_linkage_chains_more_than_complete(self):
        # a-b similar, b-c similar, a-c dissimilar: single linkage chains.
        sims = {("a", "b"): 0.9, ("b", "c"): 0.9, ("a", "c"): 0.0}

        def sim(x, y):
            return sims.get((x, y), sims.get((y, x), 0.0))

        single = hac_cluster(["a", "b", "c"], sim, 0.5, Linkage.SINGLE)
        complete = hac_cluster(["a", "b", "c"], sim, 0.5, Linkage.COMPLETE)
        assert single.same_cluster("a", "c")
        assert not complete.same_cluster("a", "c")

    def test_all_clusters_meet_threshold_under_complete_linkage(self):
        import random

        rng = random.Random(5)
        items = [f"item{i}" for i in range(12)]
        sims = {
            frozenset((a, b)): rng.random()
            for i, a in enumerate(items)
            for b in items[i + 1 :]
        }

        def sim(x, y):
            return sims[frozenset((x, y))]

        clustering = hac_cluster(items, sim, 0.6, Linkage.COMPLETE)
        for group in clustering.groups:
            members = sorted(group)
            for i, a in enumerate(members):
                for b in members[i + 1 :]:
                    assert sim(a, b) >= 0.6 or len(members) > 2


class TestHACAggregateParity:
    """The O(1) pair-aggregate implementation must reproduce the
    recompute-on-every-pop implementation it replaced, exactly."""

    @staticmethod
    def _reference_hac(items, similarity, threshold, linkage):
        """The pre-aggregate implementation, verbatim."""
        import heapq as _heapq
        import itertools as _itertools

        unique_items = list(dict.fromkeys(items))
        n = len(unique_items)
        if n <= 1:
            return Clustering([unique_items] if unique_items else [])
        sim = {}
        for i, j in _itertools.combinations(range(n), 2):
            sim[(i, j)] = similarity(unique_items[i], unique_items[j])

        def item_sim(i, j):
            return sim[(i, j)] if i < j else sim[(j, i)]

        clusters = {i: [i] for i in range(n)}
        next_id = n

        def cluster_sim(members_a, members_b):
            scores = [item_sim(i, j) for i in members_a for j in members_b]
            if linkage is Linkage.SINGLE:
                return max(scores)
            if linkage is Linkage.COMPLETE:
                return min(scores)
            return sum(scores) / len(scores)

        heap = []
        for a, b in _itertools.combinations(range(n), 2):
            score = cluster_sim(clusters[a], clusters[b])
            if score >= threshold:
                _heapq.heappush(heap, (-score, a, b))
        while heap:
            _neg, a, b = _heapq.heappop(heap)
            if a not in clusters or b not in clusters:
                continue
            score = cluster_sim(clusters[a], clusters[b])
            if score < threshold:
                continue
            merged = clusters.pop(a) + clusters.pop(b)
            clusters[next_id] = merged
            for other_id, other_members in clusters.items():
                if other_id == next_id:
                    continue
                pair_score = cluster_sim(merged, other_members)
                if pair_score >= threshold:
                    _heapq.heappush(
                        heap,
                        (-pair_score, min(next_id, other_id), max(next_id, other_id)),
                    )
            next_id += 1
        return Clustering(
            [unique_items[i] for i in members] for members in clusters.values()
        )

    @pytest.mark.parametrize("linkage", list(Linkage))
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("threshold", [0.3, 0.5, 0.7])
    def test_parity_on_seeded_random_similarities(self, linkage, seed, threshold):
        import random

        rng = random.Random(seed)
        items = [f"item{i}" for i in range(24)]
        table = {}
        for i, a in enumerate(items):
            for b in items[i + 1 :]:
                table[frozenset((a, b))] = round(rng.random(), 3)

        def similarity(a, b):
            return table[frozenset((a, b))]

        assert hac_cluster(items, similarity, threshold, linkage) == (
            self._reference_hac(items, similarity, threshold, linkage)
        )

    @pytest.mark.parametrize("linkage", list(Linkage))
    def test_parity_on_string_overlap(self, linkage):
        items = [
            "university of maryland", "maryland university", "umd",
            "university of virginia", "uva", "virginia tech",
            "paris", "paris france", "france",
        ]

        def overlap(a, b):
            first, second = set(a.split()), set(b.split())
            union = first | second
            return len(first & second) / len(union) if union else 0.0

        assert hac_cluster(items, overlap, 0.25, linkage) == (
            self._reference_hac(items, overlap, 0.25, linkage)
        )
