"""Tests for factor-graph construction (Section 3 wiring)."""

import pytest

from repro.core.builder import (
    GraphBuilder,
    NIL,
    _admissible_pairs,
    _triangles,
    canon_var,
    link_var,
)
from repro.core.config import JOCLConfig
from repro.core.variants import jocl_cano_config, jocl_link_config
from repro.strings.idf import IdfStatistics


@pytest.fixture(scope="module")
def built(tiny_side):
    builder = GraphBuilder(tiny_side, JOCLConfig())
    graph, index = builder.build()
    return builder, graph, index


class TestVariableCreation:
    def test_linking_variable_per_node(self, built):
        _builder, graph, index = built
        for kind in ("S", "P", "O"):
            for phrase in index.kind_nodes(kind):
                assert link_var(kind, phrase) in graph.variables

    def test_linking_domains_are_candidates(self, built):
        _builder, graph, index = built
        variable = graph.variables[link_var("S", "umd")]
        assert "e:umd" in variable.domain

    def test_pair_pruning_threshold(self, built):
        _builder, _graph, index = built
        # "university of maryland" / "university of virginia" share
        # frequent tokens only -> below 0.5 -> no canonicalization var.
        pairs = index.pairs["S"]
        assert ("university of maryland", "university of virginia") not in pairs

    def test_canon_variable_binary(self, built):
        _builder, graph, index = built
        for kind in ("S", "P", "O"):
            for first, second in index.pairs[kind]:
                variable = graph.variables[canon_var(kind, first, second)]
                assert variable.domain == (0, 1)

    def test_groups_assigned(self, built):
        _builder, graph, _index = built
        groups = {v.group for v in graph.variables.values()}
        assert groups <= {"canonicalization", "linking"}


class TestFactorCreation:
    def test_one_linking_factor_per_node(self, built):
        _builder, graph, index = built
        f4 = [f for f in graph.factors.values() if f.template.name == "F4"]
        assert len(f4) == len(index.kind_nodes("S"))
        f5 = [f for f in graph.factors.values() if f.template.name == "F5"]
        assert len(f5) == len(index.kind_nodes("P"))

    def test_fact_inclusion_per_triple(self, built, tiny_okb):
        _builder, graph, index = built
        u4 = [f for f in graph.factors.values() if f.template.name == "U4"]
        assert len(u4) == len(tiny_okb)
        assert len(index.fact_factors) == len(tiny_okb)

    def test_consistency_per_pair(self, built):
        _builder, graph, index = built
        u5 = [f for f in graph.factors.values() if f.template.name == "U5"]
        assert len(u5) == len(index.pairs["S"])
        u6 = [f for f in graph.factors.values() if f.template.name == "U6"]
        assert len(u6) == len(index.pairs["P"])

    def test_templates_shared(self, built):
        _builder, graph, _index = built
        f4_factors = [f for f in graph.factors.values() if f.template.name == "F4"]
        assert len({id(f.template) for f in f4_factors}) == 1


class TestToggles:
    def test_cano_only_graph(self, tiny_side):
        builder = GraphBuilder(tiny_side, jocl_cano_config())
        graph, index = builder.build()
        assert not index.has_linking
        assert all(v.group == "canonicalization" for v in graph.variables.values())
        assert not any(f.template.name == "U5" for f in graph.factors.values())

    def test_link_only_graph(self, tiny_side):
        builder = GraphBuilder(tiny_side, jocl_link_config())
        graph, index = builder.build()
        assert not index.has_canonicalization
        assert all(v.group == "linking" for v in graph.variables.values())

    def test_schedule_respects_toggles(self, tiny_side):
        full = GraphBuilder(tiny_side, JOCLConfig()).schedule()
        kinds = [step.names for step in full.steps]
        assert ("F1", "F2", "F3") in kinds
        assert ("U5", "U6", "U7") in kinds
        cano = GraphBuilder(tiny_side, jocl_cano_config()).schedule()
        cano_kinds = [step.names for step in cano.steps]
        assert ("U5", "U6", "U7") not in cano_kinds
        assert ("F4", "F5", "F6") not in cano_kinds


class TestPairEnumeration:
    def test_admissible_pairs_threshold(self):
        stats = IdfStatistics(["alpha beta", "alpha gamma", "delta"])
        pairs = _admissible_pairs(["alpha beta", "alpha gamma", "delta"], stats, 0.2)
        assert ("alpha beta", "alpha gamma") in pairs
        assert all("delta" not in pair for pair in pairs)

    def test_admissible_pairs_sorted_unique(self):
        stats = IdfStatistics(["a b", "a c", "a d"])
        pairs = _admissible_pairs(["a b", "a c", "a d"], stats, 0.0)
        assert pairs == sorted(set(pairs))
        assert all(a < b for a, b in pairs)

    def test_triangles_require_all_edges(self):
        pairs = [("a", "b"), ("b", "c")]
        assert _triangles(pairs, 100) == []
        pairs.append(("a", "c"))
        assert _triangles(pairs, 100) == [("a", "b", "c")]

    def test_triangles_cap(self):
        # K5 has 10 triangles; cap at 4.
        nodes = ["a", "b", "c", "d", "e"]
        pairs = [(x, y) for i, x in enumerate(nodes) for y in nodes[i + 1 :]]
        assert len(_triangles(pairs, 4)) == 4


class TestNilHandling:
    def test_unknown_phrase_gets_nil_domain(self, tiny_kb, tiny_anchors, tiny_ppdb):
        from repro.core.side_info import SideInformation
        from repro.okb.store import OpenKB
        from repro.okb.triples import OIETriple

        okb = OpenKB([OIETriple("t1", "zzzz", "qqqq rrrr", "wwww")])
        side = SideInformation.build(
            okb=okb, kb=tiny_kb, anchors=tiny_anchors, ppdb=tiny_ppdb
        )
        graph, index = GraphBuilder(side, JOCLConfig()).build()
        assert index.candidates[("S", "zzzz")] == (NIL,)
        assert graph.variables[link_var("S", "zzzz")].cardinality == 1
