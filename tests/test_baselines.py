"""Tests for all baseline systems (Tables 1-3, Figure 3)."""

import pytest

from repro.baselines import (
    AmieClusteringBaseline,
    AttributeOverlapBaseline,
    CesiBaseline,
    EarlBaseline,
    FalconBaseline,
    IdfTokenOverlapBaseline,
    KBPearlBaseline,
    MorphNormBaseline,
    PattyBaseline,
    RematchBaseline,
    SistBaseline,
    SpotlightBaseline,
    TagmeBaseline,
    TextSimilarityBaseline,
    WikidataIntegratorBaseline,
)
from repro.baselines.base import phrases_of_kind

CANON_BASELINES = [
    MorphNormBaseline(),
    WikidataIntegratorBaseline(),
    TextSimilarityBaseline(),
    IdfTokenOverlapBaseline(),
    AttributeOverlapBaseline(),
    CesiBaseline(),
    SistBaseline(),
]

RP_BASELINES = [AmieClusteringBaseline(), PattyBaseline(), SistBaseline()]

LINKERS = [
    SpotlightBaseline(),
    TagmeBaseline(),
    FalconBaseline(),
    EarlBaseline(),
    KBPearlBaseline(),
    KBPearlBaseline(iterations=1),
    RematchBaseline(),
]


class TestCanonicalizationBaselines:
    @pytest.mark.parametrize("system", CANON_BASELINES, ids=lambda s: s.name)
    def test_partitions_all_subject_nps(self, system, tiny_side):
        clustering = system.cluster(tiny_side, "S")
        assert clustering.items == frozenset(phrases_of_kind(tiny_side, "S"))

    @pytest.mark.parametrize("system", RP_BASELINES, ids=lambda s: s.name)
    def test_partitions_all_rps(self, system, tiny_side):
        clustering = system.cluster(tiny_side, "P")
        assert clustering.items == frozenset(phrases_of_kind(tiny_side, "P"))

    def test_unsupported_kind_rejected(self, tiny_side):
        with pytest.raises(ValueError):
            AmieClusteringBaseline().cluster(tiny_side, "S")
        with pytest.raises(ValueError):
            WikidataIntegratorBaseline().cluster(tiny_side, "P")

    def test_morph_norm_merges_inflections(self, small_side):
        clustering = MorphNormBaseline().cluster(small_side, "P")
        phrases = phrases_of_kind(small_side, "P")
        from repro.okb.normalize import morph_normalize

        for first in phrases:
            for second in phrases:
                if morph_normalize(first) == morph_normalize(second):
                    assert clustering.same_cluster(first, second)

    def test_wikidata_integrator_groups_aliases(self, tiny_side):
        clustering = WikidataIntegratorBaseline().cluster(tiny_side, "S")
        assert clustering.same_cluster("umd", "university of maryland")

    def test_cesi_uses_ppdb_hard_merge(self, tiny_side):
        clustering = CesiBaseline().cluster(tiny_side, "P")
        assert clustering.same_cluster("be a member of", "be an early member of")

    def test_sist_merges_shared_candidate_nps(self, tiny_side):
        clustering = SistBaseline().cluster(tiny_side, "S")
        assert clustering.same_cluster("umd", "university of maryland")


class TestLinkingBaselines:
    @pytest.mark.parametrize("system", LINKERS, ids=lambda s: str(id(s)))
    def test_linking_result_shape(self, system, tiny_side):
        result = system.link(tiny_side)
        if system.name != "ReMatch":
            assert set(result.entity_links) == set(phrases_of_kind(tiny_side, "S"))
        if system.links_relations:
            assert set(result.relation_links) == set(
                phrases_of_kind(tiny_side, "P")
            )

    def test_spotlight_prefers_popularity(self, tiny_side):
        result = SpotlightBaseline().link(tiny_side)
        # "maryland" is dominated by e:maryland in the anchors.
        assert result.object_links["maryland"] == "e:maryland"

    def test_falcon_links_exact_alias(self, tiny_side):
        result = FalconBaseline().link(tiny_side)
        assert result.entity_links["umd"] == "e:umd"
        assert result.relation_links["locate in"] == "r:contained_by"

    def test_earl_uses_fact_coherence(self, tiny_side):
        result = EarlBaseline().link(tiny_side)
        assert result.entity_links["university of maryland"] == "e:umd"

    def test_kbpearl_iterations(self, tiny_side):
        one = KBPearlBaseline(iterations=1).link(tiny_side)
        three = KBPearlBaseline(iterations=3).link(tiny_side)
        assert set(one.entity_links) == set(three.entity_links)

    def test_rematch_links_relations_only(self, tiny_side):
        result = RematchBaseline().link(tiny_side)
        assert result.relation_links
        assert not result.entity_links
        assert result.relation_links["locate in"] == "r:contained_by"

    def test_rematch_min_score_abstains(self, tiny_side):
        strict = RematchBaseline(min_score=0.99)
        result = strict.link(tiny_side)
        # Only exact/ppdb-equivalent phrases survive a 0.99 floor.
        linked = [r for r in result.relation_links.values() if r is not None]
        loose = RematchBaseline(min_score=0.0).link(tiny_side)
        loose_linked = [r for r in loose.relation_links.values() if r is not None]
        assert len(linked) <= len(loose_linked)


class TestBaselineQualityOnGeneratedData:
    """Coarse sanity: every system clears a floor on the small dataset."""

    def test_canon_baselines_nontrivial(self, small_dataset, small_side):
        from repro.metrics import evaluate_clustering

        gold = small_dataset.gold
        for system in CANON_BASELINES:
            report = evaluate_clustering(
                system.cluster(small_side, "S"), gold.np_clusters
            )
            assert report.average_f1 > 0.2, system.name

    def test_linkers_nontrivial(self, small_dataset, small_side):
        from repro.metrics import linking_accuracy

        gold = small_dataset.gold
        for system in (SpotlightBaseline(), FalconBaseline(), KBPearlBaseline()):
            result = system.link(small_side)
            assert linking_accuracy(result.entity_links, gold.entity_links) > 0.3, (
                system.name
            )
