"""Runner mechanics: suppressions, baselines, exit codes, output formats.

The fixture module below carries exactly one finding per checker so
one file exercises the whole registry end to end."""

from __future__ import annotations

import json
import textwrap

import pytest

from tools.analyzers.core import (
    BaselineError,
    Finding,
    Suppressions,
    load_baseline,
    split_fresh,
    write_baseline,
)
from tools.analyzers.runner import ALL_CHECKS, main, run_checks

#: One finding per checker: LOCK01 (unguarded mutation), DET02 (id()
#: key), SCHEMA01 (unpaired serializer), EXC01 (raw builtin raise at a
#: public boundary).
ONE_PER_CHECKER = textwrap.dedent(
    """
    import threading

    FIXTURE_SCHEMA_VERSION = 1


    class Service:
        def __init__(self):
            self._lock = threading.Lock()
            self._engine = None
            self._count = 0

        def swap(self, engine):
            self._engine = engine

        def bump(self):
            with self._lock:
                self._count += 1

        def resolve(self, mention):
            if not mention:
                raise ValueError("mention must be non-empty")
            return mention

        def tag(self, item):
            return id(item)

        def to_dict(self):
            return {
                "schema_version": FIXTURE_SCHEMA_VERSION,
                "tag": self.tag(self._engine),
            }
    """
)


@pytest.fixture
def fixture_file(tmp_path):
    # The serving/ segment puts the file in LOCK's scope while the
    # repro/ segment satisfies DET and SCHEMA.
    target = tmp_path / "src" / "repro" / "serving" / "fixture.py"
    target.parent.mkdir(parents=True)
    target.write_text(ONE_PER_CHECKER, encoding="utf-8")
    return target


def codes(findings):
    return sorted(finding.code for finding in findings)


def test_each_checker_fires_once_on_the_shared_fixture(fixture_file):
    findings = run_checks([fixture_file])
    assert codes(findings) == ["DET02", "EXC01", "LOCK01", "SCHEMA01"]
    owners = {code for check in ALL_CHECKS for code in check.codes}
    assert {finding.code for finding in findings} <= owners


# ----------------------------------------------------------------------
# Suppression scoping
# ----------------------------------------------------------------------
def test_same_line_directive_suppresses_only_that_code(fixture_file):
    source = ONE_PER_CHECKER.replace(
        "self._engine = engine",
        "self._engine = engine  # repro: disable=LOCK01 -- swap is CAS-safe",
    )
    fixture_file.write_text(source, encoding="utf-8")
    assert codes(run_checks([fixture_file])) == ["DET02", "EXC01", "SCHEMA01"]


def test_standalone_directive_applies_to_the_next_code_line(fixture_file):
    source = ONE_PER_CHECKER.replace(
        "        self._engine = engine",
        "        # repro: disable=LOCK01 -- swap is CAS-safe\n"
        "        self._engine = engine",
    )
    fixture_file.write_text(source, encoding="utf-8")
    assert codes(run_checks([fixture_file])) == ["DET02", "EXC01", "SCHEMA01"]


def test_directive_on_the_wrong_line_does_not_suppress(fixture_file):
    source = ONE_PER_CHECKER.replace(
        "def swap(self, engine):",
        "def swap(self, engine):  # repro: disable=LOCK01",
    )
    fixture_file.write_text(source, encoding="utf-8")
    # The finding anchors to the assignment line, not the def line.
    assert "LOCK01" in codes(run_checks([fixture_file]))


def test_file_wide_directive_and_all_keyword(fixture_file):
    source = "# repro: disable-file=DET02 -- debug tags only\n" + ONE_PER_CHECKER
    fixture_file.write_text(source, encoding="utf-8")
    assert codes(run_checks([fixture_file])) == ["EXC01", "LOCK01", "SCHEMA01"]

    fixture_file.write_text(
        "# repro: disable-file=all -- vendored fixture\n" + ONE_PER_CHECKER,
        encoding="utf-8",
    )
    assert run_checks([fixture_file]) == []


def test_same_line_all_suppresses_every_code():
    source = "order = list(set(items))  # repro: disable=all\n"
    suppressions = Suppressions(source)
    finding = Finding(path="x.py", line=1, code="DET01", message="m")
    assert suppressions.suppressed(finding)
    assert not suppressions.suppressed(
        Finding(path="x.py", line=2, code="DET01", message="m")
    )


def test_multiple_codes_in_one_directive():
    suppressions = Suppressions("x = 1  # repro: disable=LOCK01, DET02\n")
    for code in ("LOCK01", "DET02"):
        assert suppressions.suppressed(
            Finding(path="x.py", line=1, code=code, message="m")
        )
    assert not suppressions.suppressed(
        Finding(path="x.py", line=1, code="SCHEMA01", message="m")
    )


# ----------------------------------------------------------------------
# Baseline matching
# ----------------------------------------------------------------------
def test_baseline_matches_on_path_code_message_not_line(tmp_path):
    found = Finding(path="src/a.py", line=40, code="DET01", message="m")
    grandfathered_entry = Finding(path="src/a.py", line=7, code="DET01", message="m")
    fresh, grandfathered = split_fresh([found], [grandfathered_entry])
    assert fresh == [] and grandfathered == [found]


def test_baseline_is_a_multiset():
    finding = Finding(path="src/a.py", line=1, code="DET01", message="m")
    twice = [finding, Finding(path="src/a.py", line=9, code="DET01", message="m")]
    fresh, grandfathered = split_fresh(twice, [finding])
    assert len(grandfathered) == 1 and len(fresh) == 1


def test_baseline_roundtrip_and_malformed_files(tmp_path):
    path = tmp_path / "baseline.json"
    findings = [Finding(path="src/a.py", line=3, code="LOCK01", message="m")]
    write_baseline(path, findings)
    assert load_baseline(path) == findings
    assert load_baseline(tmp_path / "missing.json") == []

    path.write_text("not json", encoding="utf-8")
    with pytest.raises(BaselineError):
        load_baseline(path)
    path.write_text(json.dumps({"version": 99, "findings": []}), encoding="utf-8")
    with pytest.raises(BaselineError):
        load_baseline(path)


# ----------------------------------------------------------------------
# CLI: exit codes and formats
# ----------------------------------------------------------------------
def test_cli_exits_nonzero_on_fresh_findings(fixture_file, tmp_path, capsys):
    empty = tmp_path / "empty.json"
    assert main([str(fixture_file), "--baseline", str(empty)]) == 1
    err = capsys.readouterr().err
    assert "4 fresh finding(s)" in err


def test_cli_exits_zero_when_baseline_covers_everything(fixture_file, tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert main([str(fixture_file), "--baseline", str(baseline), "--update-baseline"]) == 0
    assert main([str(fixture_file), "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "4 grandfathered" in out


def test_cli_github_format_emits_workflow_commands(fixture_file, tmp_path, capsys):
    empty = tmp_path / "empty.json"
    main([str(fixture_file), "--format", "github", "--baseline", str(empty)])
    out = capsys.readouterr().out
    assert "::error file=" in out
    assert "title=LOCK01::" in out


def test_cli_reports_unparseable_files_as_parse_findings(tmp_path, capsys):
    bad = tmp_path / "src" / "repro" / "broken.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("def broken(:\n", encoding="utf-8")
    assert main([str(bad), "--baseline", str(tmp_path / "empty.json")]) == 1
    assert "PARSE" in capsys.readouterr().out


def test_cli_exit_2_when_no_files(tmp_path):
    assert main([str(tmp_path / "nowhere")]) == 2


def test_cli_list_codes_covers_every_registered_code(capsys):
    assert main(["--list-codes"]) == 0
    out = capsys.readouterr().out
    for check in ALL_CHECKS:
        for code in check.codes:
            assert code in out
    assert "PARSE" in out


# ----------------------------------------------------------------------
# The lock-model export
# ----------------------------------------------------------------------
def test_cli_emit_lock_model_writes_guarded_map(fixture_file, tmp_path, capsys):
    target = tmp_path / "lock-model.json"
    assert main([str(fixture_file), f"--emit-lock-model={target}"]) == 0
    assert "lock model" in capsys.readouterr().out
    payload = json.loads(target.read_text(encoding="utf-8"))
    assert payload["version"] == 1
    entries = {entry["qualname"]: entry for entry in payload["classes"]}
    service = entries["Service"]
    assert service["locks"] == {"_lock": "Lock"}
    # _count is mutated only under _lock; _engine has an unguarded
    # mutation site (the LOCK01 above), so the model must NOT claim it.
    assert service["guarded"] == {"_count": ["_lock"]}


def test_cli_emit_lock_model_rejects_unparseable_sources(tmp_path, capsys):
    bad = tmp_path / "src" / "repro" / "serving" / "broken.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("def broken(:\n", encoding="utf-8")
    target = tmp_path / "lock-model.json"
    assert main([str(bad), f"--emit-lock-model={target}"]) == 1
    assert not target.exists()


# ----------------------------------------------------------------------
# The committed gate: repo is clean against the committed baseline
# ----------------------------------------------------------------------
def test_repo_src_is_clean_with_committed_baseline(capsys):
    assert main(["src"]) == 0
    assert "0 fresh" in capsys.readouterr().out
