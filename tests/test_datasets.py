"""Tests for the world model, triple generator, and dataset assembly."""

import random

import pytest

from repro.datasets.base import EvaluationGold, split_by_entity
from repro.datasets.generator import TripleNoiseConfig, generate_triples
from repro.datasets.io import load_triples_jsonl, save_triples_jsonl
from repro.datasets.nytimes2018 import NYTimes2018Config, generate_nytimes2018
from repro.datasets.world import World, WorldConfig


@pytest.fixture(scope="module")
def world():
    return World.generate(WorldConfig(n_entities=24, n_facts=50, seed=3))


class TestWorld:
    def test_deterministic(self):
        config = WorldConfig(n_entities=16, n_facts=30, seed=9)
        a = World.generate(config)
        b = World.generate(config)
        assert [e.entity_id for e in a.entities] == [e.entity_id for e in b.entities]
        assert [
            (f.subject_id, f.relation_name, f.object_id) for f in a.facts
        ] == [(f.subject_id, f.relation_name, f.object_id) for f in b.facts]

    def test_entity_count(self, world):
        assert len(world.entities) == 24

    def test_facts_type_consistent(self, world):
        for fact in world.facts:
            seed = world.relation_seed(fact.relation_name)
            assert world.entity(fact.subject_id).entity_type == seed.subject_type
            assert world.entity(fact.object_id).entity_type == seed.object_type

    def test_curated_kb_export(self, world):
        kb = world.curated_kb()
        assert len(kb.entities) == len(world.entities)
        assert len(kb.facts) == len(world.facts)
        # Limited lexicalization knowledge (kb_lexicalizations_per_relation).
        for relation in kb.relations.values():
            seed = world.relation_seed(relation.name)
            assert len(relation.lexicalizations) <= min(
                len(seed.paraphrases), world.config.kb_lexicalizations_per_relation
            )

    def test_anchor_statistics_cover_all_forms(self, world):
        anchors = world.anchor_statistics()
        for entity in world.entities:
            for form in entity.all_forms():
                assert anchors.count_pair(form, entity.entity_id) > 0

    def test_paraphrase_db_partial_coverage(self, world):
        db = world.paraphrase_db()
        assert len(db) > 0

    def test_corpus_tokenized(self, world):
        corpus = world.corpus(sentences_per_fact=1)
        assert len(corpus) == len(world.facts)
        assert all(isinstance(w, str) for sentence in corpus for w in sentence)

    def test_sample_form_weighted(self, world):
        rng = random.Random(0)
        entity = world.entities[0]
        samples = {world.sample_form(entity.entity_id, rng) for _ in range(200)}
        assert entity.name in samples


class TestTripleGenerator:
    def test_deterministic(self, world):
        noise = TripleNoiseConfig(n_triples=40, seed=5)
        a = generate_triples(world, noise)
        b = generate_triples(world, noise)
        assert [t.as_tuple() for t in a] == [t.as_tuple() for t in b]

    def test_count_and_annotation(self, world):
        triples = generate_triples(world, TripleNoiseConfig(n_triples=40, seed=5))
        assert len(triples) == 40
        assert all(t.gold is not None for t in triples)
        assert all(t.source_sentence for t in triples)

    def test_annotate_false(self, world):
        triples = generate_triples(
            world, TripleNoiseConfig(n_triples=10, seed=5), annotate=False
        )
        assert all(t.gold is None for t in triples)

    def test_out_of_kb_subjects_unannotated(self, world):
        noise = TripleNoiseConfig(n_triples=80, out_of_kb_fraction=0.5, seed=5)
        triples = generate_triples(world, noise)
        missing = [t for t in triples if t.gold.subject_entity is None]
        assert missing  # some subjects are out-of-KB

    def test_invalid_noise_config(self):
        with pytest.raises(ValueError):
            TripleNoiseConfig(typo_probability=2.0)
        with pytest.raises(ValueError):
            TripleNoiseConfig(n_triples=0)

    def test_gold_targets_exist_in_kb(self, world):
        kb = world.curated_kb()
        triples = generate_triples(world, TripleNoiseConfig(n_triples=40, seed=5))
        for triple in triples:
            if triple.gold.subject_entity is not None:
                assert triple.gold.subject_entity in kb.entities
            assert triple.gold.relation in kb.relations
            assert triple.gold.object_entity in kb.entities


class TestSplit:
    def test_split_by_entity_disjoint(self, world):
        triples = generate_triples(world, TripleNoiseConfig(n_triples=60, seed=5))
        validation, test = split_by_entity(triples, 0.3, seed=1)
        assert len(validation) + len(test) == len(triples)
        validation_entities = {t.gold.subject_entity for t in validation}
        test_entities = {t.gold.subject_entity for t in test if t.gold.subject_entity}
        assert not (validation_entities & test_entities)

    def test_zero_fraction(self, world):
        triples = generate_triples(world, TripleNoiseConfig(n_triples=20, seed=5))
        validation, test = split_by_entity(triples, 0.0, seed=1)
        assert validation == []
        assert len(test) == 20


class TestEvaluationGold:
    def test_clusters_group_by_entity(self, small_dataset):
        gold = small_dataset.gold
        for group in gold.np_clusters.groups:
            entities = {gold.entity_links[np] for np in group}
            assert len(entities) == 1

    def test_sampled_protocol(self, small_dataset):
        full = EvaluationGold.from_triples(small_dataset.test_triples)
        sampled = full.sampled(n_np_groups=3, n_link_phrases=5, seed=1)
        assert len(sampled.np_clusters) <= 3
        assert len(sampled.entity_links) <= 5
        assert all(len(g) > 1 for g in sampled.np_clusters.groups)


class TestDatasetProfiles:
    def test_reverb_profile(self, small_dataset):
        assert small_dataset.validation_triples
        assert small_dataset.test_triples
        # All subjects annotated (ReVerb45K property).
        assert all(
            t.gold is not None and t.gold.subject_entity is not None
            for t in small_dataset.triples
        )

    def test_nytimes_profile(self):
        dataset = generate_nytimes2018(
            NYTimes2018Config(n_entities=24, n_facts=50, n_triples=60, seed=5)
        )
        assert not dataset.validation_triples  # test-only corpus
        assert dataset.gold is not None

    def test_okb_views(self, small_dataset):
        assert len(small_dataset.okb("all")) == len(small_dataset.triples)
        with pytest.raises(ValueError):
            small_dataset.okb("bogus")

    def test_side_information_embeddings(self, small_dataset):
        hashed = small_dataset.side_information("test", embedding="hashed")
        assert hashed.embedding.dimension == 64
        with pytest.raises(ValueError):
            small_dataset.side_information("test", embedding="bogus")


class TestIO:
    def test_jsonl_round_trip(self, small_dataset, tmp_path):
        path = tmp_path / "triples.jsonl"
        written = save_triples_jsonl(small_dataset.triples, path)
        assert written == len(small_dataset.triples)
        loaded = load_triples_jsonl(path)
        assert loaded == small_dataset.triples

    def test_round_trip_preserves_gold(self, small_dataset, tmp_path):
        path = tmp_path / "triples.jsonl"
        save_triples_jsonl(small_dataset.triples, path)
        loaded = load_triples_jsonl(path)
        for original, reloaded in zip(small_dataset.triples, loaded, strict=True):
            assert original.gold == reloaded.gold
            assert original.source_sentence == reloaded.source_sentence

    def test_tolerates_blank_and_trailing_lines(self, small_dataset, tmp_path):
        path = tmp_path / "triples.jsonl"
        save_triples_jsonl(small_dataset.triples[:3], path)
        content = path.read_text(encoding="utf-8")
        lines = content.splitlines()
        ragged = "\n".join(
            [lines[0], "", "   ", lines[1], lines[2], "", "\t", ""]
        ) + "\n\n"
        path.write_text(ragged, encoding="utf-8")
        assert load_triples_jsonl(path) == small_dataset.triples[:3]

    def test_malformed_json_reports_file_and_line(self, small_dataset, tmp_path):
        path = tmp_path / "triples.jsonl"
        save_triples_jsonl(small_dataset.triples[:2], path)
        with path.open("a", encoding="utf-8") as handle:
            handle.write("{this is not json\n")
        with pytest.raises(ValueError, match=rf"{path.name}:3: malformed"):
            load_triples_jsonl(path)

    def test_missing_fields_report_file_and_line(self, small_dataset, tmp_path):
        path = tmp_path / "triples.jsonl"
        save_triples_jsonl(small_dataset.triples[:1], path)
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"triple_id": "t-broken", "subject": "x"}\n')
        with pytest.raises(ValueError, match=rf"{path.name}:2:.*predicate"):
            load_triples_jsonl(path)

    def test_non_object_line_reports_file_and_line(self, small_dataset, tmp_path):
        path = tmp_path / "triples.jsonl"
        path.write_text('["not", "an", "object"]\n', encoding="utf-8")
        with pytest.raises(ValueError, match=rf"{path.name}:1:.*JSON object"):
            load_triples_jsonl(path)

    def test_malformed_gold_field_reports_file_and_line(self, tmp_path):
        path = tmp_path / "triples.jsonl"
        path.write_text(
            '{"triple_id": "t1", "subject": "a", "predicate": "b", '
            '"object": "c", "gold": 5}\n',
            encoding="utf-8",
        )
        with pytest.raises(ValueError, match=rf"{path.name}:1: malformed"):
            load_triples_jsonl(path)
