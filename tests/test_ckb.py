"""Tests for the curated KB, anchors, and candidate generation."""

import pytest

from repro.ckb.anchors import AnchorStatistics
from repro.ckb.candidates import CandidateGenerator
from repro.ckb.kb import CuratedKB, Entity, Fact, Relation


class TestCuratedKB:
    def test_alias_lookup(self, tiny_kb):
        assert tiny_kb.entities_with_alias("UMD") == frozenset({"e:umd"})
        assert tiny_kb.entities_with_alias("university of maryland") == frozenset(
            {"e:umd"}
        )
        assert tiny_kb.entities_with_alias("unknown thing") == frozenset()

    def test_relation_lexicalization_lookup(self, tiny_kb):
        assert tiny_kb.relations_with_lexicalization("locate in") == frozenset(
            {"r:contained_by"}
        )

    def test_fact_membership(self, tiny_kb):
        assert tiny_kb.has_fact("e:umd", "r:contained_by", "e:maryland")
        assert not tiny_kb.has_fact("e:maryland", "r:contained_by", "e:umd")

    def test_relations_between(self, tiny_kb):
        assert tiny_kb.relations_between("e:umd", "e:u21") == frozenset({"r:founded"})
        assert tiny_kb.relations_between("e:umd", "e:uva") == frozenset()

    def test_duplicate_entity_rejected(self):
        kb = CuratedKB()
        kb.add_entity(Entity("e:x", "x"))
        with pytest.raises(ValueError):
            kb.add_entity(Entity("e:x", "other"))

    def test_fact_requires_known_endpoints(self):
        kb = CuratedKB()
        kb.add_entity(Entity("e:x", "x"))
        kb.add_relation(Relation("r:r", "r"))
        with pytest.raises(KeyError):
            kb.add_fact(Fact("e:x", "r:r", "e:missing"))

    def test_entity_surface_forms_include_name(self):
        entity = Entity("e:x", "Big Name", aliases=frozenset({"BN"}))
        assert "big name" in entity.all_surface_forms()
        assert "bn" in entity.all_surface_forms()

    def test_relation_surface_forms_space_separators(self):
        relation = Relation("r:x", "location.contained_by")
        assert "location contained by" in relation.all_surface_forms()


class TestAnchorStatistics:
    def test_popularity(self, tiny_anchors):
        # "maryland" points at e:maryland 60 times and e:umd 6 times.
        assert tiny_anchors.popularity("maryland", "e:maryland") == pytest.approx(
            60 / 66
        )
        assert tiny_anchors.popularity("maryland", "e:umd") == pytest.approx(6 / 66)

    def test_unseen_surface_form(self, tiny_anchors):
        assert tiny_anchors.popularity("nonexistent", "e:umd") == 0.0

    def test_entities_for_sorted_by_count(self, tiny_anchors):
        ranked = tiny_anchors.entities_for("maryland")
        assert ranked[0][0] == "e:maryland"

    def test_record_validation(self):
        stats = AnchorStatistics()
        with pytest.raises(ValueError):
            stats.record("x", "e:x", 0)

    def test_merge(self):
        a = AnchorStatistics()
        a.record("x", "e:1", 5)
        b = AnchorStatistics()
        b.record("x", "e:1", 5)
        b.record("x", "e:2", 10)
        a.merge(b)
        assert a.count_pair("x", "e:1") == 10
        assert a.popularity("x", "e:2") == pytest.approx(0.5)

    def test_from_records(self):
        stats = AnchorStatistics.from_records([("x", "e:1", 3)])
        assert stats.count("x") == 3

    def test_normalization_on_read_and_write(self):
        stats = AnchorStatistics()
        stats.record("  Mixed Case  ", "e:1", 2)
        assert stats.count("mixed case") == 2


class TestCandidateGenerator:
    def test_exact_alias_is_top(self, tiny_kb, tiny_anchors):
        generator = CandidateGenerator(tiny_kb, tiny_anchors)
        candidates = generator.entity_candidates("umd")
        assert candidates[0].entity_id == "e:umd"
        assert candidates[0].score == 1.0

    def test_fuzzy_match_included(self, tiny_kb, tiny_anchors):
        generator = CandidateGenerator(tiny_kb, tiny_anchors)
        ids = [c.entity_id for c in generator.entity_candidates("maryland university")]
        assert "e:umd" in ids

    def test_typo_tolerant_fallback(self, tiny_kb, tiny_anchors):
        generator = CandidateGenerator(tiny_kb, tiny_anchors)
        ids = [c.entity_id for c in generator.entity_candidates("marylnad")]
        assert "e:maryland" in ids

    def test_max_candidates_respected(self, tiny_kb, tiny_anchors):
        generator = CandidateGenerator(tiny_kb, tiny_anchors, max_candidates=1)
        assert len(generator.entity_candidates("maryland")) == 1

    def test_relation_exact_lexicalization(self, tiny_kb):
        generator = CandidateGenerator(tiny_kb)
        candidates = generator.relation_candidates("locate in")
        assert candidates[0].relation_id == "r:contained_by"
        assert candidates[0].score == 1.0

    def test_relation_inflected_form_matches(self, tiny_kb):
        generator = CandidateGenerator(tiny_kb)
        candidates = generator.relation_candidates("is located in")
        assert candidates[0].relation_id == "r:contained_by"

    def test_unknown_phrase_returns_list(self, tiny_kb):
        generator = CandidateGenerator(tiny_kb)
        assert isinstance(generator.entity_candidates("zzzz qqqq"), list)

    def test_invalid_max_candidates(self, tiny_kb):
        with pytest.raises(ValueError):
            CandidateGenerator(tiny_kb, max_candidates=0)


class TestRelationCandidateEquivalence:
    """The trigram-index + bounded-Levenshtein retrieval must stay
    rank-identical to the exhaustive relation x form scan it replaced."""

    @staticmethod
    def _reference_relation_candidates(generator, relation_phrase):
        """The pre-index exhaustive algorithm, verbatim."""
        from repro.okb.normalize import morph_normalize
        from repro.strings.similarity import (
            ngram_jaccard,
            normalized_levenshtein_similarity,
        )
        from repro.strings.tokenize import normalize_text

        phrase = normalize_text(relation_phrase)
        normalized = morph_normalize(phrase)
        scores = {}
        for relation_id in generator._kb.relations_with_lexicalization(phrase):
            scores[relation_id] = max(scores.get(relation_id, 0.0), 1.0)
        for relation_id in generator._kb.relations_with_lexicalization(normalized):
            scores[relation_id] = max(scores.get(relation_id, 0.0), 1.0)
        for relation_id, forms in generator._relation_forms.items():
            best = 0.0
            for form in forms:
                best = max(
                    best,
                    ngram_jaccard(normalized, form),
                    normalized_levenshtein_similarity(normalized, form),
                )
                if best == 1.0:
                    break
            if best >= generator._min_fuzzy:
                scores[relation_id] = max(scores.get(relation_id, 0.0), best)
        ranked = sorted(scores.items(), key=lambda pair: (-pair[1], pair[0]))
        return [
            (relation_id, score)
            for relation_id, score in ranked[: generator._max_candidates]
        ]

    def _assert_identical(self, generator, phrases):
        for phrase in phrases:
            produced = [
                (c.relation_id, c.score)
                for c in generator.relation_candidates(phrase)
            ]
            assert produced == self._reference_relation_candidates(
                generator, phrase
            ), f"ranking diverged for {phrase!r}"

    def test_identical_on_generated_world(self):
        from repro.datasets import ReVerb45KConfig, generate_reverb45k

        dataset = generate_reverb45k(
            ReVerb45KConfig(n_entities=40, n_facts=90, n_triples=120, seed=5)
        )
        generator = CandidateGenerator(dataset.kb, dataset.anchors)
        phrases = sorted({t.predicate_norm for t in dataset.triples})
        assert len(phrases) > 10
        self._assert_identical(generator, phrases)

    def test_identical_on_adversarial_phrases(self, tiny_kb, tiny_anchors):
        generator = CandidateGenerator(tiny_kb, tiny_anchors, max_candidates=5)
        self._assert_identical(
            generator,
            [
                "locate in",          # exact lexicalization
                "is located in",      # inflected form of a lexicalization
                "be a member of",     # exact on the other relation
                "member",             # short phrase (sub-trigram behavior)
                "lo",                 # shorter than a trigram
                "",                   # empty after normalization
                "located",            # partial overlap
                "organization founded",  # matches the relation *name* form
                "zzzz qqqq xxxx",     # no overlap at all
            ],
        )

    def test_results_memoized_per_phrase(self, tiny_kb):
        generator = CandidateGenerator(tiny_kb)
        first = generator.relation_candidates("locate in")
        second = generator.relation_candidates("Locate In")  # same normalized
        assert first == second
        entity_first = generator.entity_candidates("umd")
        entity_second = generator.entity_candidates(" UMD ")
        assert entity_first == entity_second

    def test_memo_returns_fresh_lists(self, tiny_kb):
        generator = CandidateGenerator(tiny_kb)
        first = generator.relation_candidates("locate in")
        first.append("sentinel")
        assert "sentinel" not in generator.relation_candidates("locate in")

class TestRelationFormTable:
    """PR 7 rewrote the surface-form table construction (one union
    instead of mutate-while-copying with a second normalization pass);
    the table — and therefore every candidate set — must be unchanged."""

    @staticmethod
    def _legacy_forms(relation):
        from repro.okb.normalize import morph_normalize

        forms = set(relation.all_surface_forms())
        forms.update(morph_normalize(form) for form in set(forms))
        return forms

    def test_form_table_matches_legacy_construction(self, tiny_kb):
        generator = CandidateGenerator(tiny_kb)
        for relation_id, relation in tiny_kb.relations.items():
            assert generator._relation_forms[relation_id] == self._legacy_forms(
                relation
            ), f"form set diverged for {relation_id}"

    def test_candidate_sets_unchanged_on_generated_world(self):
        from repro.datasets import ReVerb45KConfig, generate_reverb45k

        dataset = generate_reverb45k(
            ReVerb45KConfig(n_entities=30, n_facts=60, n_triples=80, seed=11)
        )
        generator = CandidateGenerator(dataset.kb, dataset.anchors)
        for relation_id, relation in dataset.kb.relations.items():
            assert generator._relation_forms[relation_id] == self._legacy_forms(
                relation
            )
        legacy = CandidateGenerator(dataset.kb, dataset.anchors)
        legacy._relation_forms = {
            relation_id: self._legacy_forms(relation)
            for relation_id, relation in dataset.kb.relations.items()
        }
        for phrase in sorted({t.predicate_norm for t in dataset.triples}):
            assert generator.relation_candidates(phrase) == (
                legacy.relation_candidates(phrase)
            ), f"candidate set diverged for {phrase!r}"
