"""Tests for string similarity measures (Sections 3.2.4, baselines)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.strings.similarity import (
    jaccard,
    jaro_similarity,
    jaro_winkler,
    levenshtein_distance,
    ngram_jaccard,
    ngram_set,
    normalized_levenshtein_similarity,
)

short_text = st.text(alphabet="abcdef", max_size=12)


class TestLevenshtein:
    @pytest.mark.parametrize(
        "first, second, expected",
        [
            ("", "", 0),
            ("a", "", 1),
            ("", "abc", 3),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("same", "same", 0),
            ("abc", "acb", 2),
        ],
    )
    def test_known_distances(self, first, second, expected):
        assert levenshtein_distance(first, second) == expected

    @given(short_text, short_text)
    def test_symmetry(self, first, second):
        assert levenshtein_distance(first, second) == levenshtein_distance(
            second, first
        )

    @given(short_text, short_text, short_text)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein_distance(a, c) <= levenshtein_distance(
            a, b
        ) + levenshtein_distance(b, c)

    @given(short_text)
    def test_identity(self, text):
        assert levenshtein_distance(text, text) == 0

    @given(short_text, short_text)
    def test_bounded_by_longer_string(self, first, second):
        assert levenshtein_distance(first, second) <= max(len(first), len(second))


class TestNormalizedLevenshtein:
    def test_empty_strings_identical(self):
        assert normalized_levenshtein_similarity("", "") == 1.0

    def test_disjoint(self):
        assert normalized_levenshtein_similarity("abc", "xyz") == 0.0

    @given(short_text, short_text)
    def test_bounds(self, first, second):
        assert 0.0 <= normalized_levenshtein_similarity(first, second) <= 1.0


class TestNgrams:
    def test_ngram_set_basic(self):
        assert ngram_set("abcd", 3) == frozenset({"abc", "bcd"})

    def test_short_string_falls_back_to_whole(self):
        assert ngram_set("ab", 3) == frozenset({"ab"})

    def test_empty_string(self):
        assert ngram_set("", 3) == frozenset()

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ngram_set("abc", 0)

    def test_ngram_jaccard_identical(self):
        assert ngram_jaccard("capital of", "capital of") == 1.0

    def test_ngram_jaccard_similar_beats_dissimilar(self):
        close = ngram_jaccard("is the capital of", "is the capital city of")
        far = ngram_jaccard("is the capital of", "works for")
        assert close > far

    @given(short_text, short_text)
    def test_bounds(self, first, second):
        assert 0.0 <= ngram_jaccard(first, second) <= 1.0


class TestJaccard:
    def test_basic(self):
        assert jaccard({1, 2}, {2, 3}) == pytest.approx(1 / 3)

    def test_empty_vs_empty(self):
        assert jaccard(set(), set()) == 0.0

    def test_identical(self):
        assert jaccard({1, 2}, {1, 2}) == 1.0


class TestJaro:
    def test_identical(self):
        assert jaro_similarity("maryland", "maryland") == 1.0

    def test_empty(self):
        assert jaro_similarity("", "abc") == 0.0

    def test_known_value(self):
        # Classic example: MARTHA vs MARHTA = 0.944...
        assert jaro_similarity("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_completely_different(self):
        assert jaro_similarity("abc", "xyz") == 0.0

    @given(short_text, short_text)
    def test_symmetry_and_bounds(self, first, second):
        ab = jaro_similarity(first, second)
        ba = jaro_similarity(second, first)
        assert ab == pytest.approx(ba)
        assert 0.0 <= ab <= 1.0


class TestJaroWinkler:
    def test_prefix_boost(self):
        assert jaro_winkler("maryland", "marylande") > jaro_similarity(
            "maryland", "marylande"
        )

    def test_known_value(self):
        assert jaro_winkler("martha", "marhta") == pytest.approx(0.9611, abs=1e-3)

    def test_invalid_prefix_scale(self):
        with pytest.raises(ValueError):
            jaro_winkler("a", "b", prefix_scale=0.5)

    @given(short_text, short_text)
    def test_bounds(self, first, second):
        assert 0.0 <= jaro_winkler(first, second) <= 1.0

    @given(short_text, short_text)
    def test_at_least_jaro(self, first, second):
        assert jaro_winkler(first, second) >= jaro_similarity(first, second) - 1e-12
