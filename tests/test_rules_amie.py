"""Tests for AMIE-style Horn-rule mining (Section 3.1.4)."""

import pytest

from repro.okb.triples import OIETriple
from repro.rules.amie import AmieConfig, AmieMiner


def _triples(rows):
    return [
        OIETriple(f"t{i}", subject, predicate, obj)
        for i, (subject, predicate, obj) in enumerate(rows)
    ]


@pytest.fixture
def capital_triples():
    """Two RPs over the same NP pairs, plus an unrelated RP."""
    rows = []
    for city, country in (("paris", "france"), ("rome", "italy"), ("berlin", "germany")):
        rows.append((city, "is the capital of", country))
        rows.append((city, "is the capital city of", country))
    rows.append(("alice", "works for", "acme"))
    return _triples(rows)


class TestAmieMiner:
    def test_bidirectional_equivalence(self, capital_triples):
        miner = AmieMiner(capital_triples, AmieConfig(min_support=2, min_confidence=0.5))
        assert miner.equivalent("is the capital of", "is the capital city of")
        assert miner.similarity("is the capital of", "is the capital city of") == 1.0

    def test_unrelated_not_equivalent(self, capital_triples):
        miner = AmieMiner(capital_triples)
        assert not miner.equivalent("is the capital of", "works for")

    def test_support_threshold(self, capital_triples):
        miner = AmieMiner(capital_triples, AmieConfig(min_support=5))
        assert not miner.equivalent("is the capital of", "is the capital city of")

    def test_morphological_normalization_applied(self):
        # Inflected variants share evidence after normalization.
        rows = [
            ("paris", "is the capital of", "france"),
            ("paris", "was the capital of", "france"),
            ("rome", "is the capital of", "italy"),
            ("rome", "was the capital of", "italy"),
        ]
        miner = AmieMiner(_triples(rows), AmieConfig(min_support=2))
        assert miner.equivalent("is the capital of", "was the capital of")

    def test_identical_phrases_trivially_equivalent(self, capital_triples):
        miner = AmieMiner(capital_triples)
        assert miner.equivalent("works for", "works for")

    def test_asymmetric_implication(self):
        # body ⊂ head: "capital of" implies "city in", but not conversely.
        rows = [
            ("paris", "is the capital of", "france"),
            ("paris", "is a city in", "france"),
            ("rome", "is the capital of", "italy"),
            ("rome", "is a city in", "italy"),
            ("lyon", "is a city in", "france"),
            ("milan", "is a city in", "italy"),
        ]
        miner = AmieMiner(
            _triples(rows), AmieConfig(min_support=2, min_confidence=0.9, use_pca=False)
        )
        assert miner.implies("is the capital of", "is a city in")
        assert not miner.implies("is a city in", "is the capital of")
        assert not miner.equivalent("is the capital of", "is a city in")

    def test_rules_listing(self, capital_triples):
        miner = AmieMiner(capital_triples, AmieConfig(min_support=2))
        rules = miner.rules
        assert rules
        assert all(rule.support >= 2 for rule in rules)
        assert all(0.0 <= rule.confidence <= 1.0 for rule in rules)

    def test_pca_confidence_at_least_standard(self, capital_triples):
        miner = AmieMiner(capital_triples, AmieConfig(min_support=1))
        for rule in miner.rules:
            assert rule.pca_confidence >= rule.confidence - 1e-12

    def test_covered_phrases(self, capital_triples):
        miner = AmieMiner(capital_triples, AmieConfig(min_support=2))
        covered = miner.covered_phrases()
        assert any("capital" in phrase for phrase in covered)
        assert not any("works" in phrase for phrase in covered)

    def test_empty_input(self):
        miner = AmieMiner([])
        assert miner.rules == []
        assert not miner.equivalent("a", "b")


class TestAmieExtend:
    """`extend` must leave the miner exactly as a rebuild from the union."""

    def _assert_equal_miners(self, extended, fresh):
        assert extended.rules == fresh.rules
        assert extended.covered_phrases() == fresh.covered_phrases()

    @pytest.mark.parametrize(
        "config",
        [
            AmieConfig(),
            AmieConfig(min_support=1, min_confidence=0.2),
            AmieConfig(min_support=3, use_pca=False),
        ],
    )
    def test_extend_equals_union_rebuild(self, capital_triples, config):
        for split in (1, 3, len(capital_triples) - 1):
            miner = AmieMiner(capital_triples[:split], config)
            changed = miner.extend(capital_triples[split:])
            assert isinstance(changed, frozenset)
            self._assert_equal_miners(miner, AmieMiner(capital_triples, config))

    def test_multi_batch_extend(self, capital_triples):
        miner = AmieMiner(capital_triples[:2])
        miner.extend(capital_triples[2:4])
        miner.extend(capital_triples[4:])
        self._assert_equal_miners(miner, AmieMiner(capital_triples))

    def test_extend_reports_changed_keys_only(self, capital_triples):
        miner = AmieMiner(capital_triples)
        # Re-indexing an already-known extraction changes no evidence.
        changed = miner.extend(
            [OIETriple("dup", "paris", "is the capital of", "france")]
        )
        assert changed == frozenset()
        # Genuinely new evidence reports its normalized mining key.
        changed = miner.extend(
            [OIETriple("new", "madrid", "is the capital of", "spain")]
        )
        assert changed  # the touched key, morphologically normalized
        assert all("capital" in key for key in changed)

    def test_extend_from_empty(self, capital_triples):
        miner = AmieMiner([])
        miner.extend(capital_triples)
        self._assert_equal_miners(miner, AmieMiner(capital_triples))

    def test_extend_queries_new_surfaces(self, capital_triples):
        miner = AmieMiner(capital_triples[:-1])
        miner.extend(capital_triples[-1:])
        assert not miner.equivalent("is the capital of", "works for")
        assert miner.equivalent("is the capital of", "is the capital city of")
