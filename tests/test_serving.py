"""Serving-session behaviour: concurrency identity, the engine's
lazy-decoding race fixes, micro-batching, and checkpoint/rollback.

``TestThreadedEquivalence`` is the CI serving-equivalence smoke gate:
threaded ``JOCLService.resolve`` answers must be byte-identical to a
single-threaded ``engine.resolve`` loop.
"""

import threading
import time

import pytest

from repro.api import UnknownMentionError
from repro.api.errors import CheckpointError
from repro.core import JOCLConfig
from repro.datasets import StreamingIngestConfig, generate_streaming_ingest
from repro.persist import FileStateStore
from repro.runtime import IncrementalRuntime, SerialRuntime
from repro.serving import JOCLService, latency_percentile
from test_persist import decisions

FAST = JOCLConfig(lbp_iterations=20)

N_THREADS = 8


@pytest.fixture(scope="module")
def workload():
    return generate_streaming_ingest(
        StreamingIngestConfig(n_shards=4, triples_per_shard=25, seed=11)
    )


@pytest.fixture(scope="module")
def mentions(workload):
    """(mention, kind) queries covering all three slots."""
    queries = []
    for triple in workload.seed_triples[:50]:
        queries.append((triple.subject, "np"))
        queries.append((triple.predicate, "relation"))
        queries.append((triple.object, None))
    return queries


def run_threaded(call, n_items: int, n_threads: int = N_THREADS):
    """Run ``call(i)`` for every i, striped across threads; returns
    per-index results and the list of raised exceptions."""
    results = [None] * n_items
    errors: list[BaseException] = []

    def worker(offset: int) -> None:
        for index in range(offset, n_items, n_threads):
            try:
                results[index] = call(index)
            except BaseException as error:  # noqa: BLE001 - recorded for asserts
                errors.append(error)

    threads = [
        threading.Thread(target=worker, args=(offset,))
        for offset in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return results, errors


class CountingRuntime(SerialRuntime):
    """SerialRuntime that counts how many inference runs it executed."""

    def __init__(self) -> None:
        self.runs = 0
        self._count_lock = threading.Lock()

    def run(self, task):
        with self._count_lock:
            self.runs += 1
        return super().run(task)


# ----------------------------------------------------------------------
# The engine-level race fixes (satellite regression tests)
# ----------------------------------------------------------------------
class TestEngineConcurrency:
    def test_concurrent_resolve_runs_inference_once(self, workload, mentions):
        """The double-run race: N threads hammering a cold engine must
        share one inference run (stateful runtimes corrupt otherwise)."""
        runtime = CountingRuntime()
        engine = workload.engine(FAST, runtime)
        reference_engine = workload.engine(FAST, SerialRuntime())
        reference = [
            reference_engine.resolve(m, k).to_dict() for m, k in mentions
        ]
        answers, errors = run_threaded(
            lambda i: engine.resolve(*mentions[i]).to_dict(), len(mentions)
        )
        assert not errors
        assert runtime.runs == 1
        assert answers == reference

    def test_last_profile_never_tears(self, workload):
        """The torn-read race: last_profile() racing an ingest that
        nulls the decoding cache must return a profile or None, never
        raise."""
        engine = workload.engine(FAST, SerialRuntime())
        engine.run_joint()
        stop = threading.Event()
        errors: list[BaseException] = []

        def reader() -> None:
            while not stop.is_set():
                try:
                    profile = engine.last_profile()
                    assert profile is None or profile.n_components >= 1
                except BaseException as error:  # noqa: BLE001
                    errors.append(error)
                    return

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for thread in readers:
            thread.start()
        try:
            for triple in workload.batches[0]:
                engine.ingest([triple])
                engine.run_joint()
        finally:
            stop.set()
            for thread in readers:
                thread.join()
        assert not errors


# ----------------------------------------------------------------------
# Service equivalence (the CI smoke gate)
# ----------------------------------------------------------------------
class TestThreadedEquivalence:
    def test_threaded_service_matches_serial_loop(self, workload, mentions):
        engine = workload.engine(FAST, IncrementalRuntime())
        service = JOCLService(engine)
        reference_engine = workload.engine(FAST, IncrementalRuntime())
        reference = [
            reference_engine.resolve(m, k).to_dict() for m, k in mentions
        ]
        answers, errors = run_threaded(
            lambda i: service.resolve(*mentions[i]).to_dict(), len(mentions)
        )
        assert not errors
        assert answers == reference
        stats = service.serving_stats()
        assert stats.requests == len(mentions)
        assert stats.batches <= stats.requests

    def test_resolve_many_matches_engine(self, workload, mentions):
        engine = workload.engine(FAST, SerialRuntime())
        service = JOCLService(engine)
        surfaces = [m for m, _ in mentions[:30]]
        direct = workload.engine(FAST, SerialRuntime()).resolve_many(surfaces)
        via_service = service.resolve_many(surfaces)
        assert [r.to_dict() for r in via_service] == [
            r.to_dict() for r in direct
        ]

    def test_unknown_mention_fails_only_its_caller(self, workload, mentions):
        engine = workload.engine(FAST, SerialRuntime())
        service = JOCLService(engine)
        queries = list(mentions[:20]) + [("no such phrase xyz", None)] * 4

        def call(index):
            return service.resolve(*queries[index])

        answers, errors = run_threaded(call, len(queries))
        assert len(errors) == 4
        assert all(isinstance(e, UnknownMentionError) for e in errors)
        assert all(a is not None for a in answers[:20])

    def test_micro_batching_coalesces_under_contention(self, workload):
        """When many resolves arrive while the leader decodes, followers
        get batched: strictly fewer decode batches than requests."""
        engine = workload.engine(FAST, IncrementalRuntime())
        service = JOCLService(engine, max_batch_size=16)
        surfaces = [t.subject for t in workload.seed_triples[:40]]
        # A cold engine: the first leader holds the decode for a while,
        # so the other threads' requests pile up and coalesce.
        answers, errors = run_threaded(
            lambda i: service.resolve(surfaces[i]), len(surfaces)
        )
        assert not errors
        stats = service.serving_stats()
        assert stats.requests == len(surfaces)
        assert stats.batches < stats.requests
        assert stats.coalesced_requests > 0
        assert stats.max_batch > 1


class TestBatchingWindowAndTelemetry:
    def test_window_coalesces_hot_duplicates(self, workload):
        """A few-ms window turns concurrent hot-key traffic into shared
        batches, and in-batch duplicates into one engine resolve."""
        engine = workload.engine(FAST, IncrementalRuntime())
        service = JOCLService(engine, max_batch_size=8, batch_window_ms=5.0)
        service.resolve(workload.seed_triples[0].subject)  # warm decode
        hot = [t.subject for t in workload.seed_triples[:4]]
        answers, errors = run_threaded(
            lambda i: service.resolve(hot[i % len(hot)]).to_dict(), 80
        )
        assert not errors
        reference = {m: engine.resolve(m).to_dict() for m in hot}
        assert answers == [reference[hot[i % len(hot)]] for i in range(80)]
        stats = service.serving_stats()
        assert stats.deduplicated_requests > 0
        assert stats.coalesced_requests > 0
        assert stats.max_batch > 1
        assert stats.max_queue_depth >= stats.max_batch

    def test_latency_percentiles_populated(self, workload):
        service = JOCLService(workload.engine(FAST, IncrementalRuntime()))
        for triple in workload.seed_triples[:10]:
            service.resolve(triple.subject)
        stats = service.serving_stats()
        assert stats.latency_samples == 10
        assert 0 < stats.p50_ms <= stats.p95_ms <= stats.p99_ms
        assert stats.queue_depth == 0

    def test_lone_request_pays_at_most_the_window(self, workload):
        """A lone windowed resolve waits out the window (the documented
        latency cost) but never more; the window=0 default stays eager."""
        engine = workload.engine(FAST, IncrementalRuntime())
        windowed = JOCLService(engine, batch_window_ms=100.0)
        windowed.resolve(workload.seed_triples[0].subject)  # warm decode
        start = time.perf_counter()
        windowed.resolve(workload.seed_triples[1].subject)
        windowed_s = time.perf_counter() - start
        assert 0.09 <= windowed_s < 2.0

        eager = JOCLService(engine)
        start = time.perf_counter()
        eager.resolve(workload.seed_triples[1].subject)
        assert time.perf_counter() - start < 0.09

    def test_rejects_bad_window(self, workload):
        with pytest.raises(ValueError, match="batch_window_ms"):
            JOCLService(
                workload.engine(FAST, SerialRuntime()), batch_window_ms=-1.0
            )

    def test_percentile_helper_contract(self):
        samples = sorted(float(value) for value in range(1, 101))
        assert latency_percentile(samples, 0.50) == 50.0
        assert latency_percentile(samples, 0.95) == 95.0
        assert latency_percentile(samples, 0.99) == 99.0
        assert latency_percentile(samples, 1.0) == 100.0
        assert latency_percentile(samples, 0.0) == 1.0
        assert latency_percentile([], 0.5) == 0.0
        with pytest.raises(ValueError):
            latency_percentile(samples, 1.5)


# ----------------------------------------------------------------------
# Write discipline + durability sessions
# ----------------------------------------------------------------------
class TestWriteDiscipline:
    def test_reads_concurrent_with_ingest_stay_consistent(self, workload):
        engine = workload.engine(FAST, IncrementalRuntime())
        service = JOCLService(engine)
        service.run_joint()
        surfaces = [t.subject for t in workload.seed_triples[:30]]
        stop = threading.Event()
        errors: list[BaseException] = []

        def reader() -> None:
            index = 0
            while not stop.is_set():
                try:
                    service.resolve(surfaces[index % len(surfaces)])
                except BaseException as error:  # noqa: BLE001
                    errors.append(error)
                    return
                index += 1

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for thread in readers:
            thread.start()
        try:
            for batch in workload.batches:
                service.ingest(batch)
        finally:
            stop.set()
            for thread in readers:
                thread.join()
        assert not errors
        assert service.stats().n_triples == len(workload.all_triples)
        # Post-ingest answers reflect the grown OKB.
        grown = workload.batches[-1][-1]
        assert service.resolve(grown.subject) is not None

    def test_checkpoint_rollback_restores_decisions(self, tmp_path, workload):
        store = FileStateStore(tmp_path / "ckpt")
        engine = workload.engine(FAST, IncrementalRuntime())
        service = JOCLService(engine, store=store)
        before = service.run_joint()
        snapshot = service.checkpoint()
        service.ingest(workload.batches[0])
        after = service.run_joint()
        assert decisions(after) != decisions(before) or (
            service.stats().n_triples > len(workload.seed_triples)
        )
        restored_id = service.rollback(snapshot)
        assert restored_id == snapshot
        assert decisions(service.run_joint()) == decisions(before)
        assert service.stats().n_triples == len(workload.seed_triples)
        stats = service.serving_stats()
        assert stats.checkpoints == 1 and stats.rollbacks == 1

    def test_rollback_serves_reads_during_load(self, tmp_path, workload):
        """Zero-downtime: reads issued while rollback loads keep being
        answered (by the old engine until the atomic swap)."""
        store = FileStateStore(tmp_path / "ckpt")
        engine = workload.engine(FAST, IncrementalRuntime())
        service = JOCLService(engine, store=store)
        service.run_joint()
        service.checkpoint()
        surfaces = [t.subject for t in workload.seed_triples[:10]]
        errors: list[BaseException] = []
        stop = threading.Event()

        def reader() -> None:
            index = 0
            while not stop.is_set():
                try:
                    service.resolve(surfaces[index % len(surfaces)])
                except BaseException as error:  # noqa: BLE001
                    errors.append(error)
                    return
                index += 1

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            for _ in range(3):
                service.rollback()
        finally:
            stop.set()
            thread.join()
        assert not errors
        assert service.serving_stats().rollbacks == 3

    def test_checkpoint_without_store_raises(self, workload):
        service = JOCLService(workload.engine(FAST, SerialRuntime()))
        with pytest.raises(CheckpointError, match="no state store"):
            service.checkpoint()
        with pytest.raises(CheckpointError, match="no state store"):
            service.rollback()

    def test_rejects_bad_batch_size(self, workload):
        with pytest.raises(ValueError, match="max_batch_size"):
            JOCLService(workload.engine(FAST, SerialRuntime()), max_batch_size=0)
