"""Tests for the PPDB-style paraphrase database."""

import pytest

from repro.paraphrase.ppdb import ParaphraseDB


class TestParaphraseDB:
    def test_pair_equivalence(self):
        db = ParaphraseDB([("be located in", "be situated in")])
        assert db.equivalent("be located in", "be situated in")
        assert db.similarity("be located in", "be situated in") == 1.0

    def test_transitive_closure(self):
        db = ParaphraseDB([("a b", "c d"), ("c d", "e f")])
        assert db.equivalent("a b", "e f")

    def test_identical_strings_always_equivalent(self):
        db = ParaphraseDB()
        assert db.equivalent("anything", "Anything")

    def test_unknown_phrases_not_equivalent(self):
        db = ParaphraseDB([("x", "y")])
        assert not db.equivalent("p", "q")
        assert db.similarity("p", "q") == 0.0

    def test_representative_stable_within_cluster(self):
        db = ParaphraseDB([("a", "b"), ("b", "c")], seed=5)
        representative = db.representative("a")
        assert db.representative("b") == representative
        assert db.representative("c") == representative

    def test_representative_of_unknown_is_itself(self):
        db = ParaphraseDB()
        assert db.representative("Unknown Phrase") == "unknown phrase"

    def test_seed_reproducible(self):
        pairs = [("a", "b"), ("b", "c"), ("x", "y")]
        assert (
            ParaphraseDB(pairs, seed=9).representative("a")
            == ParaphraseDB(pairs, seed=9).representative("a")
        )

    def test_clusters(self):
        db = ParaphraseDB([("a", "b"), ("x", "y")])
        clusters = {frozenset(c) for c in db.clusters()}
        assert frozenset({"a", "b"}) in clusters
        assert frozenset({"x", "y"}) in clusters

    def test_contains_and_len(self):
        db = ParaphraseDB([("a", "b")])
        assert "a" in db
        assert "zz" not in db
        assert len(db) == 2

    def test_normalization(self):
        db = ParaphraseDB([("Be Located In", "be  situated   in")])
        assert db.equivalent("be located in", "be situated in")

    def test_tsv_round_trip(self, tmp_path):
        db = ParaphraseDB([("a", "b"), ("b", "c"), ("x", "y")], seed=2)
        path = tmp_path / "ppdb.tsv"
        db.save_tsv(path)
        loaded = ParaphraseDB.load_tsv(path)
        assert loaded.equivalent("a", "c")
        assert loaded.equivalent("x", "y")
        assert not loaded.equivalent("a", "x")

    def test_load_malformed_row(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("only-one-column\n")
        with pytest.raises(ValueError):
            ParaphraseDB.load_tsv(path)
