"""Checkpoint/StateStore behaviour: round-trip identity, warm restore,
store layouts, schema evolution and the committed golden fixture.

The golden fixture under ``tests/data/golden_checkpoint`` is a
FileStateStore directory saved from the deterministic Figure-1 micro
world; regenerate it (only after a deliberate schema bump) with::

    PYTHONPATH=src python tests/test_persist.py regenerate-golden
"""

import json
import shutil
import sqlite3
from pathlib import Path

import pytest

from repro.api import (
    CheckpointError,
    JOCLEngine,
    SchemaError,
    SchemaVersionError,
)
from repro.ckb.kb import CuratedKB, Entity, Fact, Relation
from repro.core import JOCLConfig
from repro.datasets import StreamingIngestConfig, generate_streaming_ingest
from repro.embeddings.base import WordEmbedding
from repro.persist import (
    PERSIST_SCHEMA_VERSION,
    FileStateStore,
    SQLiteStateStore,
)
from repro.runtime import (
    IncrementalRuntime,
    ParallelRuntime,
    runtime_from_state,
)

FAST = JOCLConfig(lbp_iterations=20)

DATA_DIR = Path(__file__).parent / "data"
GOLDEN_STORE = DATA_DIR / "golden_checkpoint"
GOLDEN_REPORT = DATA_DIR / "golden_checkpoint_report.json"


def decisions(report) -> str:
    """The runtime-independent decision payload, as a canonical string."""
    return json.dumps(
        {
            "canonicalization": report.canonicalization.to_dict(),
            "linking": report.linking.to_dict(),
        },
        sort_keys=True,
    )


@pytest.fixture(scope="module")
def workload():
    return generate_streaming_ingest(
        StreamingIngestConfig(n_shards=4, triples_per_shard=25, seed=11)
    )


@pytest.fixture()
def warm_engine(workload):
    """An engine in serving steady state (decoded once, runtime warm)."""
    engine = workload.engine(FAST, IncrementalRuntime())
    engine.run_joint()
    return engine


def make_store(backend: str, tmp_path: Path):
    if backend == "file":
        return FileStateStore(tmp_path / "ckpt")
    return SQLiteStateStore(tmp_path / "ckpt.db")


# ----------------------------------------------------------------------
# Round-trip identity (the acceptance gate) — both backends
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["file", "sqlite"])
class TestRoundTrip:
    def test_decisions_byte_identical(self, backend, tmp_path, warm_engine):
        store = make_store(backend, tmp_path)
        original = warm_engine.run_joint()
        warm_engine.save(store)
        restored = JOCLEngine.load(store)
        assert decisions(restored.run_joint()) == decisions(original)

    def test_restore_is_warm_not_cosmetic(self, backend, tmp_path, warm_engine):
        """The restored IncrementalRuntime splices every clean component
        on the very first post-restore inference — zero LBP re-runs."""
        store = make_store(backend, tmp_path)
        warm_engine.save(store)
        restored = JOCLEngine.load(store)
        restored.run_joint()
        profile = restored.last_profile()
        assert profile.reused_components == profile.n_components
        assert profile.recomputed_components == 0

    def test_stats_provenance_restored(self, backend, tmp_path, workload):
        store = make_store(backend, tmp_path)
        engine = workload.engine(FAST, IncrementalRuntime())
        engine.ingest(workload.batches[0][:3])
        engine.run_joint()
        engine.save(store)
        restored = JOCLEngine.load(store)
        assert restored.stats() == engine.stats()

    def test_post_restore_ingest_reuses_components(
        self, backend, tmp_path, warm_engine, workload
    ):
        """The streaming acceptance criterion: restored incremental
        state is live — the first post-restore ingest re-runs LBP only
        on dirty components, decision-identical to a cold union run."""
        store = make_store(backend, tmp_path)
        warm_engine.save(store)
        restored = JOCLEngine.load(store)
        for batch in workload.batches:
            restored.ingest(batch)
        report = restored.run_joint()
        profile = restored.last_profile()
        assert profile.reused_components > 0
        assert profile.recomputed_components > 0
        cold = (
            JOCLEngine.builder()
            .with_side_information(
                workload.side_information(workload.all_triples)
            )
            .with_config(FAST)
            .build()
            .run_joint()
        )
        assert decisions(report) == decisions(cold)

    def test_trained_weights_round_trip(self, backend, tmp_path, small_dataset):
        store = make_store(backend, tmp_path)
        config = JOCLConfig(lbp_iterations=10, learn_iterations=2)
        engine = small_dataset.engine("test", config=config)
        engine.fit(
            small_dataset.validation_triples,
            side=small_dataset.side_information("validation"),
        )
        original = engine.run_joint()
        engine.save(store)
        restored = JOCLEngine.load(store)
        assert restored.trained
        assert restored.export_weights() == engine.export_weights()
        assert decisions(restored.run_joint()) == decisions(original)


# ----------------------------------------------------------------------
# Store mechanics
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["file", "sqlite"])
class TestStores:
    def test_empty_store_raises(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        with pytest.raises(CheckpointError, match="no checkpoint"):
            store.load_state()

    def test_unknown_snapshot_raises(self, backend, tmp_path, warm_engine):
        store = make_store(backend, tmp_path)
        warm_engine.save(store)
        with pytest.raises(CheckpointError, match="no snapshot"):
            store.load_state("snapshot-999999")

    def test_snapshots_accumulate_and_load_by_id(
        self, backend, tmp_path, warm_engine, workload
    ):
        store = make_store(backend, tmp_path)
        first = warm_engine.save(store)
        n_before = len(warm_engine.okb)
        warm_engine.ingest(workload.batches[0][:2])
        warm_engine.run_joint()
        second = warm_engine.save(store)
        assert store.snapshots() == [first, second]
        assert len(JOCLEngine.load(store).okb) == n_before + 2  # current
        assert len(JOCLEngine.load(store, first).okb) == n_before

    def test_history_cap_prunes_oldest(self, backend, tmp_path, warm_engine):
        if backend == "file":
            store = FileStateStore(tmp_path / "ckpt", history=2)
        else:
            store = SQLiteStateStore(tmp_path / "ckpt.db", history=2)
        names = [warm_engine.save(store) for _ in range(3)]
        assert store.snapshots() == names[1:]
        # The newest snapshot is still the default load target.
        assert decisions(JOCLEngine.load(store).run_joint()) == decisions(
            warm_engine.run_joint()
        )

    def test_rejects_bad_history(self, backend, tmp_path):
        with pytest.raises(ValueError, match="history"):
            if backend == "file":
                FileStateStore(tmp_path / "ckpt", history=0)
            else:
                SQLiteStateStore(tmp_path / "ckpt.db", history=0)

    def test_current_tracks_load_default(self, backend, tmp_path, warm_engine):
        store = make_store(backend, tmp_path)
        assert store.current() is None
        first = warm_engine.save(store)
        assert store.current() == first
        second = warm_engine.save(store)
        assert store.current() == second

    @pytest.mark.parametrize(
        "bad",
        [123, ["snapshot-000001"], b"snapshot-000001", object()],
        ids=["int", "list", "bytes", "object"],
    )
    def test_malformed_snapshot_type_raises_schema_error(
        self, backend, tmp_path, bad
    ):
        """Regression: non-string snapshot ids used to leak the raw
        backend exception (``TypeError`` from pathlib,
        ``sqlite3.ProgrammingError`` from parameter binding).  They are
        schema violations and must surface as :class:`SchemaError`
        naming the store."""
        store = make_store(backend, tmp_path)
        with pytest.raises(SchemaError, match="malformed snapshot id"):
            store.load_state(bad)

    @pytest.mark.parametrize(
        "bad",
        ["snap\x00shot", "../escape", "a/b", "a\\b", "..", "."],
        ids=["nul", "dotdot-slash", "slash", "backslash", "dotdot", "dot"],
    )
    def test_malformed_snapshot_string_raises_schema_error(
        self, backend, tmp_path, bad
    ):
        """NUL bytes and path separators are never part of a snapshot id
        — and on the file backend a separator would escape the store
        directory entirely."""
        store = make_store(backend, tmp_path)
        with pytest.raises(SchemaError) as excinfo:
            store.load_state(bad)
        # The message names the store so operators can find the culprit.
        assert "ckpt" in str(excinfo.value)

    def test_unknown_but_well_formed_id_still_not_found(
        self, backend, tmp_path, warm_engine
    ):
        """The bugfix must not reclassify ordinary not-found lookups."""
        store = make_store(backend, tmp_path)
        warm_engine.save(store)
        with pytest.raises(CheckpointError, match="no snapshot"):
            store.load_state("snapshot-424242")


@pytest.mark.parametrize("backend", ["file", "sqlite"])
class TestNamespacesAndDocuments:
    def test_namespaces_isolate_snapshot_sequences(
        self, backend, tmp_path, warm_engine
    ):
        store = make_store(backend, tmp_path)
        shard_a = store.namespace("shard-00")
        shard_b = store.namespace("shard-01")
        name_a = warm_engine.save(shard_a)
        assert name_a == "snapshot-000001"
        assert warm_engine.save(shard_a) == "snapshot-000002"
        # An independent sequence, not a continuation of shard-00's.
        assert warm_engine.save(shard_b) == "snapshot-000001"
        assert store.snapshots() == []          # the root is untouched
        assert shard_a.snapshots() == ["snapshot-000001", "snapshot-000002"]
        assert shard_b.snapshots() == ["snapshot-000001"]
        restored = JOCLEngine.load(shard_b)
        assert decisions(restored.run_joint()) == decisions(
            warm_engine.run_joint()
        )

    def test_nested_namespaces(self, backend, tmp_path, warm_engine):
        store = make_store(backend, tmp_path)
        nested = store.namespace("cluster-a").namespace("shard-00")
        warm_engine.save(nested)
        assert nested.snapshots() == ["snapshot-000001"]
        assert store.namespace("cluster-a").snapshots() == []

    def test_invalid_namespace_name_rejected(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        for bad in ("", "snapshot-000001", "CURRENT", "../up", "a/b", ".x"):
            with pytest.raises(CheckpointError, match="invalid namespace"):
                store.namespace(bad)

    def test_documents_round_trip_and_overwrite(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        store.save_document("cluster", {"n_shards": 2})
        assert store.load_document("cluster") == {"n_shards": 2}
        store.save_document("cluster", {"n_shards": 4})
        assert store.load_document("cluster") == {"n_shards": 4}

    def test_documents_scoped_per_namespace(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        store.save_document("cluster", {"scope": "root"})
        sub = store.namespace("shard-00")
        sub.save_document("cluster", {"scope": "shard"})
        assert store.load_document("cluster") == {"scope": "root"}
        assert sub.load_document("cluster") == {"scope": "shard"}

    def test_missing_document_raises(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        with pytest.raises(CheckpointError, match="no document"):
            store.load_document("cluster")

    def test_invalid_document_name_rejected(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        with pytest.raises(CheckpointError, match="invalid document"):
            store.save_document("../evil", {})

    def test_namespace_cannot_collide_with_document_files(
        self, backend, tmp_path
    ):
        """Regression: a namespace named ``x.doc.json`` used to collide
        on disk with document ``x`` (FileStateStore), leaking raw
        IsADirectoryError/FileExistsError from the OS."""
        store = make_store(backend, tmp_path)
        with pytest.raises(CheckpointError, match="invalid namespace"):
            store.namespace("x.doc.json")
        store.save_document("x", {"fine": True})
        assert store.load_document("x") == {"fine": True}


class TestFileStoreLayout:
    def test_atomic_layout_and_current_pointer(self, tmp_path, warm_engine):
        store = FileStateStore(tmp_path / "ckpt")
        name = warm_engine.save(store)
        root = tmp_path / "ckpt"
        assert (root / "CURRENT").read_text().strip() == name
        assert (root / name / "manifest.json").exists()
        manifest = json.loads((root / name / "manifest.json").read_text())
        assert manifest["schema_version"] == PERSIST_SCHEMA_VERSION
        for section in manifest["sections"]:
            assert (root / name / f"{section}.json").exists()
        # No staging debris left behind.
        assert not [p for p in root.iterdir() if p.name.startswith(".tmp-")]

    def test_current_ignores_orphan_snapshot_dirs(self, tmp_path, warm_engine):
        """A snapshot directory whose save never committed CURRENT (a
        crash between the rename and the pointer swap) must not become
        the default load target."""
        store = FileStateStore(tmp_path / "ckpt")
        name = warm_engine.save(store)
        orphan = tmp_path / "ckpt" / "snapshot-000099"
        shutil.copytree(tmp_path / "ckpt" / name, orphan)
        assert store.current() == name
        assert store.snapshots()[-1] == "snapshot-000099"
        restored = JOCLEngine.load(store)  # reads CURRENT, not newest dir
        assert decisions(restored.run_joint()) == decisions(
            warm_engine.run_joint()
        )

    def test_sqlite_save_is_transactional(self, tmp_path, warm_engine):
        """A save that fails mid-write leaves no partial snapshot."""
        store = SQLiteStateStore(tmp_path / "ckpt.db")
        warm_engine.save(store)

        class ExplodingState:
            def to_sections(self):
                raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            store.save_state(ExplodingState())
        assert store.snapshots() == ["snapshot-000001"]
        with sqlite3.connect(tmp_path / "ckpt.db") as connection:
            rows = connection.execute("SELECT COUNT(*) FROM snapshots").fetchone()
        assert rows[0] == 1


# ----------------------------------------------------------------------
# Schema evolution
# ----------------------------------------------------------------------
class TestSchemaEvolution:
    @pytest.fixture()
    def saved_dir(self, tmp_path, warm_engine):
        store = FileStateStore(tmp_path / "ckpt")
        name = warm_engine.save(store)
        return store, tmp_path / "ckpt" / name

    def _edit_manifest(self, snapshot_dir: Path, mutate) -> None:
        path = snapshot_dir / "manifest.json"
        manifest = json.loads(path.read_text())
        mutate(manifest)
        path.write_text(json.dumps(manifest))

    def test_unknown_schema_version_rejected(self, saved_dir):
        store, snapshot_dir = saved_dir
        self._edit_manifest(
            snapshot_dir, lambda m: m.update(schema_version=99)
        )
        with pytest.raises(SchemaVersionError):
            store.load_state()

    def test_missing_schema_version_rejected(self, saved_dir):
        store, snapshot_dir = saved_dir
        self._edit_manifest(snapshot_dir, lambda m: m.pop("schema_version"))
        with pytest.raises(SchemaVersionError):
            store.load_state()

    def test_wrong_type_discriminator_rejected(self, saved_dir):
        store, snapshot_dir = saved_dir
        self._edit_manifest(
            snapshot_dir, lambda m: m.update(type="engine_report")
        )
        with pytest.raises(SchemaError, match="type"):
            store.load_state()

    def test_missing_required_section_rejected(self, saved_dir):
        store, snapshot_dir = saved_dir
        self._edit_manifest(
            snapshot_dir,
            lambda m: m.update(
                sections=[s for s in m["sections"] if s != "okb"]
            ),
        )
        with pytest.raises(SchemaError, match="okb"):
            store.load_state()

    def test_listed_but_missing_section_file(self, saved_dir):
        store, snapshot_dir = saved_dir
        (snapshot_dir / "side.json").unlink()
        with pytest.raises(CheckpointError, match="missing"):
            store.load_state()

    def test_corrupt_section_json_rejected(self, saved_dir):
        store, snapshot_dir = saved_dir
        (snapshot_dir / "config.json").write_text("{not json")
        with pytest.raises(SchemaError, match="not valid JSON"):
            store.load_state()

    def test_optional_sections_forward_filled(self, saved_dir):
        """A version-1 payload written without the optional sections
        (older/leaner writers) loads with their defaults."""
        store, snapshot_dir = saved_dir

        def strip(manifest):
            manifest["sections"] = [
                s
                for s in manifest["sections"]
                if s not in ("weights", "build_cache")
            ]
            manifest.pop("n_ingests", None)

        self._edit_manifest(snapshot_dir, strip)
        engine = JOCLEngine.load(store)
        assert not engine.trained
        assert engine.stats().n_ingests == 0
        engine.run_joint()  # still a working engine

    def test_untrained_engine_has_no_weights_section(self, saved_dir):
        _store, snapshot_dir = saved_dir
        manifest = json.loads((snapshot_dir / "manifest.json").read_text())
        assert "weights" not in manifest["sections"]


# ----------------------------------------------------------------------
# Save-time refusals and runtime payloads
# ----------------------------------------------------------------------
class TestSaveRefusals:
    def test_custom_signal_registry_refused(self, tmp_path, small_dataset):
        from repro.core.signals.registry import default_registry

        engine = (
            JOCLEngine.builder()
            .with_ckb(small_dataset.kb)
            .with_triples(small_dataset.test_triples)
            .with_signals(lambda side, variant: default_registry(side, variant))
            .build()
        )
        with pytest.raises(CheckpointError, match="custom signal registry"):
            engine.save(FileStateStore(tmp_path / "ckpt"))

    def test_unserializable_embedding_refused(self, tmp_path, small_dataset):
        class OpaqueEmbedding(WordEmbedding):
            @property
            def dimension(self):
                return 4

            def vector(self, word):
                import numpy as np

                return np.zeros(4)

        engine = (
            JOCLEngine.builder()
            .with_ckb(small_dataset.kb)
            .with_embedding(OpaqueEmbedding())
            .with_triples(small_dataset.test_triples)
            .build()
        )
        with pytest.raises(CheckpointError, match="to_state"):
            engine.save(FileStateStore(tmp_path / "ckpt"))


class TestRuntimePayloads:
    def test_parallel_runtime_knobs_round_trip(self, tmp_path, workload):
        store = FileStateStore(tmp_path / "ckpt")
        engine = workload.engine(FAST, ParallelRuntime(max_workers=2))
        engine.run_joint()
        engine.save(store)
        restored = JOCLEngine.load(store)
        assert isinstance(restored.runtime, ParallelRuntime)
        assert restored.runtime.max_workers == 2
        assert restored.runtime.backend == "thread"

    def test_unknown_runtime_type_needs_override(self, tmp_path, warm_engine):
        store = FileStateStore(tmp_path / "ckpt")
        name = warm_engine.save(store)
        runtime_path = tmp_path / "ckpt" / name / "runtime.json"
        payload = json.loads(runtime_path.read_text())
        payload["type"] = "quantum"
        runtime_path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="unknown runtime"):
            JOCLEngine.load(store)
        # ... but an explicit runtime override restores fine.
        restored = JOCLEngine.load(store, runtime=IncrementalRuntime())
        restored.run_joint()

    def test_runtime_from_state_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown runtime"):
            runtime_from_state({"type": "quantum"})


# ----------------------------------------------------------------------
# Golden fixture
# ----------------------------------------------------------------------
def _golden_engine() -> JOCLEngine:
    """The Figure-1 micro world, built hand-deterministically (no RNG)."""
    from repro.ckb.anchors import AnchorStatistics
    from repro.okb.triples import OIETriple
    from repro.paraphrase.ppdb import ParaphraseDB

    kb = CuratedKB()
    kb.add_entity(
        Entity(
            "e:umd",
            "university of maryland",
            aliases=frozenset({"umd", "maryland university"}),
            types=frozenset({"organization"}),
        )
    )
    kb.add_entity(Entity("e:maryland", "maryland", aliases=frozenset({"md"})))
    kb.add_entity(Entity("e:u21", "universitas 21", aliases=frozenset({"u21"})))
    kb.add_relation(
        Relation(
            "r:contained_by",
            "location.contained_by",
            lexicalizations=frozenset({"locate in", "be located in"}),
            category="location",
        )
    )
    kb.add_relation(
        Relation(
            "r:founded",
            "organizations_founded",
            lexicalizations=frozenset({"be a member of"}),
            category="founding",
        )
    )
    kb.add_fact(Fact("e:umd", "r:contained_by", "e:maryland"))
    kb.add_fact(Fact("e:umd", "r:founded", "e:u21"))
    anchors = AnchorStatistics()
    anchors.record("university of maryland", "e:umd", 50)
    anchors.record("umd", "e:umd", 20)
    anchors.record("maryland", "e:maryland", 60)
    ppdb = ParaphraseDB(seed=0)
    ppdb.add_pair("be a member of", "be an early member of")
    triples = [
        OIETriple("t1", "University of Maryland", "locate in", "Maryland"),
        OIETriple("t2", "UMD", "be a member of", "Universitas 21"),
        OIETriple("t3", "UMD", "be an early member of", "U21"),
    ]
    engine = (
        JOCLEngine.builder()
        .with_ckb(kb)
        .with_anchors(anchors)
        .with_ppdb(ppdb)
        .with_config(JOCLConfig(lbp_iterations=15))
        .with_triples(triples)
        .with_runtime(IncrementalRuntime())
        .build()
    )
    engine.run_joint()
    return engine


def regenerate_golden() -> None:
    """Rebuild the committed fixture (schema bumps only; see module doc)."""
    if GOLDEN_STORE.exists():
        shutil.rmtree(GOLDEN_STORE)
    engine = _golden_engine()
    engine.save(FileStateStore(GOLDEN_STORE))
    GOLDEN_REPORT.write_text(
        decisions(engine.run_joint()) + "\n", encoding="utf-8"
    )


class TestGoldenFixture:
    def test_golden_checkpoint_loads_and_reproduces(self):
        """The committed version-1 checkpoint stays readable by every
        future build, and reproduces its committed decisions."""
        engine = JOCLEngine.load(FileStateStore(GOLDEN_STORE))
        report = engine.run_joint()
        assert decisions(report) == GOLDEN_REPORT.read_text().strip()
        profile = engine.last_profile()
        assert profile.reused_components == profile.n_components

    def test_golden_checkpoint_matches_fresh_build(self):
        """Guards the fixture against drift: a from-source build of the
        same micro world makes the same decisions."""
        fresh = _golden_engine()
        assert decisions(fresh.run_joint()) == GOLDEN_REPORT.read_text().strip()


if __name__ == "__main__":
    import sys

    if sys.argv[1:] == ["regenerate-golden"]:
        regenerate_golden()
        print(f"regenerated {GOLDEN_STORE}")
    else:
        raise SystemExit(__doc__)
