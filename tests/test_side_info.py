"""Tests for the SideInformation bundle and its defaults."""

from repro.ckb.anchors import AnchorStatistics
from repro.core.side_info import SideInformation
from repro.embeddings.hashed import HashedCharNgramEmbedding


class TestBuildDefaults:
    def test_minimal_build(self, tiny_okb, tiny_kb):
        side = SideInformation.build(okb=tiny_okb, kb=tiny_kb)
        assert side.anchors is not None
        assert side.candidates is not None
        assert isinstance(side.embedding, HashedCharNgramEmbedding)
        # AMIE mined from the OKB itself.
        assert side.amie is not None
        # KBP distantly supervised by the CKB.
        assert side.kbp.relation_of("locate in") == "r:contained_by"

    def test_explicit_resources_kept(self, tiny_okb, tiny_kb, tiny_anchors, tiny_ppdb):
        side = SideInformation.build(
            okb=tiny_okb, kb=tiny_kb, anchors=tiny_anchors, ppdb=tiny_ppdb
        )
        assert side.anchors is tiny_anchors
        assert side.ppdb is tiny_ppdb

    def test_max_candidates_forwarded(self, tiny_okb, tiny_kb):
        side = SideInformation.build(okb=tiny_okb, kb=tiny_kb, max_candidates=2)
        assert side.candidates.max_candidates == 2

    def test_default_anchor_table_empty(self, tiny_okb, tiny_kb):
        side = SideInformation.build(okb=tiny_okb, kb=tiny_kb)
        assert isinstance(side.anchors, AnchorStatistics)
        assert side.anchors.popularity("umd", "e:umd") == 0.0


class TestCachedSurfaceForms:
    def test_entity_surface_forms(self, tiny_side):
        forms = tiny_side.entity_surface_forms
        assert "umd" in forms["e:umd"]
        assert "university of maryland" in forms["e:umd"]
        # Cached property: same object on second access.
        assert tiny_side.entity_surface_forms is forms

    def test_relation_surface_forms(self, tiny_side):
        forms = tiny_side.relation_surface_forms
        assert "locate in" in forms["r:contained_by"]
        assert "location contained by" in forms["r:contained_by"]
