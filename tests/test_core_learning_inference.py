"""Tests for evidence construction, decoding and conflict resolution."""

import pytest

from repro.core.builder import GraphBuilder, canon_var, link_var
from repro.core.config import JOCLConfig
from repro.core.inference import decode
from repro.core.learning import GoldAnnotations, build_evidence
from repro.factorgraph.lbp import LoopyBP


@pytest.fixture(scope="module")
def built(tiny_side):
    builder = GraphBuilder(tiny_side, JOCLConfig())
    graph, index = builder.build()
    return builder, graph, index


class TestGoldAnnotations:
    def test_from_triples(self, tiny_triples):
        gold = GoldAnnotations.from_triples(tiny_triples)
        assert gold.subject_entity["umd"] == "e:umd"
        assert gold.subject_entity["university of maryland"] == "e:umd"
        assert gold.relation["locate in"] == "r:contained_by"
        assert gold.object_entity["u21"] == "e:u21"

    def test_unannotated_skipped(self):
        from repro.okb.triples import OIETriple

        gold = GoldAnnotations.from_triples([OIETriple("t1", "a", "b", "c")])
        assert not gold.subject_entity

    def test_of_kind(self, tiny_triples):
        gold = GoldAnnotations.from_triples(tiny_triples)
        assert gold.of_kind("S") is gold.subject_entity
        assert gold.of_kind("P") is gold.relation
        assert gold.of_kind("O") is gold.object_entity
        with pytest.raises(ValueError):
            gold.of_kind("X")


class TestBuildEvidence:
    def test_linking_evidence(self, built, tiny_triples):
        _builder, _graph, index = built
        gold = GoldAnnotations.from_triples(tiny_triples)
        evidence = build_evidence(index, gold)
        assert evidence[link_var("S", "umd")] == "e:umd"
        assert evidence[link_var("P", "locate in")] == "r:contained_by"

    def test_canonicalization_evidence(self, built, tiny_triples):
        _builder, _graph, index = built
        gold = GoldAnnotations.from_triples(tiny_triples)
        evidence = build_evidence(index, gold)
        for kind in ("S", "P", "O"):
            for first, second in index.pairs.get(kind, []):
                name = canon_var(kind, first, second)
                if name in evidence:
                    kind_gold = gold.of_kind(kind)
                    expected = int(kind_gold[first] == kind_gold[second])
                    assert evidence[name] == expected

    def test_out_of_domain_gold_skipped(self, built):
        _builder, _graph, index = built
        gold = GoldAnnotations(subject_entity={"umd": "e:not_a_candidate"})
        evidence = build_evidence(index, gold)
        assert link_var("S", "umd") not in evidence


class TestDecode:
    @pytest.fixture(scope="class")
    def output(self, built):
        builder, graph, index = built
        result = LoopyBP(graph, schedule=builder.schedule(), max_iterations=25).run()
        return decode(result, index, JOCLConfig())

    def test_running_example_links(self, output):
        # The paper's Figure 1(a) expectations.
        assert output.entity_links["university of maryland"] == "e:umd"
        assert output.entity_links["umd"] == "e:umd"
        assert output.entity_links["university of virginia"] == "e:uva"
        assert output.object_links["maryland"] == "e:maryland"

    def test_running_example_clusters(self, output):
        # UMD and University of Maryland end up in one group.
        assert output.np_clusters.same_cluster("umd", "university of maryland")
        assert not output.np_clusters.same_cluster(
            "umd", "university of virginia"
        )

    def test_relation_links(self, output):
        assert output.relation_links["locate in"] == "r:contained_by"
        assert output.relation_links["be a member of"] == "r:founded"

    def test_rp_clusters(self, output):
        assert output.rp_clusters.same_cluster(
            "be a member of", "be an early member of"
        )

    def test_all_kinds_covered(self, output, tiny_okb):
        assert set(output.entity_links) == set(
            t.subject_norm for t in tiny_okb.triples
        )
        assert set(output.relation_links) == set(
            t.predicate_norm for t in tiny_okb.triples
        )


class TestConflictResolution:
    def test_conflicting_pair_adopts_larger_group_label(self):
        """Hand-built scenario: canonicalization says merge, linking
        disagrees; the larger linked group must win (Section 3.5)."""
        from repro.core.builder import GraphIndex
        from repro.core.inference import _decode_kind

        class FakeResult:
            def __init__(self):
                self.iterations = 1
                self.converged = True

            def map_state(self, name):
                states = {
                    link_var("S", "a1"): "e:big",
                    link_var("S", "a2"): "e:big",
                    link_var("S", "b"): "e:small",
                    canon_var("S", "a2", "b"): 1,
                }
                return states[name]

            def map_probability(self, name):
                return 0.95

        index = GraphIndex(
            nodes={"S": ["a1", "a2", "b"]},
            candidates={
                ("S", "a1"): ("e:big",),
                ("S", "a2"): ("e:big",),
                ("S", "b"): ("e:small",),
            },
            pairs={"S": [("a2", "b")]},
        )
        clusters, links = _decode_kind(FakeResult(), index, JOCLConfig(), "S")
        # b joins the larger e:big group and its link is reassigned.
        assert clusters.same_cluster("a2", "b")
        assert links["b"] == "e:big"

    def test_confidence_gate_blocks_weak_pairs(self):
        from repro.core.builder import GraphIndex
        from repro.core.inference import _decode_kind

        class WeakResult:
            iterations = 1
            converged = True

            def map_state(self, name):
                states = {
                    link_var("S", "a"): "e:one",
                    link_var("S", "b"): "e:two",
                    canon_var("S", "a", "b"): 1,
                }
                return states[name]

            def map_probability(self, name):
                return 0.55  # below the 0.7 gate

        index = GraphIndex(
            nodes={"S": ["a", "b"]},
            candidates={("S", "a"): ("e:one",), ("S", "b"): ("e:two",)},
            pairs={"S": [("a", "b")]},
        )
        clusters, links = _decode_kind(WeakResult(), index, JOCLConfig(), "S")
        assert not clusters.same_cluster("a", "b")
        assert links["a"] == "e:one"
        assert links["b"] == "e:two"
