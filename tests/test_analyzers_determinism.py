"""DETERMINISM checker fixtures: true positives and true negatives."""

from __future__ import annotations

import textwrap

from tools.analyzers.core import Suppressions, parse_module
from tools.analyzers.determinism import DeterminismCheck

CHECK = DeterminismCheck()


def findings_of(source: str, path: str = "src/repro/clustering/fixture.py"):
    source = textwrap.dedent(source)
    module = parse_module(path, source)
    return Suppressions(source).apply(list(CHECK.run(module)))


def codes_of(source: str, path: str = "src/repro/clustering/fixture.py"):
    return [finding.code for finding in findings_of(source, path)]


def test_scope_is_the_repro_package():
    assert CHECK.interested("src/repro/clustering/hac.py")
    assert not CHECK.interested("tools/check_links.py")
    assert not CHECK.interested("tests/test_okb.py")


# ----------------------------------------------------------------------
# DET01 — set order leaking into outputs (true positives)
# ----------------------------------------------------------------------
def test_tp_list_over_set_call():
    assert codes_of("order = list(set(items))\n") == ["DET01"]


def test_tp_join_over_set_literal():
    assert codes_of("label = '-'.join({'b', 'a'})\n") == ["DET01"]


def test_tp_list_comprehension_over_set_typed_local():
    source = """
        def render(forms):
            vocab = set(forms)
            return [form.upper() for form in vocab]
    """
    assert codes_of(source) == ["DET01"]


def test_tp_loop_over_set_appending_to_list():
    source = """
        def collect(phrases):
            out = []
            for phrase in set(phrases):
                out.append(phrase)
            return out
    """
    assert codes_of(source) == ["DET01"]


def test_tp_enumerate_over_frozenset():
    source = """
        def index(items):
            return {item: i for i, item in enumerate(frozenset(items))}
    """
    assert codes_of(source) == ["DET01"]


def test_tp_set_union_feeding_tuple():
    source = """
        def merged(a, b):
            return tuple(a.union(b))
    """
    assert codes_of(source) == ["DET01"]


# ----------------------------------------------------------------------
# DET01 — true negatives
# ----------------------------------------------------------------------
def test_tn_sorted_over_set_is_the_fix():
    assert codes_of("order = sorted(set(items))\n") == []


def test_tn_order_free_consumers_pass():
    source = """
        def stats(items):
            vocab = set(items)
            return len(vocab), sum(vocab), max(vocab), min(vocab)
    """
    assert codes_of(source) == []


def test_tn_set_algebra_and_membership_pass():
    source = """
        def keep(candidates, allowed):
            chosen = set(candidates) & set(allowed)
            return {item for item in chosen}
    """
    assert codes_of(source) == []


def test_tn_rebinding_to_sorted_clears_the_taint():
    source = """
        def ordered(items):
            vocab = set(items)
            vocab = sorted(vocab)
            return [item.upper() for item in vocab]
    """
    assert codes_of(source) == []


def test_tn_dict_iteration_is_not_flagged():
    source = """
        def render(mapping):
            out = []
            for key, value in mapping.items():
                out.append((key, value))
            return out
    """
    assert codes_of(source) == []


def test_tn_loop_accumulating_into_set_passes():
    source = """
        def vocabulary(phrases):
            vocab = set()
            for phrase in set(phrases):
                vocab.add(phrase.lower())
            return vocab
    """
    assert codes_of(source) == []


# ----------------------------------------------------------------------
# DET02 / DET03 — id()- and hash()-derived decisions
# ----------------------------------------------------------------------
def test_tp_id_key():
    source = """
        def group(clusters, items):
            overlap = {}
            for item in items:
                overlap[id(clusters[item])] = item
            return overlap
    """
    assert codes_of(source) == ["DET02"]


def test_tp_hash_in_sort_key():
    assert codes_of("order = sorted(items, key=hash)\n") == []  # bare name, no call
    assert codes_of("order = sorted(items, key=lambda x: hash(x))\n") == ["DET03"]


def test_tp_hash_bucketing_outside_dunder_hash():
    source = """
        def bucket(phrase, n):
            return hash(phrase) % n
    """
    assert codes_of(source) == ["DET03"]


def test_tn_hash_inside_dunder_hash():
    source = """
        class Clustering:
            def __hash__(self):
                return hash(frozenset(self._groups))
    """
    assert codes_of(source) == []


def test_tn_stable_hash_helpers_pass():
    source = """
        import hashlib

        def stable(phrase):
            return int(hashlib.blake2s(phrase.encode()).hexdigest(), 16)
    """
    assert codes_of(source) == []


# ----------------------------------------------------------------------
# DET04 — unseeded randomness
# ----------------------------------------------------------------------
def test_tp_global_random_draw():
    source = """
        import random

        def jitter():
            return random.random()
    """
    assert codes_of(source) == ["DET04"]


def test_tp_global_shuffle():
    source = """
        import random

        def mix(items):
            random.shuffle(items)
            return items
    """
    assert codes_of(source) == ["DET04"]


def test_tp_unseeded_default_rng():
    source = """
        from numpy.random import default_rng

        def draw():
            return default_rng().random()
    """
    assert codes_of(source) == ["DET04"]


def test_tn_seeded_instance_rng():
    source = """
        import random

        def draw(seed):
            rng = random.Random(seed)
            return rng.random()
    """
    assert codes_of(source) == []


def test_tn_seeded_default_rng():
    source = """
        from numpy.random import default_rng

        def draw(seed):
            return default_rng(seed).random()
    """
    assert codes_of(source) == []


def test_tn_rng_parameter_draws_pass():
    source = """
        def sample(rng, items):
            ordered = sorted(items)
            return ordered[rng.randrange(len(ordered))]
    """
    assert codes_of(source) == []


# ----------------------------------------------------------------------
# The shipped decision-making modules stay clean
# ----------------------------------------------------------------------
def test_repo_src_is_clean_of_determinism_findings():
    from tools.analyzers.core import REPO_ROOT

    for path in sorted((REPO_ROOT / "src" / "repro").rglob("*.py")):
        relative = str(path.relative_to(REPO_ROOT))
        source = path.read_text(encoding="utf-8")
        module = parse_module(relative, source)
        findings = Suppressions(source).apply(list(CHECK.run(module)))
        assert findings == [], f"unexpected DET findings in {relative}: {findings}"
