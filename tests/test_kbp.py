"""Tests for the KBP-style relation categorizer."""

from repro.kbp.categorizer import RelationCategorizer
from repro.okb.triples import OIETriple


class TestRelationCategorizer:
    def test_lexicalization_mapping(self, tiny_kb, tiny_triples):
        categorizer = RelationCategorizer(tiny_kb, tiny_triples)
        assert categorizer.relation_of("locate in") == "r:contained_by"

    def test_distant_supervision_mapping(self, tiny_kb):
        # "be an early member of" is not a lexicalization, but the NP pair
        # (university of virginia, u21) resolves to a founded fact.
        triples = [
            OIETriple("t1", "university of virginia", "be an early member of", "u21"),
        ]
        categorizer = RelationCategorizer(tiny_kb, triples)
        assert categorizer.relation_of("be an early member of") == "r:founded"

    def test_same_category(self, tiny_kb, tiny_triples):
        categorizer = RelationCategorizer(tiny_kb, tiny_triples)
        # Both map to r:founded (category "founding").
        assert categorizer.same_category("be a member of", "be an early member of")
        assert categorizer.similarity("be a member of", "be an early member of") == 1.0

    def test_different_categories(self, tiny_kb, tiny_triples):
        categorizer = RelationCategorizer(tiny_kb, tiny_triples)
        assert not categorizer.same_category("locate in", "be a member of")

    def test_unmapped_phrase(self, tiny_kb, tiny_triples):
        categorizer = RelationCategorizer(tiny_kb, tiny_triples)
        assert categorizer.relation_of("completely unknown phrase") is None
        assert not categorizer.same_category("completely unknown phrase", "locate in")

    def test_category_falls_back_to_relation_id(self, tiny_kb, tiny_triples):
        categorizer = RelationCategorizer(tiny_kb, tiny_triples)
        category = categorizer.category_of("locate in")
        assert category == "location"

    def test_min_votes(self, tiny_kb):
        triples = [
            OIETriple("t1", "university of virginia", "be an early member of", "u21"),
        ]
        strict = RelationCategorizer(tiny_kb, triples, min_votes=5)
        assert strict.relation_of("be an early member of") is None

    def test_mapped_phrases(self, tiny_kb, tiny_triples):
        categorizer = RelationCategorizer(tiny_kb, tiny_triples)
        assert "locate in" in categorizer.mapped_phrases
