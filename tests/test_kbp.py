"""Tests for the KBP-style relation categorizer."""

from repro.kbp.categorizer import RelationCategorizer
from repro.okb.triples import OIETriple


class TestRelationCategorizer:
    def test_lexicalization_mapping(self, tiny_kb, tiny_triples):
        categorizer = RelationCategorizer(tiny_kb, tiny_triples)
        assert categorizer.relation_of("locate in") == "r:contained_by"

    def test_distant_supervision_mapping(self, tiny_kb):
        # "be an early member of" is not a lexicalization, but the NP pair
        # (university of virginia, u21) resolves to a founded fact.
        triples = [
            OIETriple("t1", "university of virginia", "be an early member of", "u21"),
        ]
        categorizer = RelationCategorizer(tiny_kb, triples)
        assert categorizer.relation_of("be an early member of") == "r:founded"

    def test_same_category(self, tiny_kb, tiny_triples):
        categorizer = RelationCategorizer(tiny_kb, tiny_triples)
        # Both map to r:founded (category "founding").
        assert categorizer.same_category("be a member of", "be an early member of")
        assert categorizer.similarity("be a member of", "be an early member of") == 1.0

    def test_different_categories(self, tiny_kb, tiny_triples):
        categorizer = RelationCategorizer(tiny_kb, tiny_triples)
        assert not categorizer.same_category("locate in", "be a member of")

    def test_unmapped_phrase(self, tiny_kb, tiny_triples):
        categorizer = RelationCategorizer(tiny_kb, tiny_triples)
        assert categorizer.relation_of("completely unknown phrase") is None
        assert not categorizer.same_category("completely unknown phrase", "locate in")

    def test_category_falls_back_to_relation_id(self, tiny_kb, tiny_triples):
        categorizer = RelationCategorizer(tiny_kb, tiny_triples)
        category = categorizer.category_of("locate in")
        assert category == "location"

    def test_min_votes(self, tiny_kb):
        triples = [
            OIETriple("t1", "university of virginia", "be an early member of", "u21"),
        ]
        strict = RelationCategorizer(tiny_kb, triples, min_votes=5)
        assert strict.relation_of("be an early member of") is None

    def test_mapped_phrases(self, tiny_kb, tiny_triples):
        categorizer = RelationCategorizer(tiny_kb, tiny_triples)
        assert "locate in" in categorizer.mapped_phrases


class TestCategorizerExtend:
    """`extend` must leave the categorizer as a rebuild from the union."""

    def _assert_equal(self, kb, extended, fresh, phrases):
        assert extended.mapped_phrases == fresh.mapped_phrases
        for phrase in phrases:
            assert extended.relation_of(phrase) == fresh.relation_of(phrase)
            assert extended.category_of(phrase) == fresh.category_of(phrase)

    def test_extend_equals_union_rebuild(self, tiny_kb, tiny_triples):
        phrases = [t.predicate_norm for t in tiny_triples]
        for split in range(1, len(tiny_triples)):
            extended = RelationCategorizer(tiny_kb, tiny_triples[:split])
            extended.extend(tiny_triples[split:])
            fresh = RelationCategorizer(tiny_kb, tiny_triples)
            self._assert_equal(tiny_kb, extended, fresh, phrases)

    def test_extend_respects_min_votes(self, tiny_kb, tiny_triples):
        extended = RelationCategorizer(tiny_kb, tiny_triples[:1], min_votes=2)
        extended.extend(tiny_triples[1:])
        fresh = RelationCategorizer(tiny_kb, tiny_triples, min_votes=2)
        assert extended.mapped_phrases == fresh.mapped_phrases

    def test_extend_reports_mapping_changes_only(self, tiny_kb, tiny_triples):
        categorizer = RelationCategorizer(tiny_kb, tiny_triples)
        # More votes for an already-winning relation: mapping unchanged.
        changed = categorizer.extend(
            [OIETriple("x1", "university of maryland", "locate in", "maryland")]
        )
        assert changed == frozenset()
        # A vote crossing the threshold for a fresh predicate: reported.
        changed = categorizer.extend(
            [OIETriple("x2", "umd", "be located in", "maryland")]
        )
        assert "be located in" in changed
        assert categorizer.relation_of("be located in") == "r:contained_by"

    def test_extend_from_empty(self, tiny_kb, tiny_triples):
        categorizer = RelationCategorizer(tiny_kb, [])
        assert categorizer.mapped_phrases == frozenset()
        categorizer.extend(tiny_triples)
        fresh = RelationCategorizer(tiny_kb, tiny_triples)
        assert categorizer.mapped_phrases == fresh.mapped_phrases
