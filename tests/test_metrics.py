"""Tests for macro/micro/pairwise metrics and linking accuracy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.clusters import Clustering
from repro.metrics.canonicalization import (
    evaluate_clustering,
    macro_scores,
    micro_scores,
    pairwise_scores,
)
from repro.metrics.linking import linking_accuracy


def clustering(*groups):
    return Clustering(groups)


class TestPerfectAndDegenerate:
    def test_identical_clusterings_score_one(self):
        gold = clustering(["a", "b"], ["c"])
        report = evaluate_clustering(gold, gold)
        assert report.macro.f1 == 1.0
        assert report.micro.f1 == 1.0
        assert report.pairwise.f1 == 1.0
        assert report.average_f1 == 1.0

    def test_all_singletons_vs_one_cluster(self):
        predicted = clustering(["a"], ["b"], ["c"])
        gold = clustering(["a", "b", "c"])
        report = evaluate_clustering(predicted, gold)
        # Precision perfect (every singleton pure), recall poor.
        assert report.macro.precision == 1.0
        assert report.macro.recall == 0.0
        assert report.pairwise.recall == 0.0

    def test_one_cluster_vs_all_singletons(self):
        predicted = clustering(["a", "b", "c"])
        gold = clustering(["a"], ["b"], ["c"])
        report = evaluate_clustering(predicted, gold)
        assert report.macro.precision == 0.0
        assert report.macro.recall == 1.0
        assert report.pairwise.precision == 0.0

    def test_empty_gold(self):
        report = evaluate_clustering(clustering(["a"]), Clustering([]))
        assert report.average_f1 == 0.0


class TestKnownValues:
    def test_macro_partial(self):
        predicted = clustering(["a", "b"], ["c", "d"])
        gold = clustering(["a", "b"], ["c"], ["d"])
        scores = macro_scores(predicted, gold)
        # Predicted: {a,b} pure, {c,d} impure -> precision 1/2.
        assert scores.precision == pytest.approx(0.5)
        # Gold: all three clusters contained in a predicted cluster.
        assert scores.recall == pytest.approx(1.0)

    def test_micro_partial(self):
        predicted = clustering(["a", "b", "c"])
        gold = clustering(["a", "b"], ["c"])
        scores = micro_scores(predicted, gold)
        assert scores.precision == pytest.approx(2 / 3)
        assert scores.recall == pytest.approx(1.0)

    def test_pairwise_partial(self):
        predicted = clustering(["a", "b", "c"])  # 3 pairs
        gold = clustering(["a", "b"], ["c"])  # 1 pair
        scores = pairwise_scores(predicted, gold)
        assert scores.precision == pytest.approx(1 / 3)
        assert scores.recall == pytest.approx(1.0)

    def test_f1_harmonic_mean(self):
        predicted = clustering(["a", "b", "c"])
        gold = clustering(["a", "b"], ["c"])
        scores = pairwise_scores(predicted, gold)
        expected = 2 * (1 / 3) * 1.0 / ((1 / 3) + 1.0)
        assert scores.f1 == pytest.approx(expected)


class TestSampledGoldAlignment:
    def test_extra_predicted_items_dropped(self):
        predicted = clustering(["a", "b", "x", "y"])
        gold = clustering(["a", "b"])
        scores = pairwise_scores(predicted, gold)
        assert scores.precision == 1.0
        assert scores.recall == 1.0

    def test_missing_items_become_singletons(self):
        predicted = clustering(["a"])  # knows nothing about b
        gold = clustering(["a", "b"])
        scores = pairwise_scores(predicted, gold)
        assert scores.recall == 0.0


@st.composite
def random_partitions(draw):
    items = list(range(draw(st.integers(2, 10))))
    labels_a = [draw(st.integers(0, 3)) for _ in items]
    labels_b = [draw(st.integers(0, 3)) for _ in items]
    pred = Clustering.from_assignment(dict(zip(items, labels_a, strict=True)))
    gold = Clustering.from_assignment(dict(zip(items, labels_b, strict=True)))
    return pred, gold


class TestMetricProperties:
    @given(random_partitions())
    @settings(max_examples=60, deadline=None)
    def test_bounds(self, partitions):
        predicted, gold = partitions
        report = evaluate_clustering(predicted, gold)
        for prf in (report.macro, report.micro, report.pairwise):
            assert 0.0 <= prf.precision <= 1.0
            assert 0.0 <= prf.recall <= 1.0
            assert 0.0 <= prf.f1 <= 1.0
        assert 0.0 <= report.average_f1 <= 1.0

    @given(random_partitions())
    @settings(max_examples=60, deadline=None)
    def test_self_evaluation_perfect(self, partitions):
        predicted, _gold = partitions
        report = evaluate_clustering(predicted, predicted)
        assert report.average_f1 == pytest.approx(1.0)

    @given(random_partitions())
    @settings(max_examples=60, deadline=None)
    def test_precision_recall_swap(self, partitions):
        predicted, gold = partitions
        forward = evaluate_clustering(predicted, gold)
        backward = evaluate_clustering(gold, predicted)
        assert forward.macro.precision == pytest.approx(backward.macro.recall)
        assert forward.micro.precision == pytest.approx(backward.micro.recall)
        assert forward.pairwise.precision == pytest.approx(backward.pairwise.recall)


class TestLinkingAccuracy:
    def test_all_correct(self):
        assert linking_accuracy({"a": "e1", "b": "e2"}, {"a": "e1", "b": "e2"}) == 1.0

    def test_half_correct(self):
        assert linking_accuracy({"a": "e1", "b": "wrong"}, {"a": "e1", "b": "e2"}) == 0.5

    def test_abstention_counts_as_wrong(self):
        assert linking_accuracy({"a": None}, {"a": "e1"}) == 0.0

    def test_missing_prediction_counts_as_wrong(self):
        assert linking_accuracy({}, {"a": "e1"}) == 0.0

    def test_empty_gold(self):
        assert linking_accuracy({"a": "e1"}, {}) == 0.0

    def test_extra_predictions_ignored(self):
        assert linking_accuracy({"a": "e1", "zzz": "e9"}, {"a": "e1"}) == 1.0
