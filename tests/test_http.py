"""HTTP front-end tests: wire envelopes, the router, the asyncio
transport, and the load harness.

``TestWireEquivalence`` is the CI http-serving equivalence gate: a
mixed request stream replayed over a real socket must produce answers
byte-identical to the in-process :class:`repro.serving.JOCLService`
path.  Backpressure (429), per-request timeouts (504) and
drain-on-shutdown (503) are driven deterministically through a stub
service whose handler blocks on an event — no sleeps in the asserts.
"""

import http.client
import json
import socket
import threading
import time

import pytest

from repro.api.errors import (
    CheckpointError,
    EngineStateError,
    IngestError,
    InvalidRequestError,
    JOCLAPIError,
    SchemaError,
    SchemaVersionError,
    TrainingError,
    UnknownMentionError,
)
from repro.cluster import ShardedEngine
from repro.core import JOCLConfig
from repro.datasets import (
    StreamingIngestConfig,
    generate_streaming_ingest,
    shard_partition,
)
from repro.http import (
    HTTP_SCHEMA_VERSION,
    CheckpointResponse,
    ErrorResponse,
    HealthResponse,
    HTTPServingServer,
    IngestRequest,
    IngestResponse,
    LoadGenConfig,
    LoadReport,
    ResolveManyRequest,
    ResolveManyResponse,
    ResolveRequest,
    ResolveResponse,
    RollbackRequest,
    RollbackResponse,
    RunJointResponse,
    ServerConfig,
    ServingApp,
    StatsResponse,
    build_request_plan,
    error_response,
    run_load,
)
from repro.http.envelopes import ERROR_STATUS
from repro.persist import FileStateStore
from repro.runtime import IncrementalRuntime
from repro.serving import JOCLClusterService, JOCLService

FAST = JOCLConfig(lbp_iterations=20)


@pytest.fixture(scope="module")
def workload():
    return generate_streaming_ingest(
        StreamingIngestConfig(n_shards=4, triples_per_shard=25, seed=11)
    )


@pytest.fixture(scope="module")
def mentions(workload):
    """(mention, kind) queries covering all three slots."""
    queries = []
    for triple in workload.seed_triples[:40]:
        queries.append((triple.subject, "np"))
        queries.append((triple.predicate, "relation"))
        queries.append((triple.object, None))
    return queries


@pytest.fixture(scope="module")
def service(workload):
    """One warm windowed session shared by the read-only tests."""
    session = JOCLService(
        workload.engine(FAST, IncrementalRuntime()), batch_window_ms=2.0
    )
    session.resolve(workload.seed_triples[0].subject, "np")  # warm decode
    return session


@pytest.fixture(scope="module")
def app(service):
    return ServingApp(service)


def post(app, path, payload):
    return app.handle("POST", path, json.dumps(payload).encode("utf-8"))


# ----------------------------------------------------------------------
# Envelopes
# ----------------------------------------------------------------------
class TestEnvelopes:
    @pytest.mark.parametrize(
        "message",
        [
            ResolveRequest("university of maryland", "np"),
            ResolveRequest("umd"),
            ResolveManyRequest(("a", "b"), None),
            RollbackRequest("snap-3"),
            RollbackRequest(),
            ResolveResponse(result={"mention": "umd"}),
            ResolveManyResponse(results=({"a": 1}, {"b": 2})),
            IngestResponse(ingested=3),
            IngestResponse(ingested=2, report={"n_triples": 2}),
            RunJointResponse(report={"iterations": 4}),
            CheckpointResponse(snapshot="snap-1"),
            CheckpointResponse(manifest={"shards": []}),
            RollbackResponse(snapshot="snap-1"),
            StatsResponse(engine={"n": 1}, serving=({"requests": 2},), server={}),
            HealthResponse(status="ok"),
            HealthResponse(status="draining", draining=True),
            ErrorResponse(status=429, code="overloaded", message="x", retry_after_s=0.05),
        ],
    )
    def test_round_trip(self, message):
        payload = message.to_dict()
        assert payload["schema_version"] == HTTP_SCHEMA_VERSION
        assert payload["type"] == type(message).TYPE
        assert type(message).from_dict(json.loads(json.dumps(payload))) == message

    def test_ingest_request_round_trip(self, workload):
        request = IngestRequest(triples=tuple(workload.seed_triples[:3]))
        restored = IngestRequest.from_dict(
            json.loads(json.dumps(request.to_dict()))
        )
        assert restored == request

    def test_wrong_schema_version(self):
        payload = ResolveRequest("umd").to_dict()
        payload["schema_version"] = HTTP_SCHEMA_VERSION + 1
        with pytest.raises(SchemaVersionError):
            ResolveRequest.from_dict(payload)

    def test_wrong_type_discriminator(self):
        with pytest.raises(SchemaError):
            ResolveRequest.from_dict(RollbackRequest().to_dict())

    def test_non_mapping_payload(self):
        with pytest.raises(SchemaError):
            ResolveRequest.from_dict(["not", "a", "mapping"])

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda p: p.pop("mention"),
            lambda p: p.update(mention=7),
            lambda p: p.update(kind=7),
        ],
    )
    def test_malformed_resolve_fields(self, mutate):
        payload = ResolveRequest("umd", "np").to_dict()
        mutate(payload)
        with pytest.raises(SchemaError):
            ResolveRequest.from_dict(payload)

    def test_mentions_must_be_a_list_of_strings(self):
        payload = ResolveManyRequest(("a",)).to_dict()
        payload["mentions"] = "abc"  # a string is iterable; still rejected
        with pytest.raises(SchemaError):
            ResolveManyRequest.from_dict(payload)

    @pytest.mark.parametrize(
        ("error", "status", "code"),
        [
            (SchemaVersionError(2, 1), 400, "schema_version"),
            (SchemaError("bad"), 400, "schema"),
            (InvalidRequestError("bad"), 400, "invalid_request"),
            (UnknownMentionError("zzz"), 404, "unknown_mention"),
            (IngestError("clash"), 409, "ingest_conflict"),
            (CheckpointError("no store"), 409, "checkpoint"),
            (EngineStateError("not fitted"), 409, "engine_state"),
            (TrainingError("diverged"), 422, "training"),
            (JOCLAPIError("generic"), 500, "api_error"),
        ],
    )
    def test_error_mapping(self, error, status, code):
        response = error_response(error)
        assert (response.status, response.code) == (status, code)
        assert str(error) in response.message

    def test_unexpected_exception_is_opaque(self):
        response = error_response(RuntimeError("secret internal detail"))
        assert (response.status, response.code) == (500, "internal")
        assert "secret" not in response.message

    def test_error_table_is_most_specific_first(self):
        """A subclass listed after its base would be unreachable."""
        seen: list[type] = []
        for exc_type, _, _ in ERROR_STATUS:
            assert not any(issubclass(exc_type, earlier) for earlier in seen)
            seen.append(exc_type)


# ----------------------------------------------------------------------
# The router, in-process (no sockets)
# ----------------------------------------------------------------------
class TestServingApp:
    def test_resolve_matches_in_process_answer(self, app, service, mentions):
        mention, kind = mentions[0]
        status, payload, _ = post(app, "/v1/resolve", ResolveRequest(mention, kind).to_dict())
        assert status == 200
        expected = service.resolve(mention, kind).to_dict()
        assert ResolveResponse.from_dict(payload).result == expected

    def test_resolve_many_preserves_order(self, app, service, mentions):
        surfaces = [mention for mention, _ in mentions[:6]]
        status, payload, _ = post(
            app, "/v1/resolve_many", ResolveManyRequest(tuple(surfaces), None).to_dict()
        )
        assert status == 200
        expected = [r.to_dict() for r in service.resolve_many(surfaces)]
        assert list(ResolveManyResponse.from_dict(payload).results) == expected

    def test_malformed_json_is_a_structured_400(self, app):
        status, payload, _ = app.handle("POST", "/v1/resolve", b"{not json")
        error = ErrorResponse.from_dict(payload)
        assert (status, error.code) == (400, "schema")

    def test_wrong_schema_version_is_a_structured_400(self, app):
        body = ResolveRequest("umd").to_dict()
        body["schema_version"] = 99
        status, payload, _ = post(app, "/v1/resolve", body)
        assert (status, ErrorResponse.from_dict(payload).code) == (400, "schema_version")

    def test_unknown_mention_is_404(self, app):
        status, payload, _ = post(
            app, "/v1/resolve", ResolveRequest("no such surface form").to_dict()
        )
        assert (status, ErrorResponse.from_dict(payload).code) == (404, "unknown_mention")

    def test_unknown_endpoint_is_404(self, app):
        status, payload, _ = app.handle("POST", "/v1/nope", b"{}")
        assert (status, ErrorResponse.from_dict(payload).code) == (404, "unknown_endpoint")

    def test_wrong_method_is_405_with_allow(self, app):
        status, payload, headers = app.handle("GET", "/v1/resolve", b"")
        assert (status, headers["Allow"]) == (405, "POST")
        assert ErrorResponse.from_dict(payload).code == "method_not_allowed"

    def test_unexpected_service_error_is_opaque_500(self, workload, monkeypatch):
        session = JOCLService(workload.engine(FAST, IncrementalRuntime()))
        failing = ServingApp(session)
        monkeypatch.setattr(
            session, "resolve", lambda *a, **k: (_ for _ in ()).throw(RuntimeError("boom"))
        )
        status, payload, _ = post(failing, "/v1/resolve", ResolveRequest("x").to_dict())
        error = ErrorResponse.from_dict(payload)
        assert (status, error.code) == (500, "internal")
        assert "boom" not in error.message

    def test_stats_and_healthz(self, app):
        status, payload, _ = app.handle("GET", "/v1/stats", b"")
        stats = StatsResponse.from_dict(payload)
        assert status == 200
        assert stats.engine["n_triples"] > 0
        assert len(stats.serving) == 1
        assert stats.serving[0]["requests"] >= 1
        assert stats.server == {}  # no transport attached in-process
        status, payload, _ = app.handle("GET", "/healthz", b"")
        assert (status, HealthResponse.from_dict(payload).status) == (200, "ok")

    def test_ingest_checkpoint_rollback_cycle(self, tmp_path, workload):
        store = FileStateStore(tmp_path / "http-store")
        session = JOCLService(
            workload.engine(FAST, IncrementalRuntime()), store=store
        )
        mutable = ServingApp(session)
        status, payload, _ = post(mutable, "/v1/checkpoint", {})
        snapshot = CheckpointResponse.from_dict(payload).snapshot
        assert status == 200 and snapshot

        batch = workload.batches[0]
        status, payload, _ = post(
            mutable, "/v1/ingest", IngestRequest(tuple(batch)).to_dict()
        )
        assert status == 200
        assert IngestResponse.from_dict(payload).ingested == len(batch)

        status, payload, _ = post(
            mutable, "/v1/rollback", RollbackRequest(snapshot).to_dict()
        )
        assert status == 200
        assert RollbackResponse.from_dict(payload).snapshot == snapshot
        status, payload, _ = post(mutable, "/v1/run_joint", {})
        assert status == 200
        report = RunJointResponse.from_dict(payload).report
        assert report["canonicalization"]["clusters"]

    def test_checkpoint_without_store_is_409(self, app):
        status, payload, _ = post(app, "/v1/checkpoint", {})
        assert (status, ErrorResponse.from_dict(payload).code) == (409, "checkpoint")

    def test_cluster_checkpoint_returns_manifest(self, tmp_path, workload):
        cluster = (
            ShardedEngine.builder()
            .with_ckb(workload.dataset.kb)
            .with_anchors(workload.dataset.anchors)
            .with_ppdb(workload.dataset.ppdb)
            .with_config(FAST)
            .with_shard_triples(shard_partition(workload.seed_triples))
            .build()
        )
        cluster_app = ServingApp(
            JOCLClusterService(
                cluster, store=FileStateStore(tmp_path / "cluster-store")
            )
        )
        status, payload, _ = post(cluster_app, "/v1/checkpoint", {})
        response = CheckpointResponse.from_dict(payload)
        assert status == 200
        assert response.snapshot is None and response.manifest is not None
        status, payload, _ = post(cluster_app, "/v1/rollback", RollbackRequest().to_dict())
        assert (status, ErrorResponse.from_dict(payload).code) == (409, "checkpoint")
        status, payload, _ = cluster_app.handle("GET", "/v1/stats", b"")
        assert status == 200
        assert len(StatsResponse.from_dict(payload).serving) == cluster.n_shards


# ----------------------------------------------------------------------
# Transport robustness, driven through a gated stub service
# ----------------------------------------------------------------------
class _Answer:
    def __init__(self, payload):
        self._payload = payload

    def to_dict(self):
        return dict(self._payload)


class _GatedService(JOCLService):
    """A service whose resolve blocks until the test opens the gate.

    Subclassing keeps ``ServingApp``'s isinstance dispatch honest while
    bypassing the engine entirely — no inference in the robustness
    tests, so their timing assertions stay deterministic.
    """

    def __init__(self):  # deliberately skips JOCLService.__init__: no engine
        self.gate = threading.Event()
        self.entered = threading.Event()

    def resolve(self, mention, kind=None):
        self.entered.set()
        self.gate.wait(timeout=30.0)
        return _Answer({"mention": mention, "kind": kind})

    def serving_stats(self):  # pragma: no cover - stats shape only
        from repro.serving.service import ServingStats

        return ServingStats()


def _raw_http(host, port, payload_bytes):
    with socket.create_connection((host, port), timeout=10.0) as sock:
        sock.sendall(payload_bytes)
        sock.shutdown(socket.SHUT_WR)
        chunks = []
        while chunk := sock.recv(65536):
            chunks.append(chunk)
    return b"".join(chunks)


RESOLVE_BODY = json.dumps(ResolveRequest("x").to_dict()).encode("utf-8")


def _request(host, port, method="POST", path="/v1/resolve", body=RESOLVE_BODY):
    connection = http.client.HTTPConnection(host, port, timeout=10.0)
    try:
        connection.request(method, path, body=body)
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        connection.close()


class TestTransportRobustness:
    def test_backpressure_is_a_structured_429(self):
        stub = _GatedService()
        config = ServerConfig(max_in_flight=1, request_timeout_s=10.0)
        with HTTPServingServer(ServingApp(stub), config) as server:
            first = {}

            def slow():
                first["response"] = _request(server.host, server.port)

            thread = threading.Thread(target=slow)
            thread.start()
            assert stub.entered.wait(timeout=5.0)
            status, headers, body = _request(server.host, server.port)
            error = ErrorResponse.from_dict(json.loads(body))
            assert (status, error.code) == (429, "overloaded")
            assert error.retry_after_s == config.retry_after_s
            assert headers["Retry-After"] == f"{config.retry_after_s:.3f}"
            stub.gate.set()
            thread.join(timeout=10.0)
            assert first["response"][0] == 200
            gauges = server.gauges()
            assert gauges["rejected_busy"] == 1
            assert gauges["requests_served"] == 1

    def test_slow_request_is_a_504_and_the_server_survives(self):
        stub = _GatedService()
        config = ServerConfig(request_timeout_s=0.1)
        with HTTPServingServer(ServingApp(stub), config) as server:
            status, _, body = _request(server.host, server.port)
            assert (status, ErrorResponse.from_dict(json.loads(body)).code) == (
                504,
                "timeout",
            )
            stub.gate.set()  # the stranded worker finishes in the background
            status, _, body = _request(server.host, server.port)
            assert status == 200
            assert server.gauges()["timed_out"] == 1

    def test_drain_finishes_in_flight_and_rejects_new_work(self):
        stub = _GatedService()
        with HTTPServingServer(ServingApp(stub)) as server:
            # A kept-alive connection established before the drain starts.
            idle = http.client.HTTPConnection(server.host, server.port, timeout=10.0)
            idle.request("GET", "/healthz")
            first_response = idle.getresponse()
            first_response.read()
            assert first_response.status == 200

            slow = {}

            def in_flight():
                slow["response"] = _request(server.host, server.port)

            worker = threading.Thread(target=in_flight)
            worker.start()
            assert stub.entered.wait(timeout=5.0)

            stopper = threading.Thread(target=server.stop)
            stopper.start()
            deadline = time.monotonic() + 5.0
            while not server.gauges()["draining"]:
                assert time.monotonic() < deadline, "drain flag never rose"
                time.sleep(0.005)

            # New work on the kept-alive connection is a structured 503.
            idle.request("POST", "/v1/resolve", body=RESOLVE_BODY)
            response = idle.getresponse()
            error = ErrorResponse.from_dict(json.loads(response.read()))
            assert (response.status, error.code) == (503, "shutting_down")
            idle.close()

            stub.gate.set()  # let the in-flight request finish the drain
            worker.join(timeout=10.0)
            stopper.join(timeout=10.0)
            assert slow["response"][0] == 200
            with pytest.raises(OSError):
                _request(server.host, server.port)

    def test_health_reports_draining(self):
        stub = _GatedService()
        with HTTPServingServer(ServingApp(stub)) as server:
            status, _, body = _request(server.host, server.port, "GET", "/healthz", b"")
            health = HealthResponse.from_dict(json.loads(body))
            assert (status, health.status, health.draining) == (200, "ok", False)

    def test_malformed_http_is_a_400_close(self):
        stub = _GatedService()
        with HTTPServingServer(ServingApp(stub)) as server:
            raw = _raw_http(server.host, server.port, b"NOT A REQUEST LINE\r\n\r\n")
            assert raw.startswith(b"HTTP/1.1 400 ")
            body = raw.split(b"\r\n\r\n", 1)[1]
            assert ErrorResponse.from_dict(json.loads(body)).code == "bad_request"

    def test_oversized_body_is_a_413(self):
        stub = _GatedService()
        config = ServerConfig(max_body_bytes=64)
        with HTTPServingServer(ServingApp(stub), config) as server:
            status, _, body = _request(
                server.host, server.port, body=b"x" * 1024
            )
            assert (status, ErrorResponse.from_dict(json.loads(body)).code) == (
                413,
                "payload_too_large",
            )

    def test_double_start_raises(self):
        stub = _GatedService()
        with HTTPServingServer(ServingApp(stub)) as server:
            with pytest.raises(EngineStateError):
                server.start()
        server.stop()  # idempotent

    def test_port_before_start_raises(self):
        server = HTTPServingServer(ServingApp(_GatedService()))
        with pytest.raises(EngineStateError):
            _ = server.port

    def test_rejects_bad_config(self):
        with pytest.raises(InvalidRequestError):
            ServerConfig(max_in_flight=0).validated()
        with pytest.raises(InvalidRequestError):
            ServerConfig(request_timeout_s=0.0).validated()


# ----------------------------------------------------------------------
# Wire equivalence + coalescing over a real socket
# ----------------------------------------------------------------------
class TestWireEquivalence:
    def test_http_answers_match_in_process_service(self, workload, mentions):
        """The serving-path identity, across the wire: replaying one
        mixed stream over HTTP and in-process yields byte-identical
        JSON answers, ingests included."""
        http_session = JOCLService(
            workload.engine(FAST, IncrementalRuntime()), batch_window_ms=2.0
        )
        reference = JOCLService(workload.engine(FAST, IncrementalRuntime()))
        arrivals = workload.batches[0]
        half = max(1, len(arrivals) // 2)
        stream = [("resolve", mentions[i % len(mentions)]) for i in range(30)]
        stream.insert(10, ("ingest", arrivals[:half]))
        stream.insert(21, ("ingest", arrivals[half:]))

        with HTTPServingServer(ServingApp(http_session)) as server:
            for action, argument in stream:
                if action == "resolve":
                    mention, kind = argument
                    status, _, body = _request(
                        server.host,
                        server.port,
                        body=json.dumps(
                            ResolveRequest(mention, kind).to_dict()
                        ).encode("utf-8"),
                    )
                    assert status == 200
                    over_wire = ResolveResponse.from_dict(json.loads(body)).result
                    in_process = reference.resolve(mention, kind).to_dict()
                    assert json.dumps(over_wire, sort_keys=True) == json.dumps(
                        in_process, sort_keys=True
                    )
                else:
                    status, _, body = _request(
                        server.host,
                        server.port,
                        path="/v1/ingest",
                        body=json.dumps(
                            IngestRequest(tuple(argument)).to_dict()
                        ).encode("utf-8"),
                    )
                    assert status == 200
                    assert IngestResponse.from_dict(json.loads(body)).ingested == len(
                        argument
                    )
                    reference.ingest(argument)

    def test_concurrent_load_coalesces_batches(self, workload, mentions):
        """The batching window does its job over a real socket: hot
        concurrent arrivals land in shared decode batches."""
        session = JOCLService(
            workload.engine(FAST, IncrementalRuntime()),
            max_batch_size=8,
            batch_window_ms=5.0,
        )
        session.resolve(*mentions[0])  # warm the decode outside the load
        config = LoadGenConfig(
            mode="closed", n_requests=240, concurrency=12, hot_fraction=0.9,
            hot_keys=4, seed=7,
        )
        plan = build_request_plan(mentions, config)
        with HTTPServingServer(ServingApp(session)) as server:
            report = run_load(server.host, server.port, plan, config)
        assert report.ok == report.n_requests == 240
        assert report.errors == {}
        assert report.p50_ms <= report.p95_ms <= report.p99_ms
        stats = session.serving_stats()
        assert stats.coalesced_requests > 0
        assert stats.deduplicated_requests > 0
        assert stats.batches < stats.requests
        assert stats.p99_ms >= stats.p50_ms > 0
        assert stats.latency_samples >= 240

    def test_open_loop_load_smoke(self, workload, mentions):
        session = JOCLService(
            workload.engine(FAST, IncrementalRuntime()), batch_window_ms=2.0
        )
        session.resolve(*mentions[0])
        config = LoadGenConfig(
            mode="open", n_requests=40, arrival_rate_per_s=400.0, seed=3
        )
        plan = build_request_plan(mentions, config)
        with HTTPServingServer(ServingApp(session)) as server:
            report = run_load(server.host, server.port, plan, config)
        assert report.mode == "open"
        assert report.ok == 40


# ----------------------------------------------------------------------
# The load harness itself
# ----------------------------------------------------------------------
class TestLoadGen:
    def test_plan_is_deterministic(self, workload, mentions):
        config = LoadGenConfig(n_requests=100, write_fraction=0.1, seed=5)
        first = build_request_plan(mentions, config, workload.batches)
        second = build_request_plan(mentions, config, workload.batches)
        assert first == second

    def test_plan_spreads_writes(self, workload, mentions):
        config = LoadGenConfig(n_requests=100, write_fraction=0.05, seed=5)
        plan = build_request_plan(mentions, config, workload.batches)
        writes = [i for i, r in enumerate(plan) if r.kind == "write"]
        assert len(writes) == min(5, len(workload.batches))
        assert writes == sorted(writes)
        assert writes[0] > 0 and writes[-1] < len(plan) - 1

    def test_plan_respects_hot_set(self, mentions):
        config = LoadGenConfig(n_requests=200, hot_fraction=1.0, hot_keys=2, seed=1)
        plan = build_request_plan(mentions, config)
        hot_bodies = {
            json.dumps(ResolveRequest(m, k).to_dict()).encode("utf-8")
            for m, k in mentions[:2]
        }
        assert all(request.body in hot_bodies for request in plan)

    def test_empty_mentions_rejected(self):
        with pytest.raises(InvalidRequestError):
            build_request_plan([], LoadGenConfig())

    @pytest.mark.parametrize(
        "config",
        [
            LoadGenConfig(mode="sideways"),
            LoadGenConfig(n_requests=0),
            LoadGenConfig(concurrency=0),
            LoadGenConfig(write_fraction=1.5),
            LoadGenConfig(hot_fraction=-0.1),
            LoadGenConfig(hot_keys=0),
            LoadGenConfig(mode="open", arrival_rate_per_s=0.0),
        ],
    )
    def test_rejects_bad_config(self, config):
        with pytest.raises(InvalidRequestError):
            config.validated()

    def test_load_report_round_trip(self):
        report = LoadReport(
            mode="closed", n_requests=10, wall_s=0.5, req_per_s=20.0, ok=9,
            reads=8, writes=2, errors={429: 1}, p50_ms=1.0, p95_ms=2.0,
            p99_ms=3.0,
        )
        assert LoadReport.from_dict(json.loads(json.dumps(report.to_dict()))) == report
        with pytest.raises(SchemaVersionError):
            payload = report.to_dict()
            payload["schema_version"] = 99
            LoadReport.from_dict(payload)
