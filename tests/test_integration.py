"""Cross-module integration tests: the whole stack working together."""

import pytest

from repro.core import JOCL, JOCLConfig
from repro.core.learning import GoldAnnotations
from repro.datasets import (
    NYTimes2018Config,
    generate_nytimes2018,
    load_triples_jsonl,
    save_triples_jsonl,
)
from repro.datasets.base import Dataset
from repro.metrics import linking_accuracy
from repro.okb.store import OpenKB


@pytest.fixture(scope="module")
def fast_config():
    return JOCLConfig(lbp_iterations=12, learn_iterations=2)


class TestWeightTransferProtocol:
    """The paper's cross-corpus protocol: train on ReVerb45K's
    validation split, evaluate anywhere."""

    def test_reverb_trained_weights_work_on_nytimes(
        self, small_dataset, fast_config
    ):
        model = JOCL(fast_config)
        model.fit(
            small_dataset.side_information("validation"),
            GoldAnnotations.from_triples(small_dataset.validation_triples),
        )
        nytimes = generate_nytimes2018(
            NYTimes2018Config(n_entities=24, n_facts=50, n_triples=60, seed=5)
        )
        output = model.infer(nytimes.side_information("test"))
        accuracy = linking_accuracy(output.entity_links, nytimes.gold.entity_links)
        assert accuracy > 0.3

    def test_weights_survive_graph_rebuild(self, small_dataset, fast_config):
        model = JOCL(fast_config)
        model.fit(
            small_dataset.side_information("validation"),
            GoldAnnotations.from_triples(small_dataset.validation_triples),
        )
        side = small_dataset.side_information("test")
        graph_a, _, _ = model.build_graph(side)
        graph_b, _, _ = model.build_graph(side)
        for name in graph_a.templates:
            assert (
                graph_a.templates[name].weights == graph_b.templates[name].weights
            ).all()


class TestDiskRoundTripPipeline:
    def test_dataset_through_jsonl_gives_same_results(
        self, small_dataset, tmp_path, fast_config
    ):
        """Persist the test split, reload it, rebuild the OKB, re-infer:
        results must be identical (the loaders are faithful)."""
        path = tmp_path / "test_triples.jsonl"
        save_triples_jsonl(small_dataset.test_triples, path)
        reloaded = load_triples_jsonl(path)

        rebuilt = Dataset(
            name="reloaded",
            world=small_dataset.world,
            triples=reloaded,
            kb=small_dataset.kb,
            anchors=small_dataset.anchors,
            ppdb=small_dataset.ppdb,
            validation_triples=[],
            test_triples=reloaded,
        )
        from repro.datasets.base import EvaluationGold

        rebuilt.gold = EvaluationGold.from_triples(reloaded)

        original = JOCL(fast_config).infer(small_dataset.side_information("test"))
        again = JOCL(fast_config).infer(rebuilt.side_information("test"))
        assert original.entity_links == again.entity_links
        assert original.np_clusters == again.np_clusters


class TestDecodeInvariants:
    """Structural invariants of JOCL output on generated data."""

    @pytest.fixture(scope="class")
    def output_and_side(self, small_dataset):
        side = small_dataset.side_information("test")
        model = JOCL(JOCLConfig(lbp_iterations=12))
        return model.infer(side), side, model

    def test_clusters_partition_nodes(self, output_and_side):
        output, side, _model = output_and_side
        subjects = {t.subject_norm for t in side.okb.triples}
        assert output.np_clusters.items == subjects
        predicates = {t.predicate_norm for t in side.okb.triples}
        assert output.rp_clusters.items == predicates

    def test_links_within_candidate_domains(self, output_and_side):
        output, side, model = output_and_side
        _graph, index, _builder = model.build_graph(side)
        for phrase, target in output.entity_links.items():
            if target is None:
                continue
            domain = index.candidates[("S", phrase)]
            # Conflict resolution may move a phrase to another node's
            # entity; the target must at least be a real CKB entity.
            assert target in side.kb.entities
            del domain

    def test_same_cluster_implies_same_link(self, output_and_side):
        output, _side, _model = output_and_side
        for group in output.np_clusters.groups:
            links = {output.entity_links[phrase] for phrase in group}
            # A cluster carries at most one non-NIL entity label.
            non_nil = {link for link in links if link is not None}
            assert len(non_nil) <= 1

    def test_deterministic_inference(self, small_dataset):
        side = small_dataset.side_information("test")
        a = JOCL(JOCLConfig(lbp_iterations=12)).infer(side)
        b = JOCL(JOCLConfig(lbp_iterations=12)).infer(side)
        assert a.entity_links == b.entity_links
        assert a.np_clusters == b.np_clusters


class TestDegenerateInputs:
    def test_single_triple_okb(self, tiny_kb, tiny_anchors, tiny_ppdb):
        from repro.core.side_info import SideInformation
        from repro.okb.triples import OIETriple

        okb = OpenKB([OIETriple("t1", "umd", "locate in", "maryland")])
        side = SideInformation.build(
            okb=okb, kb=tiny_kb, anchors=tiny_anchors, ppdb=tiny_ppdb
        )
        output = JOCL(JOCLConfig(lbp_iterations=8)).infer(side)
        assert output.entity_links == {"umd": "e:umd"}

    def test_self_loop_triple(self, tiny_kb, tiny_anchors, tiny_ppdb):
        """subject == object string: the degenerate U4 is skipped but the
        graph still builds and decodes."""
        from repro.core.side_info import SideInformation
        from repro.okb.triples import OIETriple

        okb = OpenKB([OIETriple("t1", "maryland", "border", "maryland")])
        side = SideInformation.build(
            okb=okb, kb=tiny_kb, anchors=tiny_anchors, ppdb=tiny_ppdb
        )
        output = JOCL(JOCLConfig(lbp_iterations=8)).infer(side)
        assert "maryland" in output.entity_links

    def test_empty_like_phrases(self, tiny_kb):
        from repro.core.side_info import SideInformation
        from repro.okb.triples import OIETriple

        okb = OpenKB([OIETriple("t1", "7", "be", "x y")])
        side = SideInformation.build(okb=okb, kb=tiny_kb)
        output = JOCL(JOCLConfig(lbp_iterations=8)).infer(side)
        assert output.converged
