"""Tests for JOCLConfig, FactorToggles, and the named variants."""

import pytest

from repro.core.config import FactorToggles, FeatureVariant, JOCLConfig
from repro.core.variants import (
    jocl_all_config,
    jocl_cano_config,
    jocl_double_config,
    jocl_link_config,
    jocl_no_interaction_config,
    jocl_single_config,
)


class TestJOCLConfig:
    def test_paper_defaults(self):
        config = JOCLConfig()
        assert config.pair_threshold == 0.5
        assert config.learning_rate == 0.05
        assert config.learn_iterations == 20
        assert (
            config.transitive_high,
            config.transitive_middle,
            config.transitive_low,
        ) == (0.9, 0.5, 0.1)
        assert (config.fact_high, config.fact_low) == (0.9, 0.1)
        assert (config.consistency_high, config.consistency_low) == (0.7, 0.3)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            JOCLConfig(pair_threshold=1.5)

    def test_invalid_score(self):
        with pytest.raises(ValueError):
            JOCLConfig(fact_high=2.0)

    def test_invalid_candidates(self):
        with pytest.raises(ValueError):
            JOCLConfig(max_candidates=0)


class TestFactorToggles:
    def test_consistency_requires_both_sides(self):
        with pytest.raises(ValueError):
            FactorToggles(canonicalization=False, transitivity=False, consistency=True)

    def test_transitivity_requires_canonicalization(self):
        with pytest.raises(ValueError):
            FactorToggles(
                canonicalization=False,
                transitivity=True,
                consistency=False,
            )

    def test_fact_inclusion_requires_linking(self):
        with pytest.raises(ValueError):
            FactorToggles(
                linking=False, fact_inclusion=True, consistency=False
            )


class TestVariants:
    def test_feature_variants(self):
        assert jocl_single_config().variant is FeatureVariant.SINGLE
        assert jocl_double_config().variant is FeatureVariant.DOUBLE
        assert jocl_all_config().variant is FeatureVariant.ALL

    def test_cano_has_no_linking(self):
        toggles = jocl_cano_config().toggles
        assert toggles.canonicalization and toggles.transitivity
        assert not (toggles.linking or toggles.fact_inclusion or toggles.consistency)

    def test_link_has_no_canonicalization(self):
        toggles = jocl_link_config().toggles
        assert toggles.linking and toggles.fact_inclusion
        assert not (toggles.canonicalization or toggles.transitivity or toggles.consistency)

    def test_no_interaction_keeps_both_sides(self):
        toggles = jocl_no_interaction_config().toggles
        assert toggles.canonicalization and toggles.linking
        assert not toggles.consistency

    def test_variants_preserve_base_settings(self):
        base = JOCLConfig(lbp_iterations=7)
        assert jocl_cano_config(base).lbp_iterations == 7
        assert jocl_single_config(base).lbp_iterations == 7
