"""Tests for the JOCL feature functions (Sections 3.1-3.3)."""

import numpy as np
import pytest

from repro.core.config import FeatureVariant, JOCLConfig
from repro.core.signals.base import PairSignal
from repro.core.signals.entity_linking import entity_link_signals
from repro.core.signals.interaction import (
    consistency_table,
    fact_inclusion_table,
    transitivity_table,
)
from repro.core.signals.np_signals import np_pair_signals
from repro.core.signals.registry import default_registry
from repro.core.signals.relation_linking import relation_link_signals
from repro.core.signals.rp_signals import rp_pair_signals


class TestSignalVectors:
    def test_np_signal_names(self, tiny_side):
        names = [s.name for s in np_pair_signals(tiny_side)]
        assert names == ["f_idf", "f_emb", "f_ppdb"]

    def test_rp_signal_names(self, tiny_side):
        names = [s.name for s in rp_pair_signals(tiny_side)]
        assert names == ["f_idf", "f_emb", "f_ppdb", "f_amie", "f_kbp"]

    def test_entity_link_signal_names(self, tiny_side):
        names = [s.name for s in entity_link_signals(tiny_side)]
        assert names == ["f_pop", "f_emb'", "f_ppdb'"]

    def test_relation_link_signal_names(self, tiny_side):
        names = [s.name for s in relation_link_signals(tiny_side)]
        assert names == ["f_ngram", "f_ld", "f_emb'", "f_ppdb'"]

    def test_all_signals_bounded(self, tiny_side):
        phrases = ["university of maryland", "umd", "locate in"]
        for signal in np_pair_signals(tiny_side) + rp_pair_signals(tiny_side):
            for a in phrases:
                for b in phrases:
                    assert 0.0 <= signal(a, b) <= 1.0

    def test_ppdb_signal_fires(self, tiny_side):
        ppdb_signal = [s for s in np_pair_signals(tiny_side) if s.name == "f_ppdb"][0]
        assert ppdb_signal("umd", "university of maryland") == 1.0
        assert ppdb_signal("umd", "maryland") == 0.0

    def test_popularity_signal(self, tiny_side):
        pop = [s for s in entity_link_signals(tiny_side) if s.name == "f_pop"][0]
        assert pop("maryland", "e:maryland") == pytest.approx(60 / 66)
        assert pop("maryland", "e:u21") == 0.0

    def test_pair_signal_clipping(self):
        signal = PairSignal("wild", score=lambda a, b: 2.5)
        assert signal("x", "y") == 1.0


class TestFeatureTables:
    def test_pair_table_two_states(self, tiny_side):
        registry = default_registry(tiny_side)
        table = registry.pair_feature_table(
            registry.np_pair, "university of maryland", "umd"
        )
        assert table.shape == (2, 3)
        # Row 1 holds Sim; row 0 holds 1 - Sim.
        assert np.allclose(table[0] + table[1], 1.0)

    def test_link_table_row_per_candidate(self, tiny_side):
        registry = default_registry(tiny_side)
        table = registry.link_feature_table(
            registry.entity_link, "maryland", ["e:maryland", "e:umd", "~NIL"]
        )
        assert table.shape == (3, 3)
        # NIL row carries no signal.
        assert np.allclose(table[2], 0.0)

    def test_variant_single(self, tiny_side):
        registry = default_registry(tiny_side, FeatureVariant.SINGLE)
        assert [s.name for s in registry.np_pair] == ["f_idf"]
        assert [s.name for s in registry.entity_link] == ["f_pop"]
        assert [s.name for s in registry.relation_link] == ["f_ngram"]

    def test_variant_double(self, tiny_side):
        registry = default_registry(tiny_side, FeatureVariant.DOUBLE)
        assert [s.name for s in registry.np_pair] == ["f_idf", "f_emb"]
        assert [s.name for s in registry.rp_pair] == ["f_idf", "f_emb"]


class TestInteractionTables:
    def test_transitivity_scores(self):
        table = transitivity_table(JOCLConfig())
        assert table.shape == (8, 1)
        # Assignments in C-order over (x_ij, x_jk, x_ik).
        scores = {tuple(map(int, f"{i:03b}")): table[i, 0] for i in range(8)}
        assert scores[(1, 1, 1)] == 0.9  # satisfied
        assert scores[(1, 1, 0)] == 0.1  # violated
        assert scores[(1, 0, 1)] == 0.1
        assert scores[(0, 1, 1)] == 0.1
        assert scores[(0, 0, 0)] == 0.5  # inactive
        assert scores[(1, 0, 0)] == 0.5

    def test_fact_inclusion_scores(self):
        def has_fact(s, r, o):
            return (s, r, o) == ("e1", "r1", "e2")

        def relations_between(s, o):
            return {"r9"} if (s, o) == ("e1", "e3") else set()

        table = fact_inclusion_table(
            JOCLConfig(), ["e1"], ["r1", "r2"], ["e2", "e3"], has_fact, relations_between
        )
        assert table.shape == (4, 2)
        # (e1, r1, e2): known fact, pair not "otherwise" connected.
        assert table[0, 0] == 0.9
        # (e1, r1, e3): not a fact, but pair connected by some relation.
        assert table[1, 0] == 0.1 and table[1, 1] == 0.9
        # (e1, r2, e2): neither.
        assert table[2, 0] == 0.1 and table[2, 1] == 0.1

    def test_consistency_scores(self):
        table = consistency_table(JOCLConfig(), ["e1", "e2"], ["e1"], frozenset())
        # Assignments: (e1,e1,0),(e1,e1,1),(e2,e1,0),(e2,e1,1)
        assert table[0, 0] == 0.3  # same entity but x=0: inconsistent
        assert table[1, 0] == 0.7  # same entity and x=1: consistent
        assert table[2, 0] == 0.7  # different and x=0: consistent
        assert table[3, 0] == 0.3

    def test_consistency_nil_never_matches(self):
        table = consistency_table(JOCLConfig(), ["~NIL"], ["~NIL"], frozenset({"~NIL"}))
        # NIL==NIL must not count as "same entity".
        assert table[0, 0] == 0.7  # x=0 consistent
        assert table[1, 0] == 0.3  # x=1 inconsistent
