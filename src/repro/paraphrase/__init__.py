"""Paraphrase database substrate (the paper's PPDB 2.0 role).

Section 3.1.3: "All the equivalent phrases are clustered into a group
and each group is randomly assigned a representative.  If two NPs have
the same cluster representative according to the index, they are
considered to be equivalent."  :class:`ParaphraseDB` implements exactly
that consumable.
"""

from repro.paraphrase.ppdb import ParaphraseDB

__all__ = ["ParaphraseDB"]
