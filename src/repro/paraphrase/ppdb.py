"""PPDB-style paraphrase database.

Built from pairwise paraphrase assertions, clustered with union-find,
with one deterministic representative per cluster (the paper says
"randomly assigned"; we pick the lexicographically smallest member under
a seeded shuffle so the choice is random-but-reproducible).

The only query JOCL needs is :meth:`equivalent` — "do these two phrases
share a cluster representative?" — which yields the binary
``Sim_PPDB`` signal.  A TSV round-trip is provided because real PPDB
ships as flat files.
"""

from __future__ import annotations

import random
from collections.abc import Iterable
from pathlib import Path

from repro.clustering.unionfind import UnionFind
from repro.strings.tokenize import normalize_text


class ParaphraseDB:
    """Phrase-equivalence index with cluster representatives.

    Parameters
    ----------
    pairs:
        Paraphrase assertions; transitively closed via union-find.
    seed:
        Seed for the representative assignment.
    """

    def __init__(self, pairs: Iterable[tuple[str, str]] = (), seed: int = 0) -> None:
        self._finder: UnionFind = UnionFind()
        self._seed = seed
        self._representatives: dict[str, str] | None = None
        for first, second in pairs:
            self.add_pair(first, second)

    def add_pair(self, first: str, second: str) -> None:
        """Assert that two phrases are paraphrases."""
        self._finder.union(normalize_text(first), normalize_text(second))
        self._representatives = None  # invalidate cache

    def _ensure_representatives(self) -> dict[str, str]:
        if self._representatives is None:
            rng = random.Random(self._seed)
            representatives: dict[str, str] = {}
            for group in self._finder.groups():
                members = sorted(group)
                representative = rng.choice(members)
                for member in members:
                    representatives[member] = representative
            self._representatives = representatives
        return self._representatives

    def representative(self, phrase: str) -> str:
        """Cluster representative of ``phrase`` (itself when unknown)."""
        normalized = normalize_text(phrase)
        return self._ensure_representatives().get(normalized, normalized)

    def equivalent(self, first: str, second: str) -> bool:
        """``Sim_PPDB`` as a boolean: same cluster representative?

        Identical normalized strings are trivially equivalent even when
        absent from the DB.
        """
        norm_a = normalize_text(first)
        norm_b = normalize_text(second)
        if norm_a == norm_b:
            return True
        representatives = self._ensure_representatives()
        rep_a = representatives.get(norm_a)
        rep_b = representatives.get(norm_b)
        return rep_a is not None and rep_a == rep_b

    def similarity(self, first: str, second: str) -> float:
        """``Sim_PPDB`` as the paper's 0/1 score."""
        return 1.0 if self.equivalent(first, second) else 0.0

    def clusters(self) -> list[frozenset[str]]:
        """All paraphrase clusters currently known."""
        return [frozenset(group) for group in self._finder.groups()]

    def __contains__(self, phrase: str) -> bool:
        return normalize_text(phrase) in self._finder

    def __len__(self) -> int:
        return len(self._finder)

    # ------------------------------------------------------------------
    # Persistence (repro.persist)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """JSON-safe snapshot: seed plus (phrase, representative) pairs.

        Replaying the pairs through :meth:`add_pair` reconstructs the
        same equivalence classes — which is all :meth:`equivalent` (the
        only query JOCL's signals consume) depends on.
        """
        return {
            "seed": self._seed,
            "pairs": sorted(self._ensure_representatives().items()),
        }

    @classmethod
    def from_state(cls, payload: dict) -> ParaphraseDB:
        """Inverse of :meth:`to_state`."""
        return cls(
            ((phrase, representative) for phrase, representative in payload["pairs"]),
            seed=int(payload["seed"]),
        )

    # ------------------------------------------------------------------
    # Persistence (PPDB ships as flat files)
    # ------------------------------------------------------------------
    def save_tsv(self, path: str | Path) -> None:
        """Write one ``phrase<TAB>representative`` row per phrase."""
        representatives = self._ensure_representatives()
        lines = [
            f"{phrase}\t{representative}"
            for phrase, representative in sorted(representatives.items())
        ]
        Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")

    @classmethod
    def load_tsv(cls, path: str | Path, seed: int = 0) -> ParaphraseDB:
        """Rebuild from :meth:`save_tsv` output."""
        db = cls(seed=seed)
        for line in Path(path).read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            phrase, _tab, representative = line.partition("\t")
            if not representative:
                raise ValueError(f"malformed paraphrase row: {line!r}")
            db.add_pair(phrase, representative)
        return db
