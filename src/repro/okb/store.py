"""The OKB triple store.

:class:`OpenKB` indexes a set of :class:`~repro.okb.triples.OIETriple`:

* the distinct NP and RP vocabularies (mention strings are deduplicated,
  see the mention-level note in DESIGN.md §3),
* per-phrase mention lists (which triples, which slot),
* IDF statistics over NPs and RPs (used by the ``f_idf`` signal and the
  candidate-pair pruning threshold of §4.1),
* attribute sets per NP — the (relation phrase, other NP) pairs it
  occurs with — used by the Attribute Overlap baseline and PATTY.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.okb.triples import OIETriple
from repro.strings.idf import IdfStatistics


class PhraseRole(enum.Enum):
    """Which slot of a triple a phrase occupies."""

    SUBJECT = "subject"
    PREDICATE = "predicate"
    OBJECT = "object"


@dataclass(frozen=True)
class IngestDelta:
    """What one :meth:`OpenKB.extend` batch changed, in typed form.

    The substrate of incremental inference: downstream consumers
    (:class:`repro.api.JOCLEngine`, :class:`repro.runtime.IncrementalRuntime`)
    use the delta to invalidate exactly the state the batch touched
    instead of the whole KB.

    ``touched_*`` phrases are every distinct surface form the batch
    mentions (pre-existing or new); ``new_*`` phrases are the subset
    that entered the vocabulary with this batch.  All tuples preserve
    first-seen order and are deduplicated.
    """

    #: The triples added, in insertion order.
    triples: tuple[OIETriple, ...] = ()
    #: NP surface forms that entered the vocabulary with this batch.
    new_noun_phrases: tuple[str, ...] = ()
    #: RP surface forms that entered the vocabulary with this batch.
    new_relation_phrases: tuple[str, ...] = ()
    #: Every distinct NP the batch mentions (includes ``new_noun_phrases``).
    touched_noun_phrases: tuple[str, ...] = ()
    #: Every distinct RP the batch mentions (includes ``new_relation_phrases``).
    touched_relation_phrases: tuple[str, ...] = ()

    @property
    def triple_ids(self) -> tuple[str, ...]:
        """Ids of the triples added."""
        return tuple(triple.triple_id for triple in self.triples)

    def __bool__(self) -> bool:
        return bool(self.triples)

    def merge(self, other: IngestDelta) -> IngestDelta:
        """Combine two consecutive deltas into one (order-preserving).

        Lets N ingest batches between inferences cost one invalidation
        pass, not N.
        """

        def union(first: tuple[str, ...], second: tuple[str, ...]) -> tuple[str, ...]:
            return tuple(dict.fromkeys(first + second))

        return IngestDelta(
            triples=self.triples + other.triples,
            new_noun_phrases=union(self.new_noun_phrases, other.new_noun_phrases),
            new_relation_phrases=union(
                self.new_relation_phrases, other.new_relation_phrases
            ),
            touched_noun_phrases=union(
                self.touched_noun_phrases, other.touched_noun_phrases
            ),
            touched_relation_phrases=union(
                self.touched_relation_phrases, other.touched_relation_phrases
            ),
        )


class OpenKB:
    """An indexed collection of OIE triples.

    Parameters
    ----------
    triples:
        The OIE triples.  Triple ids must be unique.
    """

    def __init__(self, triples: Iterable[OIETriple]) -> None:
        self._triples: list[OIETriple] = []
        self._by_id: dict[str, OIETriple] = {}
        self._np_mentions: dict[str, list[tuple[str, PhraseRole]]] = {}
        self._rp_mentions: dict[str, list[str]] = {}
        self._attributes: dict[str, set[tuple[str, str]]] = {}
        self._np_idf = IdfStatistics()
        self._rp_idf = IdfStatistics()
        # When True (the default) this store owns its IDF tables and
        # updates them on extend; adopt_shared_idf flips it so a cluster
        # can maintain corpus-global tables across many stores.
        self._owns_idf = True
        self.extend(triples)

    def adopt_shared_idf(
        self, np_idf: IdfStatistics, rp_idf: IdfStatistics
    ) -> None:
        """Adopt externally maintained corpus-global IDF tables.

        A sharded deployment (:class:`repro.cluster.ShardedEngine`) holds
        one OKB per shard, but the paper's ``f_idf`` signal is defined
        over the *whole* extraction corpus — per-shard word frequencies
        would re-weight token overlap and shift decisions away from the
        equivalent single-store run.  After adoption this store reads
        word weights from the shared tables and **stops updating them**:
        the owner (the cluster) folds new vocabulary in exactly once,
        cluster-wide, so a phrase arriving at two shards is still counted
        once, exactly as a single merged store would count it.

        Example — two shards sharing one corpus-wide table::

            from repro.strings.idf import IdfStatistics

            shared_np, shared_rp = IdfStatistics(), IdfStatistics()
            seen_nps, seen_rps = set(), set()
            for shard_okb in (okb_a, okb_b):
                new_nps = set(shard_okb.noun_phrases) - seen_nps
                new_rps = set(shard_okb.relation_phrases) - seen_rps
                shared_np.update(new_nps)
                shared_rp.update(new_rps)
                seen_nps |= new_nps
                seen_rps |= new_rps
                shard_okb.adopt_shared_idf(shared_np, shared_rp)
        """
        self._np_idf = np_idf
        self._rp_idf = rp_idf
        self._owns_idf = False

    def extend(self, triples: Iterable[OIETriple]) -> IngestDelta:
        """Incrementally index additional triples.

        Only state touched by the new triples is updated: mention lists
        and attribute sets are appended in place, and the IDF tables see
        each surface form the first time it enters the vocabulary (the
        statistics count distinct phrases, so the result is identical to
        rebuilding from the union).  The whole batch is validated before
        any of it is indexed, so a duplicate id leaves the store
        untouched.

        Returns the typed :class:`IngestDelta` describing exactly what
        the batch changed (triples added, new vs. touched vocabulary).
        """
        batch = list(triples)
        seen: set[str] = set()
        for triple in batch:
            if triple.triple_id in self._by_id or triple.triple_id in seen:
                raise ValueError(f"duplicate triple id {triple.triple_id!r}")
            seen.add(triple.triple_id)
        new_nps: list[str] = []
        new_rps: list[str] = []
        touched_nps: dict[str, None] = {}
        touched_rps: dict[str, None] = {}
        for triple in batch:
            self._by_id[triple.triple_id] = triple
            self._triples.append(triple)
            subject, predicate, obj = triple.as_tuple()
            touched_nps[subject] = None
            touched_nps[obj] = None
            touched_rps[predicate] = None
            if subject not in self._np_mentions:
                new_nps.append(subject)
            self._np_mentions.setdefault(subject, []).append(
                (triple.triple_id, PhraseRole.SUBJECT)
            )
            if obj not in self._np_mentions:
                new_nps.append(obj)
            self._np_mentions.setdefault(obj, []).append(
                (triple.triple_id, PhraseRole.OBJECT)
            )
            if predicate not in self._rp_mentions:
                new_rps.append(predicate)
            self._rp_mentions.setdefault(predicate, []).append(triple.triple_id)
            self._attributes.setdefault(subject, set()).add((predicate, obj))
            self._attributes.setdefault(obj, set()).add((predicate, subject))
        if self._owns_idf:
            self._np_idf.update(new_nps)
            self._rp_idf.update(new_rps)
        return IngestDelta(
            triples=tuple(batch),
            new_noun_phrases=tuple(new_nps),
            new_relation_phrases=tuple(new_rps),
            touched_noun_phrases=tuple(touched_nps),
            touched_relation_phrases=tuple(touched_rps),
        )

    # ------------------------------------------------------------------
    # Triples
    # ------------------------------------------------------------------
    @property
    def triples(self) -> Sequence[OIETriple]:
        """All triples, in insertion order."""
        return tuple(self._triples)

    def triple(self, triple_id: str) -> OIETriple:
        """Look up one triple by id."""
        return self._by_id[triple_id]

    def has_triple(self, triple_id: str) -> bool:
        """Whether a triple with this id is already indexed.

        The cluster-level duplicate check of
        :meth:`repro.cluster.ShardedEngine.ingest` (ids must be unique
        across *every* shard, not just the one a triple routes to).
        """
        return triple_id in self._by_id

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self):
        return iter(self._triples)

    # ------------------------------------------------------------------
    # Vocabularies
    # ------------------------------------------------------------------
    @property
    def noun_phrases(self) -> list[str]:
        """Distinct normalized NP surface forms (subjects and objects)."""
        return list(self._np_mentions)

    @property
    def relation_phrases(self) -> list[str]:
        """Distinct normalized RP surface forms."""
        return list(self._rp_mentions)

    def np_mentions(self, noun_phrase: str) -> list[tuple[str, PhraseRole]]:
        """Triple ids (and slots) where ``noun_phrase`` occurs."""
        return list(self._np_mentions.get(noun_phrase, ()))

    def rp_mentions(self, relation_phrase: str) -> list[str]:
        """Triple ids where ``relation_phrase`` is the predicate."""
        return list(self._rp_mentions.get(relation_phrase, ()))

    def np_frequency(self, noun_phrase: str) -> int:
        """Number of mentions of an NP across the OKB."""
        return len(self._np_mentions.get(noun_phrase, ()))

    def rp_frequency(self, relation_phrase: str) -> int:
        """Number of mentions of an RP across the OKB."""
        return len(self._rp_mentions.get(relation_phrase, ()))

    # ------------------------------------------------------------------
    # Derived statistics
    # ------------------------------------------------------------------
    @property
    def np_idf(self) -> IdfStatistics:
        """IDF statistics over the distinct NP vocabulary."""
        return self._np_idf

    @property
    def rp_idf(self) -> IdfStatistics:
        """IDF statistics over the distinct RP vocabulary."""
        return self._rp_idf

    def attributes(self, noun_phrase: str) -> frozenset[tuple[str, str]]:
        """Attribute set of an NP: the (RP, other-NP) pairs it occurs with.

        This is the notion of "attribute" in the Attribute Overlap
        baseline of Galárraga et al. (2014).
        """
        return frozenset(self._attributes.get(noun_phrase, frozenset()))

    def np_pairs_of_rp(self, relation_phrase: str) -> set[tuple[str, str]]:
        """The (subject, object) NP pairs a relation phrase connects.

        This is the "support set" used by PATTY and the distant
        supervision in :mod:`repro.kbp`.
        """
        pairs: set[tuple[str, str]] = set()
        for triple_id in self._rp_mentions.get(relation_phrase, ()):
            triple = self._by_id[triple_id]
            pairs.add((triple.subject_norm, triple.object_norm))
        return pairs

    # ------------------------------------------------------------------
    # Persistence (repro.persist)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """JSON-safe snapshot: the triples in insertion order.

        Every index (mention lists, attribute sets, IDF tables) is a
        deterministic function of the insertion-ordered triple stream,
        so :meth:`from_state` restores an *identical* store by replaying
        the stream through :meth:`extend` — no derived state travels.
        """
        return {"triples": [triple.to_record() for triple in self._triples]}

    @classmethod
    def from_state(cls, payload: dict) -> OpenKB:
        """Inverse of :meth:`to_state`."""
        return cls(OIETriple.from_record(record) for record in payload["triples"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OpenKB(triples={len(self._triples)}, "
            f"nps={len(self._np_mentions)}, rps={len(self._rp_mentions)})"
        )
