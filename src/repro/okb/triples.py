"""OIE triple data model.

A triple ``t_i = <s_i, p_i, o_i>`` is the unit of an OKB (Section 2).
Gold annotations (which entity each NP refers to, which relation the RP
expresses) are carried alongside but are *never* consumed by models —
only by dataset splits and evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.strings.tokenize import normalize_text


@dataclass(frozen=True)
class TripleGold:
    """Gold annotations of one OIE triple against a curated KB.

    Attributes
    ----------
    subject_entity / object_entity:
        CKB entity identifiers the subject/object NP refers to, or
        ``None`` when unannotated (the NYTimes2018 case).
    relation:
        CKB relation identifier expressed by the RP, or ``None``.
    """

    subject_entity: str | None = None
    relation: str | None = None
    object_entity: str | None = None


@dataclass(frozen=True)
class OIETriple:
    """One Open IE extraction ``<subject, predicate, object>``.

    Attributes
    ----------
    triple_id:
        Unique identifier within a dataset.
    subject / predicate / object:
        Raw surface strings as extracted.
    source_sentence:
        The sentence the triple was extracted from, when available
        (consumed by the SIST-like baseline, which uses source-text side
        information).
    gold:
        Gold annotations, or ``None`` when the triple is unannotated.
    """

    triple_id: str
    subject: str
    predicate: str
    object: str
    source_sentence: str | None = None
    gold: TripleGold | None = field(default=None, compare=False)

    @property
    def subject_norm(self) -> str:
        """Whitespace/case-normalized subject surface form."""
        return normalize_text(self.subject)

    @property
    def predicate_norm(self) -> str:
        """Whitespace/case-normalized predicate surface form."""
        return normalize_text(self.predicate)

    @property
    def object_norm(self) -> str:
        """Whitespace/case-normalized object surface form."""
        return normalize_text(self.object)

    def as_tuple(self) -> tuple[str, str, str]:
        """The normalized ``(subject, predicate, object)`` tuple."""
        return (self.subject_norm, self.predicate_norm, self.object_norm)

    # ------------------------------------------------------------------
    # Persistence (shared by datasets/io JSONL and repro.persist)
    # ------------------------------------------------------------------
    def to_record(self) -> dict:
        """JSON-serializable record; optional fields only when present."""
        record = {
            "triple_id": self.triple_id,
            "subject": self.subject,
            "predicate": self.predicate,
            "object": self.object,
        }
        if self.source_sentence is not None:
            record["source_sentence"] = self.source_sentence
        if self.gold is not None:
            record["gold"] = {
                "subject_entity": self.gold.subject_entity,
                "relation": self.gold.relation,
                "object_entity": self.gold.object_entity,
            }
        return record

    @classmethod
    def from_record(cls, record: dict) -> OIETriple:
        """Inverse of :meth:`to_record` (exact round-trip)."""
        gold = None
        if "gold" in record:
            gold_record = record["gold"]
            gold = TripleGold(
                subject_entity=gold_record.get("subject_entity"),
                relation=gold_record.get("relation"),
                object_entity=gold_record.get("object_entity"),
            )
        return cls(
            triple_id=record["triple_id"],
            subject=record["subject"],
            predicate=record["predicate"],
            object=record["object"],
            source_sentence=record.get("source_sentence"),
            gold=gold,
        )
