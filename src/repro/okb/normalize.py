"""Morphological normalization (the Morph Norm baseline, Fader et al. 2011).

The paper uses morphological normalization twice:

* as the weakest canonicalization baseline (Table 1, "Morph Norm"), and
* to normalize OIE triples before feeding them to AMIE (§3.1.4).

The rules below are the classic ReVerb ones: lowercase, drop determiners
and auxiliary verbs, strip plural/tense suffixes, collapse inflected verb
forms.  They are deliberately rule-based (no lexicon) so they behave the
same on synthetic and real phrases.
"""

from __future__ import annotations

from repro.strings.tokenize import tokenize

#: Determiners and articles dropped from phrases.
_DETERMINERS = frozenset({"a", "an", "the", "this", "that", "these", "those"})

#: Auxiliary / copular verbs dropped from relation phrases.
_AUXILIARIES = frozenset(
    {
        "be",
        "am",
        "is",
        "are",
        "was",
        "were",
        "been",
        "being",
        "do",
        "does",
        "did",
        "have",
        "has",
        "had",
        "will",
        "would",
        "can",
        "could",
        "shall",
        "should",
        "may",
        "might",
        "must",
    }
)

#: Irregular verb forms mapped to their lemma (small closed set; enough
#: for the relation-phrase vocabulary the generators emit).
_IRREGULAR = {
    "went": "go",
    "gone": "go",
    "goes": "go",
    "made": "make",
    "makes": "make",
    "took": "take",
    "taken": "take",
    "takes": "take",
    "got": "get",
    "gotten": "get",
    "gets": "get",
    "held": "hold",
    "holds": "hold",
    "led": "lead",
    "leads": "lead",
    "ran": "run",
    "runs": "run",
    "won": "win",
    "wins": "win",
    # NOTE: "found" is deliberately NOT mapped to "find": conflating
    # found-(establish) with the past tense of find merges unrelated
    # relation phrases ("found the company" vs "find the treasure").
    "finds": "find",
    "founded": "found",
    "founds": "found",
    "left": "leave",
    "leaves": "leave",
    "grew": "grow",
    "grown": "grow",
    "grows": "grow",
    "knew": "know",
    "known": "know",
    "knows": "know",
    "wrote": "write",
    "written": "write",
    "writes": "write",
    "sold": "sell",
    "sells": "sell",
    "bought": "buy",
    "buys": "buy",
    "built": "build",
    "builds": "build",
    "brought": "bring",
    "brings": "bring",
    "taught": "teach",
    "teaches": "teach",
}


def _strip_suffix(token: str) -> str:
    """Heuristic suffix stripping for regular inflections."""
    if token in _IRREGULAR:
        return _IRREGULAR[token]
    if len(token) > 4 and token.endswith("ies"):
        return token[:-3] + "y"
    if len(token) > 4 and token.endswith("ing"):
        stem = token[:-3]
        # "running" -> "run": undo consonant doubling.
        if len(stem) >= 3 and stem[-1] == stem[-2] and stem[-1] not in "aeioulsz":
            stem = stem[:-1]
        return stem + "e" if _needs_final_e(stem) else stem
    if len(token) > 3 and token.endswith("ed"):
        stem = token[:-2]
        if len(stem) >= 3 and stem[-1] == stem[-2] and stem[-1] not in "aeioulsz":
            stem = stem[:-1]
        elif stem.endswith("i"):
            stem = stem[:-1] + "y"
        return stem + "e" if _needs_final_e(stem) else stem
    if len(token) > 3 and token.endswith("es") and token[-3] in "sxzh":
        return token[:-2]
    if len(token) > 3 and token.endswith("s") and not token.endswith("ss"):
        return token[:-1]
    return token


def _needs_final_e(stem: str) -> bool:
    """Whether a stripped stem likely lost a trailing 'e' ("locat" -> "locate")."""
    if len(stem) < 3:
        return False
    # Consonant + single vowel + consonant typically doubles instead of
    # using 'e'; 'e' restoration targets stems ending consonant+consonant
    # like "locat", "creat", "pric".
    return stem.endswith(("at", "iv", "uc", "ic", "as", "os", "us", "ag", "iz"))


def morph_normalize_tokens(text: str, drop_auxiliaries: bool = True) -> list[str]:
    """Normalize ``text`` to a list of lemma-ish tokens.

    Determiners are always dropped; auxiliaries only when
    ``drop_auxiliaries`` (relation phrases keep a bare copula meaningful:
    "be a member of" -> ["member", "of"]).  If dropping removes every
    token, the original token list is kept so phrases never normalize to
    nothing.
    """
    tokens = tokenize(text)
    kept = [token for token in tokens if token not in _DETERMINERS]
    if drop_auxiliaries:
        without_aux = [token for token in kept if token not in _AUXILIARIES]
        if without_aux:
            kept = without_aux
    if not kept:
        kept = tokens
    return [_strip_suffix(token) for token in kept]


def morph_normalize(text: str, drop_auxiliaries: bool = True) -> str:
    """Morphologically normalized surface form (tokens joined by spaces)."""
    return " ".join(morph_normalize_tokens(text, drop_auxiliaries=drop_auxiliaries))
