"""Open Knowledge Base substrate: OIE triples, store, and normalization.

An OKB is a collection of OIE triples ``<noun phrase, relation phrase,
noun phrase>`` (Section 2 of the paper).  This package provides:

* :class:`OIETriple` — one extraction, optionally with its source
  sentence (used by the SIST baseline) and gold annotations.
* :class:`OpenKB` — the triple store: distinct NP/RP vocabularies,
  per-phrase mention lists, IDF statistics, and attribute sets (used by
  the Attribute Overlap baseline and PATTY).
* :func:`morph_normalize` — the morphological normalization of Fader et
  al. (2011): tense, pluralization, auxiliary verbs, determiners.
"""

from repro.okb.normalize import morph_normalize, morph_normalize_tokens
from repro.okb.store import IngestDelta, OpenKB, PhraseRole
from repro.okb.triples import OIETriple, TripleGold

__all__ = [
    "IngestDelta",
    "OIETriple",
    "OpenKB",
    "PhraseRole",
    "TripleGold",
    "morph_normalize",
    "morph_normalize_tokens",
]
