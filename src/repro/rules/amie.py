"""AMIE-style Horn-rule mining between relation phrases.

Implements the fragment of AMIE (Galárraga et al. 2013) the paper uses:
single-atom implication rules ``p_i(x, y) => p_j(x, y)`` between relation
phrases, scored by

* **support** — number of (x, y) NP pairs satisfying both body and head;
* **standard confidence** — support / #pairs satisfying the body;
* **PCA confidence** — support / #body pairs whose subject x has *some*
  head fact (AMIE's partial-completeness assumption, which avoids
  penalizing rules for missing facts).

Triples are morphologically normalized first (as the paper prescribes),
so "is the capital of" and "be the capital city of" share NP-pair
evidence with their inflected variants.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable
from dataclasses import dataclass

from repro.okb.normalize import morph_normalize
from repro.okb.triples import OIETriple


@dataclass(frozen=True)
class ImplicationRule:
    """A mined rule ``body => head`` with its quality statistics."""

    body: str
    head: str
    support: int
    confidence: float
    pca_confidence: float


@dataclass(frozen=True)
class AmieConfig:
    """Mining thresholds.

    Attributes
    ----------
    min_support:
        Minimum shared (x, y) pairs for a rule to be emitted.
    min_confidence:
        Minimum confidence (standard or PCA per ``use_pca``).
    use_pca:
        Score rules with PCA confidence instead of standard confidence.
    """

    min_support: int = 2
    min_confidence: float = 0.5
    use_pca: bool = True


class AmieMiner:
    """Mines implication rules and answers RP-equivalence queries.

    Parameters
    ----------
    triples:
        OIE triples; predicates and NPs are morphologically normalized
        before mining.
    config:
        Mining thresholds.
    """

    def __init__(
        self, triples: Iterable[OIETriple], config: AmieConfig | None = None
    ) -> None:
        self._config = config or AmieConfig()
        # pairs_by_rp: normalized RP -> set of (subject, object) pairs.
        self._pairs_by_rp: dict[str, set[tuple[str, str]]] = {}
        # subjects_by_rp: normalized RP -> set of subjects (for PCA).
        self._subjects_by_rp: dict[str, set[str]] = {}
        # Map original RP surface -> normalized mining key.
        self._norm_of: dict[str, str] = {}
        self._rules: dict[tuple[str, str], ImplicationRule] = {}
        self._index(triples)
        self._mine()

    def _index(self, triples: Iterable[OIETriple]) -> frozenset[str]:
        """Fold triples into the evidence maps; return the changed keys.

        A mining key "changes" when its (subject, object) pair set or
        its subject set actually grows — re-indexing an already-known
        pair leaves every rule statistic untouched.
        """
        changed: set[str] = set()
        for triple in triples:
            predicate = triple.predicate_norm
            key = morph_normalize(predicate)
            self._norm_of[predicate] = key
            subject = morph_normalize(triple.subject_norm, drop_auxiliaries=False)
            obj = morph_normalize(triple.object_norm, drop_auxiliaries=False)
            pairs = self._pairs_by_rp.setdefault(key, set())
            subjects = self._subjects_by_rp.setdefault(key, set())
            before = len(pairs) + len(subjects)
            pairs.add((subject, obj))
            subjects.add(subject)
            if len(pairs) + len(subjects) != before:
                changed.add(key)
        return frozenset(changed)

    def extend(self, triples: Iterable[OIETriple]) -> frozenset[str]:
        """Incrementally absorb new triples, re-mining only what changed.

        Updates the per-RP evidence (pair and subject sets) in place and
        re-scores only the rules with a changed endpoint — support and
        both confidences of every other rule are provably unchanged, so
        the miner is left *exactly* as if it had been rebuilt from the
        union (the ingest-equals-batch guarantee the incremental engine
        relies on), at O(changed x RPs) instead of O(RPs^2) cost.

        Returns the normalized mining keys whose evidence changed.
        """
        changed = self._index(triples)
        if changed:
            self._mine(restrict=changed)
        return changed

    def _mine(self, restrict: frozenset[str] | None = None) -> None:
        """(Re-)score implication rules.

        ``restrict`` limits the scan to rules with at least one endpoint
        in the given key set; rule statistics only depend on their two
        endpoints' evidence, so untouched rules need no re-scoring.
        Support is monotone under evidence growth, hence no rule ever
        needs retracting.
        """
        keys = sorted(self._pairs_by_rp)
        for body, head in itertools.permutations(keys, 2):
            if restrict is not None and body not in restrict and head not in restrict:
                continue
            body_pairs = self._pairs_by_rp[body]
            head_pairs = self._pairs_by_rp[head]
            support = len(body_pairs & head_pairs)
            if support < self._config.min_support:
                continue
            confidence = support / len(body_pairs)
            head_subjects = self._subjects_by_rp[head]
            pca_body = sum(
                1 for subject, _obj in body_pairs if subject in head_subjects
            )
            pca_confidence = support / pca_body if pca_body else 0.0
            self._rules[(body, head)] = ImplicationRule(
                body=body,
                head=head,
                support=support,
                confidence=confidence,
                pca_confidence=pca_confidence,
            )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def config(self) -> AmieConfig:
        """The mining configuration this miner was built with."""
        return self._config

    @property
    def rules(self) -> list[ImplicationRule]:
        """All mined rules meeting the support threshold."""
        return sorted(
            self._rules.values(), key=lambda rule: (-rule.support, rule.body, rule.head)
        )

    def _key(self, relation_phrase: str) -> str:
        normalized = relation_phrase.strip().lower()
        return self._norm_of.get(normalized, morph_normalize(normalized))

    def _passes(self, rule: ImplicationRule | None) -> bool:
        if rule is None:
            return False
        score = rule.pca_confidence if self._config.use_pca else rule.confidence
        return score >= self._config.min_confidence

    def implies(self, body: str, head: str) -> bool:
        """Whether rule ``body => head`` meets support and confidence."""
        key_body = self._key(body)
        key_head = self._key(head)
        if key_body == key_head:
            return True
        return self._passes(self._rules.get((key_body, key_head)))

    def equivalent(self, first: str, second: str) -> bool:
        """``Sim_AMIE``: both implication directions hold (Section 3.1.4)."""
        return self.implies(first, second) and self.implies(second, first)

    def similarity(self, first: str, second: str) -> float:
        """``Sim_AMIE`` as the paper's 0/1 score."""
        return 1.0 if self.equivalent(first, second) else 0.0

    # ------------------------------------------------------------------
    # Persistence (repro.persist)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """JSON-safe snapshot of config, evidence maps and mined rules.

        Restoring via :meth:`from_state` skips re-mining entirely — the
        O(RPs^2) rule scan is the expensive part of a cold side-info
        build, and its output travels with the checkpoint.
        """
        return {
            "config": {
                "min_support": self._config.min_support,
                "min_confidence": self._config.min_confidence,
                "use_pca": self._config.use_pca,
            },
            "pairs_by_rp": {
                key: sorted(list(pair) for pair in pairs)
                for key, pairs in sorted(self._pairs_by_rp.items())
            },
            "subjects_by_rp": {
                key: sorted(subjects)
                for key, subjects in sorted(self._subjects_by_rp.items())
            },
            "norm_of": dict(sorted(self._norm_of.items())),
            "rules": [
                [
                    rule.body,
                    rule.head,
                    rule.support,
                    rule.confidence,
                    rule.pca_confidence,
                ]
                for (_body, _head), rule in sorted(self._rules.items())
            ],
        }

    @classmethod
    def from_state(cls, payload: dict) -> AmieMiner:
        """Inverse of :meth:`to_state` (no re-mining)."""
        config_payload = payload["config"]
        miner = cls(
            (),
            AmieConfig(
                min_support=int(config_payload["min_support"]),
                min_confidence=float(config_payload["min_confidence"]),
                use_pca=bool(config_payload["use_pca"]),
            ),
        )
        miner._pairs_by_rp = {
            key: {(pair[0], pair[1]) for pair in pairs}
            for key, pairs in payload["pairs_by_rp"].items()
        }
        miner._subjects_by_rp = {
            key: set(subjects)
            for key, subjects in payload["subjects_by_rp"].items()
        }
        miner._norm_of = dict(payload["norm_of"])
        miner._rules = {
            (row[0], row[1]): ImplicationRule(
                body=row[0],
                head=row[1],
                support=int(row[2]),
                confidence=float(row[3]),
                pca_confidence=float(row[4]),
            )
            for row in payload["rules"]
        }
        return miner

    def covered_phrases(self) -> frozenset[str]:
        """Normalized RPs participating in at least one passing rule.

        The paper notes AMIE "only covers very few RPs" because most RPs
        fall below the support threshold — this accessor lets the
        benchmarks report that coverage.
        """
        covered: set[str] = set()
        for (body, head), rule in self._rules.items():
            if self._passes(rule):
                covered.add(body)
                covered.add(head)
        return frozenset(covered)
