"""Rule-mining substrate (the paper's AMIE role).

Section 3.1.4: AMIE mines Horn rules ``p_i(x, y) => p_j(x, y)`` over
morphologically normalized OIE triples; two RPs are equivalent when both
directions satisfy support and confidence thresholds.
"""

from repro.rules.amie import AmieConfig, AmieMiner, ImplicationRule

__all__ = ["AmieConfig", "AmieMiner", "ImplicationRule"]
