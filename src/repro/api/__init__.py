"""The public, service-grade surface of the JOCL reproduction.

This package is what applications should import.  It wraps the
framework internals (:mod:`repro.core`) behind a long-lived
:class:`JOCLEngine` with

* fluent builder construction (:meth:`JOCLEngine.builder`),
* incremental OKB ingest (:meth:`JOCLEngine.ingest`),
* batch inference returning typed, schema-versioned, JSON-serializable
  results (:meth:`JOCLEngine.run_joint` and friends), executed on a
  pluggable :mod:`repro.runtime` (:meth:`EngineBuilder.with_runtime`)
  and profiled per run (:class:`ExecutionProfile`),
* serving-time queries — single-mention :meth:`JOCLEngine.resolve` and
  request-batched :meth:`JOCLEngine.resolve_many`,
* weight learning and JSON-safe weight export
  (:meth:`JOCLEngine.fit` / :meth:`JOCLEngine.export_weights`),

plus the dedicated exception hierarchy of :mod:`repro.api.errors`.
The legacy :class:`repro.pipeline.JOCLPipeline` remains as a thin
benchmark-oriented adapter over the engine.
"""

from repro.api import errors
from repro.api.engine import EngineBuilder, JOCLEngine
from repro.api.errors import (
    CheckpointError,
    EngineBuildError,
    EngineStateError,
    IngestError,
    InvalidRequestError,
    JOCLAPIError,
    SchemaError,
    SchemaVersionError,
    TrainingError,
    UnknownMentionError,
)
from repro.api.results import (
    SCHEMA_VERSION,
    CanonicalizationResult,
    EngineReport,
    EngineStats,
    ExecutionProfile,
    LinkingResult,
    ResolveResult,
)

__all__ = [
    "SCHEMA_VERSION",
    "CanonicalizationResult",
    "CheckpointError",
    "EngineBuildError",
    "EngineBuilder",
    "EngineReport",
    "EngineStateError",
    "EngineStats",
    "ExecutionProfile",
    "IngestError",
    "InvalidRequestError",
    "JOCLAPIError",
    "JOCLEngine",
    "LinkingResult",
    "ResolveResult",
    "SchemaError",
    "SchemaVersionError",
    "TrainingError",
    "UnknownMentionError",
    "errors",
]
