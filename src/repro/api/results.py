"""Typed request/response dataclasses of the engine API.

Every result the engine returns is a frozen dataclass with a
schema-versioned ``to_dict()`` / ``from_dict()`` pair, so results can
cross a process boundary as plain JSON and be reconstructed losslessly
on the other side:

* :class:`CanonicalizationResult` — the decoded clusterings per slot
  kind (subjects "S", predicates "P", objects "O");
* :class:`LinkingResult` — the decoded phrase -> CKB-identifier maps
  per slot kind (``None`` = NIL);
* :class:`EngineStats` — OKB size and run provenance;
* :class:`ExecutionProfile` — how the inference executed (runtime
  name, components, per-component iterations, wall time, workers);
* :class:`EngineReport` — the full ``run_joint`` response, nesting the
  above (the profile is carried but excluded from the default
  ``to_dict()`` payload: wall times are not deterministic, and the
  report payload is promised to be runtime-independent);
* :class:`ResolveResult` — the single-mention serving-time answer.

``from_dict`` validates the envelope (``schema_version`` and ``type``
discriminator) and raises :class:`repro.api.errors.SchemaVersionError`
/ :class:`repro.api.errors.SchemaError` rather than producing a
half-parsed object.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any

from repro.api.errors import SchemaError, SchemaVersionError
from repro.clustering.clusters import Clustering
from repro.core.inference import JOCLOutput

#: Version of the wire format produced by every ``to_dict`` below.
#: Bump on any backward-incompatible payload change.
SCHEMA_VERSION = 1


def check_envelope(payload: object, expected_type: str) -> Mapping:
    """Validate the common payload envelope; return the payload mapping.

    Raises :class:`SchemaError` when the payload is not a mapping or is
    of the wrong result type, :class:`SchemaVersionError` when the
    declared schema version is not the one this build writes.
    """
    if not isinstance(payload, Mapping):
        raise SchemaError(
            f"expected a mapping payload, got {type(payload).__name__}"
        )
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise SchemaVersionError(version, SCHEMA_VERSION)
    found_type = payload.get("type")
    if found_type != expected_type:
        raise SchemaError(
            f"payload type {found_type!r} does not match expected "
            f"{expected_type!r}"
        )
    return payload


def _envelope(type_name: str) -> dict:
    return {"schema_version": SCHEMA_VERSION, "type": type_name}


def _clustering_to_lists(clusters: Clustering) -> list[list[str]]:
    """Deterministic JSON shape: sorted list of sorted member lists."""
    return sorted(sorted(group) for group in clusters.groups)


def _require(payload: Mapping, key: str, type_name: str) -> Any:
    try:
        return payload[key]
    except KeyError:
        raise SchemaError(f"{type_name} payload is missing field {key!r}") from None


@contextmanager
def _parsing(type_name: str) -> Iterator[None]:
    """Context manager translating body-parse failures into SchemaError.

    ``from_dict`` promises to raise :class:`SchemaError` rather than a
    half-parsed object; without this, a malformed body (e.g. an item
    repeated across clusters, a scalar where a mapping belongs) would
    leak the underlying ValueError/TypeError/KeyError/AttributeError.
    """
    try:
        yield
    except SchemaError:
        raise
    except (TypeError, ValueError, KeyError, AttributeError) as error:
        raise SchemaError(f"malformed {type_name} payload: {error}") from error


@dataclass(frozen=True)
class CanonicalizationResult:
    """Decoded canonicalization groups for every slot kind."""

    TYPE = "canonicalization_result"

    #: Slot kind ("S" / "P" / "O") -> clustering of its surface forms.
    clusters: dict[str, Clustering]
    #: LBP iterations the decoding was based on.
    iterations: int = 0
    #: Whether LBP message passing converged within the iteration cap.
    converged: bool = False

    # Convenience accessors matching the paper's task names ------------
    @property
    def np_clusters(self) -> Clustering:
        """Subject-NP canonicalization groups (the Table 1 task)."""
        return self.clusters["S"]

    @property
    def rp_clusters(self) -> Clustering:
        """RP canonicalization groups (the Table 2 task)."""
        return self.clusters["P"]

    @property
    def object_clusters(self) -> Clustering:
        """Object-NP canonicalization groups."""
        return self.clusters["O"]

    def to_dict(self) -> dict:
        payload = _envelope(self.TYPE)
        payload["iterations"] = self.iterations
        payload["converged"] = self.converged
        payload["clusters"] = {
            kind: _clustering_to_lists(clusters)
            for kind, clusters in self.clusters.items()
        }
        return payload

    @classmethod
    def from_dict(cls, payload: object) -> CanonicalizationResult:
        payload = check_envelope(payload, cls.TYPE)
        raw = _require(payload, "clusters", cls.TYPE)
        with _parsing(cls.TYPE):
            return cls(
                clusters={kind: Clustering(groups) for kind, groups in raw.items()},
                iterations=int(payload.get("iterations", 0)),
                converged=bool(payload.get("converged", False)),
            )


@dataclass(frozen=True)
class LinkingResult:
    """Decoded phrase -> CKB-identifier maps for every slot kind."""

    TYPE = "linking_result"

    #: Slot kind -> {surface form -> CKB id or None (NIL)}.
    links: dict[str, dict[str, str | None]]
    iterations: int = 0
    converged: bool = False

    # Convenience accessors matching the paper's task names ------------
    @property
    def entity_links(self) -> dict[str, str | None]:
        """Subject NP -> entity id (the Table 3 task)."""
        return self.links["S"]

    @property
    def relation_links(self) -> dict[str, str | None]:
        """RP -> relation id (the Figure 3 task)."""
        return self.links["P"]

    @property
    def object_links(self) -> dict[str, str | None]:
        """Object NP -> entity id."""
        return self.links["O"]

    def to_dict(self) -> dict:
        payload = _envelope(self.TYPE)
        payload["iterations"] = self.iterations
        payload["converged"] = self.converged
        payload["links"] = {
            kind: dict(sorted(mapping.items()))
            for kind, mapping in self.links.items()
        }
        return payload

    @classmethod
    def from_dict(cls, payload: object) -> LinkingResult:
        payload = check_envelope(payload, cls.TYPE)
        raw = _require(payload, "links", cls.TYPE)
        with _parsing(cls.TYPE):
            return cls(
                links={kind: dict(mapping) for kind, mapping in raw.items()},
                iterations=int(payload.get("iterations", 0)),
                converged=bool(payload.get("converged", False)),
            )


@dataclass(frozen=True)
class EngineStats:
    """Size and provenance of one engine inference run."""

    TYPE = "engine_stats"

    n_triples: int = 0
    n_noun_phrases: int = 0
    n_relation_phrases: int = 0
    #: Number of ``ingest`` batches the OKB grew through (0 = all
    #: triples arrived at build time).
    n_ingests: int = 0
    #: Whether learned template weights were active during inference.
    trained: bool = False

    def to_dict(self) -> dict:
        payload = _envelope(self.TYPE)
        payload.update(
            n_triples=self.n_triples,
            n_noun_phrases=self.n_noun_phrases,
            n_relation_phrases=self.n_relation_phrases,
            n_ingests=self.n_ingests,
            trained=self.trained,
        )
        return payload

    @classmethod
    def from_dict(cls, payload: object) -> EngineStats:
        payload = check_envelope(payload, cls.TYPE)
        with _parsing(cls.TYPE):
            return cls(
                n_triples=int(payload.get("n_triples", 0)),
                n_noun_phrases=int(payload.get("n_noun_phrases", 0)),
                n_relation_phrases=int(payload.get("n_relation_phrases", 0)),
                n_ingests=int(payload.get("n_ingests", 0)),
                trained=bool(payload.get("trained", False)),
            )


@dataclass(frozen=True)
class ExecutionProfile:
    """How one inference run executed (the runtime's telemetry).

    Produced by every :class:`repro.runtime.InferenceRuntime`; attached
    to :class:`EngineReport` and available from
    :meth:`repro.api.engine.JOCLEngine.last_profile`.  ``wall_time_s``
    covers plan + execute (graph segmentation and all LBP passes).
    """

    TYPE = "execution_profile"

    #: Runtime identifier ("serial", "partitioned", "parallel", ...).
    runtime: str
    #: Number of independent work units the plan produced.
    n_components: int = 1
    #: Variables per component, in plan (largest-first) order.
    component_sizes: tuple[int, ...] = ()
    #: LBP iterations each component ran, in plan order.
    component_iterations: tuple[int, ...] = ()
    #: Merged iteration count (the slowest component).
    iterations: int = 0
    #: Whether every component converged within the iteration cap.
    converged: bool = False
    #: Wall-clock seconds for plan + execute.
    wall_time_s: float = 0.0
    #: Worker-pool size the runtime was configured with.
    max_workers: int = 1
    #: Pool backend the runtime fans out on ("thread" / "process";
    #: ``None`` for in-thread runtimes).  Degradation is reflected once
    #: a pool has actually been started (a ParallelRuntime configured
    #: for processes on a host that cannot spawn them reports "thread");
    #: single-unit plans execute inline whatever this says — check
    #: ``n_components`` for that.
    backend: str | None = None
    #: Components spliced from a previous run's converged state without
    #: re-running LBP (always 0 for the stateless runtimes; > 0 is the
    #: observable win of :class:`repro.runtime.IncrementalRuntime`).
    #: Reused entries in ``component_iterations`` report the iteration
    #: count of the run that originally computed them.
    reused_components: int = 0
    #: Components that actually ran LBP in this call
    #: (``reused_components + recomputed_components == n_components``).
    recomputed_components: int = 0

    def to_dict(self) -> dict:
        payload = _envelope(self.TYPE)
        payload.update(
            runtime=self.runtime,
            n_components=self.n_components,
            component_sizes=list(self.component_sizes),
            component_iterations=list(self.component_iterations),
            iterations=self.iterations,
            converged=self.converged,
            wall_time_s=self.wall_time_s,
            max_workers=self.max_workers,
            backend=self.backend,
            reused_components=self.reused_components,
            recomputed_components=self.recomputed_components,
        )
        return payload

    @classmethod
    def from_dict(cls, payload: object) -> ExecutionProfile:
        payload = check_envelope(payload, cls.TYPE)
        with _parsing(cls.TYPE):
            return cls(
                runtime=str(_require(payload, "runtime", cls.TYPE)),
                n_components=int(payload.get("n_components", 1)),
                component_sizes=tuple(
                    int(size) for size in payload.get("component_sizes", ())
                ),
                component_iterations=tuple(
                    int(count) for count in payload.get("component_iterations", ())
                ),
                iterations=int(payload.get("iterations", 0)),
                converged=bool(payload.get("converged", False)),
                wall_time_s=float(payload.get("wall_time_s", 0.0)),
                max_workers=int(payload.get("max_workers", 1)),
                backend=(
                    str(payload["backend"])
                    if payload.get("backend") is not None
                    else None
                ),
                reused_components=int(payload.get("reused_components", 0)),
                # Payloads written before the incremental runtime carry
                # no split; back-fill "everything was recomputed".
                recomputed_components=int(
                    payload.get(
                        "recomputed_components",
                        int(payload.get("n_components", 1))
                        - int(payload.get("reused_components", 0)),
                    )
                ),
            )


@dataclass(frozen=True)
class EngineReport:
    """The full response of :meth:`repro.api.engine.JOCLEngine.run_joint`.

    ``profile`` carries the runtime's :class:`ExecutionProfile`.  It is
    excluded from equality and from the default ``to_dict()`` payload:
    the report body is promised to be identical whichever runtime
    executed the inference, while wall times never are.  Serialize it
    with ``to_dict(include_profile=True)`` when the telemetry should
    travel with the report.
    """

    TYPE = "engine_report"

    canonicalization: CanonicalizationResult
    linking: LinkingResult
    stats: EngineStats = field(default_factory=EngineStats)
    profile: ExecutionProfile | None = field(default=None, compare=False)

    @property
    def iterations(self) -> int:
        return self.canonicalization.iterations

    @property
    def converged(self) -> bool:
        return self.canonicalization.converged

    def as_output(self) -> JOCLOutput:
        """Reconstruct the core :class:`JOCLOutput` for metric code."""
        return JOCLOutput(
            clusters=dict(self.canonicalization.clusters),
            links={kind: dict(links) for kind, links in self.linking.links.items()},
            iterations=self.iterations,
            converged=self.converged,
        )

    @classmethod
    def from_output(
        cls,
        output: JOCLOutput,
        stats: EngineStats | None = None,
        profile: ExecutionProfile | None = None,
    ) -> EngineReport:
        """Wrap a core :class:`JOCLOutput` into the API response shape."""
        return cls(
            canonicalization=CanonicalizationResult(
                clusters=dict(output.clusters),
                iterations=output.iterations,
                converged=output.converged,
            ),
            linking=LinkingResult(
                links={kind: dict(links) for kind, links in output.links.items()},
                iterations=output.iterations,
                converged=output.converged,
            ),
            stats=stats or EngineStats(),
            profile=profile if profile is not None else output.profile,
        )

    def to_dict(self, include_profile: bool = False) -> dict:
        payload = _envelope(self.TYPE)
        payload["canonicalization"] = self.canonicalization.to_dict()
        payload["linking"] = self.linking.to_dict()
        payload["stats"] = self.stats.to_dict()
        if include_profile and self.profile is not None:
            payload["profile"] = self.profile.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: object) -> EngineReport:
        payload = check_envelope(payload, cls.TYPE)
        with _parsing(cls.TYPE):
            raw_profile = payload.get("profile")
            return cls(
                canonicalization=CanonicalizationResult.from_dict(
                    _require(payload, "canonicalization", cls.TYPE)
                ),
                linking=LinkingResult.from_dict(
                    _require(payload, "linking", cls.TYPE)
                ),
                stats=EngineStats.from_dict(_require(payload, "stats", cls.TYPE)),
                profile=(
                    ExecutionProfile.from_dict(raw_profile)
                    if raw_profile is not None
                    else None
                ),
            )


@dataclass(frozen=True)
class ResolveResult:
    """Serving-time answer for one mention.

    ``target`` is the CKB identifier the joint model links the mention
    to (``None`` = NIL), ``cluster`` the co-canonical surface forms
    (always including the mention itself), ``candidates`` the ranked
    ``(ckb_id, retrieval_score)`` list the linking variable chose from.
    """

    TYPE = "resolve_result"

    mention: str
    kind: str
    target: str | None
    cluster: tuple[str, ...]
    candidates: tuple[tuple[str, float], ...] = ()

    def to_dict(self) -> dict:
        payload = _envelope(self.TYPE)
        payload.update(
            mention=self.mention,
            kind=self.kind,
            target=self.target,
            cluster=list(self.cluster),
            candidates=[
                {"id": ckb_id, "score": score} for ckb_id, score in self.candidates
            ],
        )
        return payload

    @classmethod
    def from_dict(cls, payload: object) -> ResolveResult:
        payload = check_envelope(payload, cls.TYPE)
        with _parsing(cls.TYPE):
            return cls(
                mention=_require(payload, "mention", cls.TYPE),
                kind=_require(payload, "kind", cls.TYPE),
                target=payload.get("target"),
                cluster=tuple(_require(payload, "cluster", cls.TYPE)),
                candidates=tuple(
                    (entry["id"], float(entry["score"]))
                    for entry in payload.get("candidates", ())
                ),
            )
