"""The :class:`JOCLEngine`: a long-lived, service-grade JOCL instance.

Where :class:`repro.core.model.JOCL` is a stateless facade over one
factor-graph build and :class:`repro.pipeline.JOCLPipeline` is bound to
a benchmark dataset, the engine is the deployment surface: it *owns*
the curated KB, the configuration, the learned template weights and all
cached side information across calls, and exposes

* :meth:`JOCLEngine.ingest` — incremental OKB growth: the typed
  :class:`~repro.okb.store.IngestDelta` drives in-place extension of
  the OKB-derived state (AMIE rules, KBP supervision), targeted
  feature-table invalidation, and — with
  :class:`~repro.runtime.IncrementalRuntime` — re-inference of only
  the dirty factor-graph components, while every CKB-derived resource
  (candidate indexes, anchors, embeddings, paraphrases) stays warm;
* :meth:`JOCLEngine.run_joint` / :meth:`JOCLEngine.canonicalize` /
  :meth:`JOCLEngine.link` — batch inference returning the typed,
  JSON-serializable results of :mod:`repro.api.results`, executed on
  the pluggable :mod:`repro.runtime` selected via
  :meth:`EngineBuilder.with_runtime` (profiled in
  :meth:`JOCLEngine.last_profile`);
* :meth:`JOCLEngine.resolve` — a single-mention serving-time query —
  and :meth:`JOCLEngine.resolve_many`, its request-batched equivalent
  that amortizes decoding and index lookups across the batch;
* :meth:`JOCLEngine.fit` — weight learning from gold annotations;
* :meth:`JOCLEngine.export_weights` — JSON-safe weight snapshots that
  :meth:`EngineBuilder.with_trained_weights` restores in another
  process.

Engines are assembled through the fluent builder::

    engine = (
        JOCLEngine.builder()
        .with_ckb(kb)
        .with_config(JOCLConfig(lbp_iterations=20))
        .with_triples(triples)
        .build()
    )
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Iterable, Mapping, Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.api.errors import (
    CheckpointError,
    EngineBuildError,
    EngineStateError,
    IngestError,
    InvalidRequestError,
    TrainingError,
    UnknownMentionError,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (persist is downstream)
    from repro.core.config import FeatureVariant
    from repro.core.signals.base import SignalRegistry
    from repro.factorgraph.learner import LearningHistory
    from repro.persist.store import StateStore
from repro.api.results import (
    CanonicalizationResult,
    EngineReport,
    EngineStats,
    ExecutionProfile,
    LinkingResult,
    ResolveResult,
)
from repro.ckb.anchors import AnchorStatistics
from repro.ckb.candidates import CandidateGenerator
from repro.ckb.kb import CuratedKB
from repro.core.builder import BuildCache
from repro.core.config import JOCLConfig
from repro.core.inference import JOCLOutput
from repro.core.learning import GoldAnnotations
from repro.core.model import JOCL
from repro.core.side_info import SideInformation
from repro.embeddings.base import WordEmbedding
from repro.kbp.categorizer import RelationCategorizer
from repro.okb.normalize import morph_normalize
from repro.okb.store import IngestDelta, OpenKB
from repro.okb.triples import OIETriple
from repro.paraphrase.ppdb import ParaphraseDB
from repro.rules.amie import AmieMiner
from repro.runtime.base import InferenceRuntime
from repro.runtime.serial import SerialRuntime
from repro.strings.tokenize import normalize_text, word_set

#: Friendly aliases accepted wherever a slot kind is expected.  Each
#: maps to the tuple of slots it covers: noun-phrase-flavored aliases
#: span both NP slots, since an NP may occur only as an object.
_KIND_ALIASES = {
    "S": ("S",),
    "P": ("P",),
    "O": ("O",),
    "subject": ("S",),
    "entity": ("S", "O"),
    "np": ("S", "O"),
    "predicate": ("P",),
    "relation": ("P",),
    "rp": ("P",),
    "object": ("O",),
}


def _resolve_kinds(kind: str) -> tuple[str, ...]:
    for key in (kind, kind.upper(), kind.lower()):
        if key in _KIND_ALIASES:
            return _KIND_ALIASES[key]
    raise InvalidRequestError(
        f"unknown slot kind {kind!r}; expected one of "
        f"{sorted(set(_KIND_ALIASES))}"
    )


class EngineBuilder:
    """Fluent assembly of a :class:`JOCLEngine`.

    Every ``with_*`` method returns the builder, so construction chains.
    A CKB is mandatory (via :meth:`with_ckb` or implicitly through
    :meth:`with_side_information`); everything else defaults the way
    :meth:`repro.core.side_info.SideInformation.build` does.
    """

    def __init__(self) -> None:
        self._kb: CuratedKB | None = None
        self._config: JOCLConfig | None = None
        self._triples: list[OIETriple] = []
        self._anchors: AnchorStatistics | None = None
        self._ppdb: ParaphraseDB | None = None
        self._embedding: WordEmbedding | None = None
        self._amie: AmieMiner | None = None
        self._kbp: RelationCategorizer | None = None
        self._registry_factory = None
        self._weights: Mapping[str, Sequence[float] | np.ndarray] | None = None
        self._side: SideInformation | None = None
        self._model: JOCL | None = None
        self._runtime: InferenceRuntime | None = None

    # ------------------------------------------------------------------
    # Core resources
    # ------------------------------------------------------------------
    def with_ckb(self, kb: CuratedKB) -> EngineBuilder:
        """The curated KB the engine links against (required)."""
        self._kb = kb
        return self

    def with_config(self, config: JOCLConfig) -> EngineBuilder:
        """Hyper-parameters; defaults to the paper's constants."""
        self._config = config
        return self

    def with_triples(self, triples: Iterable[OIETriple]) -> EngineBuilder:
        """Seed OIE triples (may be called repeatedly; batches append)."""
        self._triples.extend(triples)
        return self

    def with_signals(
        self,
        registry_factory: Callable[[SideInformation, FeatureVariant], SignalRegistry],
    ) -> EngineBuilder:
        """A ``(side, variant) -> SignalRegistry`` feature-set override."""
        self._registry_factory = registry_factory
        return self

    def with_trained_weights(
        self, weights: Mapping[str, Sequence[float] | np.ndarray]
    ) -> EngineBuilder:
        """Install previously learned template weights.

        Accepts the JSON-safe mapping :meth:`JOCLEngine.export_weights`
        produces (template name -> list of floats) or raw numpy arrays.
        """
        self._weights = weights
        return self

    def with_runtime(self, runtime: InferenceRuntime) -> EngineBuilder:
        """Select how inference executes (see :mod:`repro.runtime`).

        Defaults to :class:`~repro.runtime.SerialRuntime` (whole-graph
        LBP); pass :class:`~repro.runtime.PartitionedRuntime` or
        :class:`~repro.runtime.ParallelRuntime` to exploit the factor
        graph's connected components, or
        :class:`~repro.runtime.IncrementalRuntime` (stateful — one
        engine per instance) to additionally reuse converged components
        across :meth:`JOCLEngine.ingest` cycles.  All shipped runtimes
        share the
        same fixed points; per-component early stopping can shift
        marginals only below the LBP convergence tolerance (see
        :class:`~repro.runtime.PartitionedRuntime`), which the seeded
        equivalence tests pin to identical decisions.
        """
        if not isinstance(runtime, InferenceRuntime):
            raise EngineBuildError(
                f"with_runtime expects an InferenceRuntime, got "
                f"{type(runtime).__name__}"
            )
        self._runtime = runtime
        return self

    # ------------------------------------------------------------------
    # Optional side-information resources
    # ------------------------------------------------------------------
    def with_anchors(self, anchors: AnchorStatistics) -> EngineBuilder:
        """Anchor statistics for the candidate popularity prior."""
        self._anchors = anchors
        return self

    def with_ppdb(self, ppdb: ParaphraseDB) -> EngineBuilder:
        """Paraphrase database consumed by the PPDB signals."""
        self._ppdb = ppdb
        return self

    def with_embedding(self, embedding: WordEmbedding) -> EngineBuilder:
        """Word embedding backing the ``f_emb`` signals."""
        self._embedding = embedding
        return self

    def with_amie(self, amie: AmieMiner) -> EngineBuilder:
        """A pre-mined AMIE rule set (kept verbatim across ingests)."""
        self._amie = amie
        return self

    def with_kbp(self, kbp: RelationCategorizer) -> EngineBuilder:
        """A pre-built KBP categorizer (kept verbatim across ingests)."""
        self._kbp = kbp
        return self

    def with_side_information(self, side: SideInformation) -> EngineBuilder:
        """Adopt a fully assembled side-information bundle.

        Mutually exclusive with the per-resource ``with_*`` methods and
        :meth:`with_triples`: the bundle already fixes the OKB and every
        resource.  Its OKB-derived resources are treated as refreshable
        on ingest.
        """
        self._side = side
        return self

    def with_model(self, model: JOCL) -> EngineBuilder:
        """Adopt an existing core model (back-compat / advanced use).

        The engine will train and infer through *this* instance, so
        weights learned via :meth:`JOCLEngine.fit` become visible on the
        adopted model.  Overrides :meth:`with_config` and
        :meth:`with_signals`.
        """
        self._model = model
        return self

    # ------------------------------------------------------------------
    def build(self) -> JOCLEngine:
        """Validate the configuration and assemble the engine."""
        if self._side is not None:
            conflicts = [
                name
                for name, value in (
                    ("with_ckb", self._kb),
                    ("with_anchors", self._anchors),
                    ("with_ppdb", self._ppdb),
                    ("with_embedding", self._embedding),
                    ("with_amie", self._amie),
                    ("with_kbp", self._kbp),
                )
                if value is not None
            ]
            if self._triples:
                conflicts.append("with_triples")
            if conflicts:
                raise EngineBuildError(
                    "with_side_information fixes every resource; also calling "
                    + ", ".join(conflicts)
                    + " is ambiguous"
                )
        elif self._kb is None:
            raise EngineBuildError(
                "an engine needs a curated KB: call with_ckb(...) or adopt a "
                "bundle via with_side_information(...)"
            )
        config = self._config or JOCLConfig()
        if self._model is not None:
            model = self._model
            config = model.config
        else:
            model = JOCL(config, registry_factory=self._registry_factory)
        if self._weights is not None:
            model.weights = _coerce_weights(self._weights)
        return JOCLEngine(
            kb=self._side.kb if self._side is not None else self._kb,
            config=config,
            model=model,
            triples=self._triples,
            anchors=self._anchors,
            ppdb=self._ppdb,
            embedding=self._embedding,
            amie=self._amie,
            kbp=self._kbp,
            side=self._side,
            runtime=self._runtime,
        )


def _coerce_weights(
    weights: Mapping[str, Sequence[float] | np.ndarray],
) -> dict[str, np.ndarray]:
    if not weights:
        raise EngineBuildError(
            "trained weights mapping is empty; pass the snapshot from "
            "export_weights or omit with_trained_weights entirely"
        )
    coerced: dict[str, np.ndarray] = {}
    for name, values in weights.items():
        array = np.asarray(values, dtype=float)
        if array.ndim != 1 or array.size == 0:
            raise EngineBuildError(
                f"trained weights for template {name!r} must be a non-empty "
                f"1-d vector, got shape {array.shape}"
            )
        coerced[name] = array
    return coerced


class JOCLEngine:
    """A stateful joint canonicalization + linking service.

    Construct through :meth:`JOCLEngine.builder`; see the module
    docstring for the lifecycle.  All inference entry points share one
    cached decoding, so ``canonicalize()`` after ``run_joint()`` (or a
    burst of ``resolve()`` calls) costs a dictionary lookup, not another
    LBP run.
    """

    def __init__(
        self,
        *,
        kb: CuratedKB,
        config: JOCLConfig,
        model: JOCL,
        triples: Iterable[OIETriple] = (),
        anchors: AnchorStatistics | None = None,
        ppdb: ParaphraseDB | None = None,
        embedding: WordEmbedding | None = None,
        amie: AmieMiner | None = None,
        kbp: RelationCategorizer | None = None,
        side: SideInformation | None = None,
        runtime: InferenceRuntime | None = None,
    ) -> None:
        self._kb = kb
        self._config = config
        self._model = model
        self._runtime = runtime or SerialRuntime()
        if side is not None:
            self._okb = side.okb
        else:
            try:
                self._okb = OpenKB(self._validated_batch(triples))
            except (IngestError, ValueError) as error:
                raise EngineBuildError(str(error)) from error
        # CKB-derived resources survive every ingest.  None means "use
        # the defaults of SideInformation.build" — the single source of
        # truth for default resources.
        self._anchors = anchors
        self._embedding = embedding
        self._ppdb = ppdb
        self._candidates: CandidateGenerator | None = (
            side.candidates if side is not None else None
        )
        # OKB-derived resources: extended in place on ingest unless
        # user-pinned (pinned resources are kept verbatim).
        self._custom_amie = amie
        self._custom_kbp = kbp
        self._side = side
        self._output: JOCLOutput | None = None
        self._n_ingests = 0
        # Incremental-ingest bookkeeping.  Triples not yet folded into
        # the side-info bundle's AMIE/KBP state, and the merged typed
        # delta not yet turned into invalidations — both flushed lazily
        # so N ingest batches before the next inference cost one pass.
        self._pending_side_triples: list[OIETriple] = []
        self._pending_delta: IngestDelta | None = None
        # Feature tables memoized across graph rebuilds; sound only for
        # the default signal registry (see BuildCache), whose per-table
        # inputs the delta-to-dirty-phrase mapping covers exactly.
        self._build_cache: BuildCache | None = (
            BuildCache() if model.uses_default_signals else None
        )
        # Morph-normalization memo for the AMIE dirty-key computation.
        self._morph_keys: dict[str, str] = {}
        # Guards every lazy mutation reads can trigger (bundle assembly,
        # delta flushes, the memoized decoding), making concurrent
        # resolve/run_joint calls safe: exactly one thread runs the
        # inference, the rest reuse its decoding.  Reentrant because
        # _decoded -> side_information nests.  Writes (ingest/fit) also
        # take it, but a write concurrent with reads still needs an
        # external session discipline (repro.serving.JOCLService) for
        # coherent before/after semantics.
        self._state_lock = threading.RLock()

    @classmethod
    def builder(cls) -> EngineBuilder:
        """Start a fluent :class:`EngineBuilder` chain."""
        return EngineBuilder()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def config(self) -> JOCLConfig:
        """The engine's immutable hyper-parameter set."""
        return self._config

    @property
    def kb(self) -> CuratedKB:
        """The curated KB the engine links against."""
        return self._kb

    @property
    def okb(self) -> OpenKB:
        """The OKB accumulated so far (build-time triples + ingests)."""
        return self._okb

    @property
    def trained(self) -> bool:
        """Whether learned template weights are active."""
        return self._model.weights is not None

    @property
    def runtime(self) -> InferenceRuntime:
        """The execution runtime inference runs on."""
        return self._runtime

    def last_profile(self) -> ExecutionProfile | None:
        """The :class:`ExecutionProfile` of the most recent inference.

        ``None`` until the first (non-cached) inference ran; invalidated
        together with the decoding cache on :meth:`ingest` / :meth:`fit`.
        """
        # Snapshot the reference once: a concurrent ingest may null the
        # cache between the check and the attribute access (the torn
        # read this method used to race on).
        output = self._output
        return output.profile if output is not None else None

    def stats(self) -> EngineStats:
        """Current OKB size and run provenance."""
        return EngineStats(
            n_triples=len(self._okb),
            n_noun_phrases=len(self._okb.noun_phrases),
            n_relation_phrases=len(self._okb.relation_phrases),
            n_ingests=self._n_ingests,
            trained=self.trained,
        )

    def export_weights(self) -> dict[str, list[float]]:
        """Learned template weights as a JSON-safe mapping.

        Feed the result to :meth:`EngineBuilder.with_trained_weights` to
        reconstruct a trained engine in another process.  Raises
        :class:`EngineStateError` when the engine has never been fitted.
        """
        if self._model.weights is None:
            raise EngineStateError("engine holds no learned weights; call fit first")
        return {
            name: [float(value) for value in weights]
            for name, weights in self._model.weights.items()
        }

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    @staticmethod
    def _validated_batch(triples: Iterable[OIETriple]) -> list[OIETriple]:
        batch = list(triples)
        for triple in batch:
            if not isinstance(triple, OIETriple):
                raise IngestError(
                    f"ingest expects OIETriple instances, got "
                    f"{type(triple).__name__}"
                )
        return batch

    def ingest(self, triples: Iterable[OIETriple]) -> int:
        """Add OIE triples to the engine's OKB incrementally.

        Truly incremental end to end: the OKB indexes grow in place and
        return a typed :class:`~repro.okb.store.IngestDelta`; the
        OKB-derived side information (AMIE rules, KBP distant
        supervision) is *extended* with the batch instead of re-derived
        from the full OKB; the feature-table build cache drops exactly
        the tables whose signal inputs the delta touched; and a
        delta-aware runtime (:class:`repro.runtime.IncrementalRuntime`)
        is told which phrases went dirty so the next inference re-runs
        LBP only on the touched factor-graph components.  Everything
        CKB-derived (candidate indexes, anchors, embeddings, PPDB)
        stays warm.  All of it is decision-identical to rebuilding from
        the union — only the decoding cache is unconditionally dropped.

        The flush is lazy: N ingest batches before the next inference
        cost one invalidation/extension pass, not N.  The batch is
        validated as a whole: on :class:`IngestError` (duplicate triple
        id, non-triple input) no state changes.

        Returns the number of triples added.  Example::

            added = engine.ingest(arrival_batch)
            report = engine.run_joint()   # recomputes only what changed
        """
        batch = self._validated_batch(triples)
        if not batch:
            return 0
        with self._state_lock:
            try:
                delta = self._okb.extend(batch)
            except ValueError as error:
                raise IngestError(str(error)) from error
            self._n_ingests += 1
            self._output = None
            if self._side is not None:
                # A not-yet-built bundle derives from the full OKB anyway.
                self._pending_side_triples.extend(batch)
            self._pending_delta = (
                delta
                if self._pending_delta is None
                else self._pending_delta.merge(delta)
            )
            return len(batch)

    def note_vocabulary_drift(
        self,
        new_noun_phrases: Iterable[str] = (),
        new_relation_phrases: Iterable[str] = (),
    ) -> None:
        """Tell the engine its corpus-global statistics drifted externally.

        A single engine learns about vocabulary growth from its own
        :meth:`ingest` deltas.  In a sharded cluster the IDF tables are
        corpus-*global* (see :meth:`repro.okb.store.OpenKB.adopt_shared_idf`),
        so a phrase entering the cluster at shard B re-weights token
        overlap scores at shard A too — even though shard A ingested
        nothing.  The cluster calls this on every shard after folding
        new vocabulary into the shared tables; the engine folds the
        phrases into its pending delta exactly as if they were its own
        new vocabulary, so the next inference drops the decoding cache,
        invalidates token-sharing feature tables, and (with an
        :class:`~repro.runtime.IncrementalRuntime`) re-runs LBP only on
        the components the drift can actually reach.

        No-op when both iterables are empty.  Example::

            engine.note_vocabulary_drift(
                new_noun_phrases=["acme corp"],
                new_relation_phrases=[],
            )
        """
        delta = IngestDelta(
            new_noun_phrases=tuple(dict.fromkeys(new_noun_phrases)),
            new_relation_phrases=tuple(dict.fromkeys(new_relation_phrases)),
        )
        if not delta.new_noun_phrases and not delta.new_relation_phrases:
            return
        with self._state_lock:
            self._output = None
            self._pending_delta = (
                delta
                if self._pending_delta is None
                else self._pending_delta.merge(delta)
            )

    # ------------------------------------------------------------------
    # Side information / inference plumbing
    # ------------------------------------------------------------------
    def side_information(self) -> SideInformation:
        """The engine's (lazily assembled, cached) side-info bundle."""
        with self._state_lock:
            if self._side is None:
                self._side = SideInformation.build(
                    okb=self._okb,
                    kb=self._kb,
                    anchors=self._anchors,
                    candidates=self._candidates,
                    embedding=self._embedding,
                    ppdb=self._ppdb,
                    amie=self._custom_amie,
                    kbp=self._custom_kbp,
                    max_candidates=self._config.max_candidates,
                )
                # Candidate indexes are CKB-derived: keep them for the
                # engine's lifetime even if the bundle is rebuilt.
                self._candidates = self._side.candidates
                # A fresh bundle already derives from the full OKB.
                self._pending_side_triples.clear()
            elif self._pending_side_triples:
                # Pinned resources are kept verbatim — and skipped
                # entirely, not extended-and-discarded.  Extension is
                # provably equivalent to a rebuild from the union
                # (additive stats).
                self._side.extend_okb_derived(
                    self._pending_side_triples,
                    amie=self._custom_amie is None,
                    kbp=self._custom_kbp is None,
                )
                self._pending_side_triples.clear()
            return self._side

    def _dirty_phrases(self, delta: IngestDelta) -> dict[str, set[str]]:
        """Per-kind phrases whose factor-table inputs the delta changed.

        Covers every OKB-derived input of the default signal set:

        * phrases the batch mentions (their mention lists, AMIE/KBP
          evidence, and pair/link feature rows all may change);
        * IDF drift — phrases sharing a token with a *new* vocabulary
          entry, whose ``f_idf`` scores (and pair admission) may shift
          because the token's corpus frequency grew;
        * AMIE key drift — RPs that morph-normalize onto the same
          mining key as a touched predicate, whose rule evidence grew
          even though their own surface never occurs in the batch.

        Everything else feeding the default signals (CKB, anchors,
        embedding, PPDB, config) is engine-lifetime constant.
        """
        np_dirty = set(delta.touched_noun_phrases)
        rp_dirty = set(delta.touched_relation_phrases)
        new_np_tokens: set[str] = set()
        for phrase in delta.new_noun_phrases:
            new_np_tokens |= word_set(phrase)
        if new_np_tokens:
            for phrase in self._okb.noun_phrases:
                if phrase not in np_dirty and word_set(phrase) & new_np_tokens:
                    np_dirty.add(phrase)
        new_rp_tokens: set[str] = set()
        for phrase in delta.new_relation_phrases:
            new_rp_tokens |= word_set(phrase)
        touched_keys = {
            morph_normalize(phrase) for phrase in delta.touched_relation_phrases
        }
        for phrase in self._okb.relation_phrases:
            if phrase in rp_dirty:
                continue
            if new_rp_tokens and word_set(phrase) & new_rp_tokens:
                rp_dirty.add(phrase)
                continue
            key = self._morph_keys.get(phrase)
            if key is None:
                key = morph_normalize(phrase)
                self._morph_keys[phrase] = key
            if key in touched_keys:
                rp_dirty.add(phrase)
        return {"S": np_dirty, "P": rp_dirty, "O": set(np_dirty)}

    def _flush_delta(self) -> None:
        """Turn accumulated ingest deltas into targeted invalidations."""
        delta = self._pending_delta
        if delta is None:
            return
        self._pending_delta = None
        dirty = self._dirty_phrases(delta)
        if self._build_cache is not None:
            self._build_cache.invalidate(dirty)
        mark_dirty = getattr(self._runtime, "mark_dirty", None)
        if mark_dirty is not None:
            mark_dirty(dirty)

    def _decoded(self) -> JOCLOutput:
        if len(self._okb) == 0:
            raise EngineStateError(
                "the engine's OKB is empty; seed triples at build time or "
                "call ingest before running inference"
            )
        # Fast path without the lock: once computed, the decoding is
        # immutable and shared freely.  The lock closes the double-run
        # race (two concurrent resolves both observing None and both
        # running inference — corrupting stateful runtimes like
        # IncrementalRuntime).
        output = self._output
        if output is not None:
            return output
        with self._state_lock:
            if self._output is None:
                side = self.side_information()
                self._flush_delta()
                try:
                    graph, index, builder = self._model.build_graph(
                        side, cache=self._build_cache
                    )
                except ValueError as error:
                    if self._model.weights:
                        # Typically a weight snapshot whose vectors do
                        # not match this engine's feature set (wrong
                        # variant / signals).
                        message = (
                            f"installed template weights do not fit this "
                            f"engine's factor graph: {error}"
                        )
                    else:
                        message = (
                            f"failed to build the factor graph for this "
                            f"engine's OKB: {error}"
                        )
                    raise EngineStateError(message) from error
                if self._model.weights:
                    unknown = sorted(
                        set(self._model.weights) - set(graph.templates)
                    )
                    if unknown:
                        raise EngineStateError(
                            f"trained weights name unknown templates "
                            f"{unknown}; this graph has "
                            f"{sorted(graph.templates)}"
                        )
                self._output = self._model.infer_built(
                    graph, index, builder, runtime=self._runtime
                )
            return self._output

    # ------------------------------------------------------------------
    # Batch inference
    # ------------------------------------------------------------------
    def run_joint(self) -> EngineReport:
        """Joint canonicalization + linking over the current OKB."""
        output = self._decoded()
        return EngineReport.from_output(output, stats=self.stats())

    def canonicalize(self) -> CanonicalizationResult:
        """Canonicalization groups only (shares the joint decoding)."""
        return self.run_joint().canonicalization

    def link(self) -> LinkingResult:
        """Linking decisions only (shares the joint decoding)."""
        return self.run_joint().linking

    # ------------------------------------------------------------------
    # Serving-time queries
    # ------------------------------------------------------------------
    def _resolve_one(
        self,
        output: JOCLOutput,
        generator: CandidateGenerator,
        mention: str,
        kind: str | None,
    ) -> ResolveResult:
        """Resolve one mention against an already computed decoding."""
        phrase = normalize_text(mention)
        kinds = _resolve_kinds(kind) if kind is not None else ("S", "P", "O")
        found: str | None = None
        for candidate_kind in kinds:
            if phrase in output.clusters.get(candidate_kind, ()):  # Clustering
                found = candidate_kind
                break
        if found is None:
            raise UnknownMentionError(mention, kind)
        cluster = tuple(sorted(output.clusters[found].cluster_of(phrase)))
        if found == "P":
            retrieved = generator.relation_candidates(phrase)
            scored = tuple((c.relation_id, c.score) for c in retrieved)
        else:
            retrieved = generator.entity_candidates(phrase)
            scored = tuple((c.entity_id, c.score) for c in retrieved)
        return ResolveResult(
            mention=phrase,
            kind=found,
            target=output.links[found].get(phrase),
            cluster=cluster,
            candidates=scored,
        )

    def resolve(self, mention: str, kind: str | None = None) -> ResolveResult:
        """Resolve one mention against the current joint decoding.

        ``kind`` may be ``"S"``/``"P"``/``"O"`` or a friendly alias
        (``"subject"``, ``"relation"``, ``"object"``, ...; the
        NP-flavored aliases ``"entity"``/``"np"`` span both the subject
        and object slots); when omitted, the slots are searched in S, P,
        O order.  Raises :class:`UnknownMentionError` when the mention
        does not occur in the OKB (in the requested slots).

        Example::

            answer = engine.resolve("University of Maryland", kind="entity")
            print(answer.target, answer.cluster, answer.candidates)
        """
        return self._resolve_one(
            self._decoded(), self.side_information().candidates, mention, kind
        )

    def resolve_many(
        self, mentions: Iterable[str], kind: str | None = None
    ) -> list[ResolveResult]:
        """Resolve a batch of mentions in one pass.

        Answer-for-answer identical to calling :meth:`resolve` per
        mention, but the joint decoding, the side-information bundle
        and the candidate indexes are looked up once and amortized
        across the whole batch — the serving entry point for
        request-batched traffic.  Raises :class:`UnknownMentionError`
        on the first unknown mention (no partial results escape).
        """
        output = self._decoded()
        generator = self.side_information().candidates
        return [
            self._resolve_one(output, generator, mention, kind)
            for mention in mentions
        ]

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------
    def fit(
        self,
        gold: GoldAnnotations | Iterable[OIETriple],
        side: SideInformation | None = None,
    ) -> LearningHistory:
        """Learn template weights from gold annotations.

        ``gold`` is either phrase-level :class:`GoldAnnotations` or an
        iterable of gold-annotated :class:`OIETriple` (the validation
        split), from which annotations are collected.  ``side``
        optionally supplies a dedicated training OKB (the paper's
        protocol: learn on the validation split, infer on the test
        split); by default the engine trains on its own OKB.

        Learned weights stay on the engine and apply to every subsequent
        inference; the inference cache is invalidated.  Raises
        :class:`TrainingError` when no gold label maps onto the training
        graph.
        """
        if not isinstance(gold, GoldAnnotations):
            gold = GoldAnnotations.from_triples(gold)
        with self._state_lock:
            training_side = side if side is not None else self.side_information()
            try:
                history = self._model.fit(training_side, gold)
            except ValueError as error:
                raise TrainingError(str(error)) from error
            self._output = None
            return history

    # ------------------------------------------------------------------
    # Durability (repro.persist)
    # ------------------------------------------------------------------
    def save(self, store: StateStore) -> str:
        """Checkpoint the engine's full state into ``store``.

        The snapshot covers the OKB, every side-information resource
        (AMIE rule evidence, KBP votes, anchors, IDF statistics, the
        CKB, PPDB and embedding spec), the configuration, learned
        weights, the feature-table build cache and the runtime's state
        — for an :class:`~repro.runtime.IncrementalRuntime`, its cached
        converged components travel too, so the restored engine's first
        inference splices them instead of re-running LBP.  Any ingests
        pending lazy absorption are folded in first; the engine is left
        exactly as if an inference were about to run.

        Returns the snapshot id (pass it to :meth:`load` /
        :meth:`repro.serving.JOCLService.rollback` to pin a version).

        Raises :class:`CheckpointError` when the engine holds state
        without a serialization hook: a custom signal registry, or an
        embedding type without ``to_state``.

        Example::

            store = FileStateStore("checkpoints/")
            snapshot = engine.save(store)   # e.g. "snapshot-000001"
        """
        from repro.persist.state import EngineState, config_to_state

        if not self._model.uses_default_signals:
            raise CheckpointError(
                "engines with a custom signal registry cannot be "
                "checkpointed: the registry closes over arbitrary state "
                "with no serialization hook"
            )
        with self._state_lock:
            side = self.side_information()
            self._flush_delta()
            try:
                side_payload = side.to_state()
            except ValueError as error:
                raise CheckpointError(str(error)) from error
            state = EngineState(
                config=config_to_state(self._config),
                okb=self._okb.to_state(),
                side=side_payload,
                runtime=self._runtime.to_state(),
                weights=(
                    self.export_weights() if self._model.weights else None
                ),
                build_cache=(
                    self._build_cache.to_state()
                    if self._build_cache is not None
                    else None
                ),
                n_ingests=self._n_ingests,
            )
        return store.save_state(state)

    @classmethod
    def load(
        cls,
        store: StateStore,
        snapshot: str | None = None,
        *,
        runtime: InferenceRuntime | None = None,
        embedding: WordEmbedding | None = None,
    ) -> JOCLEngine:
        """Restore an engine from a checkpoint in ``store``.

        The restored engine is decision-identical to the one that called
        :meth:`save` — same OKB, side information, weights and config —
        and *warm*: a restored :class:`~repro.runtime.IncrementalRuntime`
        still holds its converged components, so the first post-restore
        inference splices everything clean and the first
        :meth:`ingest` re-runs LBP only on the components the batch
        dirties.

        ``snapshot`` selects an older snapshot (default: the store's
        current one).  ``runtime`` overrides the serialized runtime —
        required when the checkpoint was saved with a custom runtime
        type this build cannot reconstruct.  ``embedding`` likewise
        overrides the serialized embedding spec.

        Example::

            engine = JOCLEngine.load(store)             # current snapshot
            pinned = JOCLEngine.load(store, "snapshot-000001")
        """
        from repro.persist.state import config_from_state
        from repro.runtime import runtime_from_state

        state = store.load_state(snapshot)
        try:
            config = config_from_state(state.config)
            okb = OpenKB.from_state(state.okb)
            side = SideInformation.from_state(
                state.side, okb=okb, embedding=embedding
            )
            if runtime is None:
                runtime = runtime_from_state(state.runtime)
        except (KeyError, TypeError, ValueError) as error:
            raise CheckpointError(
                f"checkpoint payload could not be restored: {error}"
            ) from error
        model = JOCL(config)
        if state.weights is not None:
            model.weights = _coerce_weights(state.weights)
        engine = cls(
            kb=side.kb,
            config=config,
            model=model,
            side=side,
            runtime=runtime,
        )
        engine._n_ingests = state.n_ingests
        if state.build_cache is not None and engine._build_cache is not None:
            try:
                engine._build_cache = BuildCache.from_state(state.build_cache)
            except (KeyError, TypeError, ValueError) as error:
                raise CheckpointError(
                    f"checkpoint build cache could not be restored: {error}"
                ) from error
        return engine
