"""The exception hierarchy of the public engine API.

Everything :mod:`repro.api` raises deliberately derives from
:class:`JOCLAPIError`, so service wrappers can catch one base class at
the process boundary and map subclasses onto transport-level error
codes (bad request, conflict, not found, ...).  Lower-level ``repro``
internals keep raising plain :class:`ValueError`/:class:`KeyError`;
the engine translates the ones that cross the API surface.
"""

from __future__ import annotations


class JOCLAPIError(Exception):
    """Base class of every error raised by :mod:`repro.api`."""


class InvalidRequestError(JOCLAPIError, ValueError):
    """A request argument is malformed (e.g. an unknown slot kind).

    Also a :class:`ValueError`, so callers treating bad arguments as
    ordinary value errors keep working while service wrappers can catch
    :class:`JOCLAPIError` alone.
    """


class EngineBuildError(JOCLAPIError):
    """The builder was asked to assemble an engine from invalid parts.

    Raised for a missing CKB, conflicting resource specifications, or
    malformed trained weights.
    """


class EngineStateError(JOCLAPIError):
    """An operation requires state the engine does not (yet) have.

    Typical case: calling :meth:`~repro.api.engine.JOCLEngine.run_joint`
    on an engine whose OKB holds no triples.
    """


class IngestError(JOCLAPIError):
    """An ingest batch was rejected; the engine's OKB is unchanged.

    Raised for duplicate triple ids (within the batch or against the
    already-ingested OKB) and for objects that are not
    :class:`~repro.okb.triples.OIETriple` instances.
    """


class TrainingError(JOCLAPIError):
    """``fit`` could not learn from the supplied gold annotations.

    Most commonly: no gold label maps onto the engine's factor graph
    (e.g. a canonicalization-only variant whose admissible pairs carry
    no annotations).
    """


class UnknownMentionError(JOCLAPIError):
    """``resolve`` was asked about a mention the OKB has never seen."""

    def __init__(self, mention: str, kind: str | None = None) -> None:
        self.mention = mention
        self.kind = kind
        where = f" as kind {kind!r}" if kind is not None else ""
        super().__init__(f"mention {mention!r} does not occur in the OKB{where}")


class CheckpointError(JOCLAPIError):
    """A checkpoint could not be captured, stored, or restored.

    Raised by :mod:`repro.persist` stores (empty store, unknown
    snapshot, unreadable layout) and by
    :meth:`~repro.api.engine.JOCLEngine.save` when the engine holds
    state with no serialization hook (custom signal registries, an
    embedding type without ``to_state``).  Structural problems in a
    payload that *was* read raise :class:`SchemaError` /
    :class:`SchemaVersionError` instead.
    """


class SchemaError(JOCLAPIError):
    """A serialized payload is structurally invalid for its result type."""


class SchemaVersionError(SchemaError):
    """A serialized payload carries an unsupported schema version."""

    def __init__(self, found: object, expected: int) -> None:
        self.found = found
        self.expected = expected
        super().__init__(
            f"payload schema_version {found!r} is not supported; this build "
            f"of repro.api reads schema_version {expected}"
        )
