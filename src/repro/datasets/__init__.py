"""Synthetic dataset substrate shaped like the paper's benchmarks.

The paper evaluates on ReVerb45K (ReVerb extractions over ClueWeb09,
gold-annotated against Freebase) and NYTimes2018 (Stanford OIE over
nytimes.com, unannotated; gold sampled and labeled manually).  Neither
corpus nor Freebase is available offline, so this package generates
statistically similar worlds from a seed:

* :class:`~repro.datasets.world.World` — entities with Zipfian alias
  usage, relations with paraphrase sets, typed facts; exports the CKB,
  anchor statistics, paraphrase DB and a training corpus.
* :func:`generate_reverb45k` — fully annotated OKB (every NP has a gold
  entity), moderate noise.
* :func:`generate_nytimes2018` — noisier OKB with out-of-KB phrases and
  *sampled* gold (the manual-labeling protocol of Section 4).
* :func:`generate_sharded_reverb45k` — several independent worlds with
  disjoint relation slices merged into one OKB: the naturally
  decomposable workload the :mod:`repro.runtime` benchmarks exercise.
* :func:`shard_partition` — the sharded stream grouped back into its
  per-world partitions: the natural seed placement for a
  :class:`repro.cluster.ShardedEngine`.
* :func:`generate_streaming_ingest` — the sharded stream split into a
  warm seed OKB plus arrival batches: the incremental-ingest serving
  workload behind ``benchmarks/test_incremental_ingest.py``.
* :class:`~repro.datasets.base.Dataset` — the container benchmarks
  consume: OKB, CKB, side-information resources, validation/test split
  (by gold entity, 20% validation as in Section 4.1) and evaluation
  gold (clusters + links).
"""

from repro.datasets.base import Dataset, EvaluationGold
from repro.datasets.generator import TripleNoiseConfig
from repro.datasets.io import load_triples_jsonl, save_triples_jsonl
from repro.datasets.nytimes2018 import NYTimes2018Config, generate_nytimes2018
from repro.datasets.reverb45k import ReVerb45KConfig, generate_reverb45k
from repro.datasets.sharded import (
    ShardedOKBConfig,
    generate_sharded_reverb45k,
    shard_partition,
)
from repro.datasets.streaming import (
    StreamingIngestConfig,
    StreamingIngestWorkload,
    generate_streaming_ingest,
)
from repro.datasets.world import World, WorldConfig

__all__ = [
    "Dataset",
    "EvaluationGold",
    "NYTimes2018Config",
    "ReVerb45KConfig",
    "ShardedOKBConfig",
    "StreamingIngestConfig",
    "StreamingIngestWorkload",
    "TripleNoiseConfig",
    "World",
    "WorldConfig",
    "generate_nytimes2018",
    "generate_reverb45k",
    "generate_sharded_reverb45k",
    "generate_streaming_ingest",
    "load_triples_jsonl",
    "save_triples_jsonl",
    "shard_partition",
]
