"""JSONL persistence for OIE triples.

Real ReVerb45K ships as flat files; this module provides the same
affordance: one JSON object per line with the triple's surface strings,
source sentence and gold annotations.  Round-tripping is exact.
"""

from __future__ import annotations

import json
from collections.abc import Iterable
from pathlib import Path

from repro.okb.triples import OIETriple, TripleGold


def triple_to_record(triple: OIETriple) -> dict:
    """JSON-serializable record of one triple."""
    record = {
        "triple_id": triple.triple_id,
        "subject": triple.subject,
        "predicate": triple.predicate,
        "object": triple.object,
    }
    if triple.source_sentence is not None:
        record["source_sentence"] = triple.source_sentence
    if triple.gold is not None:
        record["gold"] = {
            "subject_entity": triple.gold.subject_entity,
            "relation": triple.gold.relation,
            "object_entity": triple.gold.object_entity,
        }
    return record


def triple_from_record(record: dict) -> OIETriple:
    """Inverse of :func:`triple_to_record`."""
    gold = None
    if "gold" in record:
        gold_record = record["gold"]
        gold = TripleGold(
            subject_entity=gold_record.get("subject_entity"),
            relation=gold_record.get("relation"),
            object_entity=gold_record.get("object_entity"),
        )
    return OIETriple(
        triple_id=record["triple_id"],
        subject=record["subject"],
        predicate=record["predicate"],
        object=record["object"],
        source_sentence=record.get("source_sentence"),
        gold=gold,
    )


def save_triples_jsonl(triples: Iterable[OIETriple], path: str | Path) -> int:
    """Write triples as JSONL; returns the number written."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for triple in triples:
            handle.write(json.dumps(triple_to_record(triple), sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def load_triples_jsonl(path: str | Path) -> list[OIETriple]:
    """Read triples written by :func:`save_triples_jsonl`."""
    triples: list[OIETriple] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            triples.append(triple_from_record(json.loads(line)))
    return triples
