"""JSONL persistence for OIE triples.

Real ReVerb45K ships as flat files; this module provides the same
affordance: one JSON object per line with the triple's surface strings,
source sentence and gold annotations.  Round-tripping is exact.  Blank
lines (including trailing newlines left by editors and ``cat``) are
tolerated; a malformed record fails with the file and line number that
produced it, not a bare ``json.loads`` traceback.
"""

from __future__ import annotations

import json
from collections.abc import Iterable
from pathlib import Path

from repro.okb.triples import OIETriple


def triple_to_record(triple: OIETriple) -> dict:
    """JSON-serializable record of one triple."""
    return triple.to_record()


def triple_from_record(record: dict) -> OIETriple:
    """Inverse of :func:`triple_to_record`."""
    if not isinstance(record, dict):
        raise ValueError(
            f"expected a JSON object per line, got {type(record).__name__}"
        )
    missing = [
        key
        for key in ("triple_id", "subject", "predicate", "object")
        if key not in record
    ]
    if missing:
        raise ValueError(f"triple record is missing field(s) {missing}")
    return OIETriple.from_record(record)


def save_triples_jsonl(triples: Iterable[OIETriple], path: str | Path) -> int:
    """Write triples as JSONL; returns the number written."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for triple in triples:
            handle.write(json.dumps(triple_to_record(triple), sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def load_triples_jsonl(path: str | Path) -> list[OIETriple]:
    """Read triples written by :func:`save_triples_jsonl`.

    Blank lines are skipped.  A line that is not valid JSON, or a record
    missing required fields, raises :class:`ValueError` carrying
    ``<path>:<line number>`` so a bad row in a large dump is findable.
    """
    path = Path(path)
    triples: list[OIETriple] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                triples.append(triple_from_record(record))
            # AttributeError covers malformed nested fields (e.g. a
            # scalar where the "gold" object belongs).
            except (
                json.JSONDecodeError,
                ValueError,
                TypeError,
                KeyError,
                AttributeError,
            ) as error:
                raise ValueError(
                    f"{path}:{line_number}: malformed triple record: {error}"
                ) from error
    return triples
