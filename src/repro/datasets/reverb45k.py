"""ReVerb45K-shaped dataset generator.

The real ReVerb45K: 45K ReVerb extractions from ClueWeb09, every NP
annotated with a Freebase entity, each entity having at least two
aliases occurring as NPs.  The synthetic profile reproduces those
statistics at a configurable scale: fully annotated triples, alias-rich
entities, moderate extraction noise, no out-of-KB subjects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.base import Dataset
from repro.datasets.generator import TripleNoiseConfig, generate_triples
from repro.datasets.world import World, WorldConfig


@dataclass(frozen=True)
class ReVerb45KConfig:
    """Scale and seed knobs for the ReVerb45K-shaped generator."""

    n_entities: int = 120
    n_relations: int = 18
    n_facts: int = 260
    n_triples: int = 400
    validation_fraction: float = 0.2
    #: Start of the relation-catalog draw (see ``WorldConfig``); shard
    #: generators use disjoint offsets for disjoint relation vocab.
    relation_offset: int = 0
    seed: int = 7

    def world_config(self) -> WorldConfig:
        """The world profile: alias-rich, moderately ambiguous."""
        return WorldConfig(
            n_entities=self.n_entities,
            n_relations=self.n_relations,
            n_facts=self.n_facts,
            aliases_per_entity=(1, 3),
            shared_alias_fraction=0.25,
            shared_alias_weight=0.45,
            ppdb_coverage=0.7,
            relation_offset=self.relation_offset,
            seed=self.seed,
        )

    def noise_config(self) -> TripleNoiseConfig:
        """The rendering profile: annotated, no out-of-KB subjects."""
        return TripleNoiseConfig(
            n_triples=self.n_triples,
            novel_fact_fraction=0.25,
            out_of_kb_fraction=0.0,
            typo_probability=0.03,
            determiner_probability=0.05,
            inflection_probability=0.6,
            seed=self.seed + 100,
        )


def generate_reverb45k(config: ReVerb45KConfig | None = None) -> Dataset:
    """Generate a ReVerb45K-shaped dataset (fully annotated gold)."""
    config = config or ReVerb45KConfig()
    world = World.generate(config.world_config())
    triples = generate_triples(world, config.noise_config(), annotate=True)
    return Dataset.assemble(
        name="reverb45k-synthetic",
        world=world,
        triples=triples,
        validation_fraction=config.validation_fraction,
        split_seed=config.seed + 200,
    )
