"""Static catalogs for the world generator: name parts and relations.

The relation catalog mirrors the flavor of Freebase relations the paper
links against ("location.contained_by", "organizations_founded", ...).
Each seed carries natural-language paraphrases (the generator renders
OIE relation phrases from these), a category (consumed by the KBP
signal: relations in one category are near-equivalent) and type
constraints for fact generation.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Entity types used by the world model.
PERSON = "person"
ORGANIZATION = "organization"
PLACE = "place"
WORK = "work"

ENTITY_TYPES = (PERSON, ORGANIZATION, PLACE, WORK)

#: Syllables for generated proper names (places, surnames, works).
NAME_SYLLABLES = (
    "al", "an", "ar", "bel", "ber", "bor", "bran", "cal", "car", "dan",
    "del", "dor", "el", "fal", "fen", "gar", "gil", "hal", "har", "kel",
    "kin", "lan", "lor", "mar", "mel", "mor", "nor", "or", "pel", "per",
    "ran", "rin", "ros", "sal", "sel", "tan", "tor", "val", "ver", "vin",
    "wes", "win", "yor", "zan",
)

#: First names for person entities.
FIRST_NAMES = (
    "alice", "brian", "carol", "david", "elena", "frank", "grace", "henry",
    "irene", "james", "karen", "louis", "maria", "nolan", "olivia", "peter",
    "quinn", "rachel", "samuel", "teresa", "victor", "wendy", "xavier",
    "yvonne", "zachary", "amara", "boris", "celine", "dmitri", "esther",
)

#: Organization name patterns; ``{name}`` is a generated base name.
ORGANIZATION_PATTERNS = (
    "university of {name}",
    "{name} university",
    "{name} institute",
    "{name} corporation",
    "{name} industries",
    "{name} laboratories",
    "bank of {name}",
    "{name} press",
    "{name} society",
    "{name} foundation",
)

#: Place name suffix patterns.
PLACE_PATTERNS = (
    "{name}",
    "{name}ton",
    "{name}ville",
    "{name} city",
    "{name}land",
    "port {name}",
    "{name} valley",
)

#: Work (book/film) title patterns.
WORK_PATTERNS = (
    "the {name} chronicle",
    "a history of {name}",
    "the {name} affair",
    "{name} nights",
    "return to {name}",
    "the last {name}",
)


@dataclass(frozen=True)
class RelationSeed:
    """One catalog relation.

    Attributes
    ----------
    name:
        Freebase-flavored canonical name.
    category:
        KBP category; relations sharing a category are near-synonyms.
    paraphrases:
        Base (uninflected) relation phrases expressing the relation.
    subject_type / object_type:
        Type constraints for generated facts.
    """

    name: str
    category: str
    paraphrases: tuple[str, ...]
    subject_type: str
    object_type: str


RELATION_SEEDS: tuple[RelationSeed, ...] = (
    RelationSeed(
        name="location.contained_by",
        category="location",
        paraphrases=("be located in", "be situated in", "lie in", "be in"),
        subject_type=ORGANIZATION,
        object_type=PLACE,
    ),
    RelationSeed(
        name="location.capital_of",
        category="capital",
        paraphrases=("be the capital of", "be the capital city of"),
        subject_type=PLACE,
        object_type=PLACE,
    ),
    RelationSeed(
        name="location.neighbors",
        category="location",
        paraphrases=("border", "be adjacent to", "lie next to"),
        subject_type=PLACE,
        object_type=PLACE,
    ),
    RelationSeed(
        name="people.person.place_of_birth",
        category="birth",
        paraphrases=("be born in", "hail from", "come from"),
        subject_type=PERSON,
        object_type=PLACE,
    ),
    RelationSeed(
        name="people.person.nationality",
        category="birth",
        paraphrases=("be a citizen of", "be a national of"),
        subject_type=PERSON,
        object_type=PLACE,
    ),
    RelationSeed(
        name="people.person.employer",
        category="employment",
        paraphrases=("work for", "work at", "be employed by", "be employed at"),
        subject_type=PERSON,
        object_type=ORGANIZATION,
    ),
    RelationSeed(
        name="organization.leadership.ceo",
        category="leadership",
        paraphrases=("be the ceo of", "lead", "run", "be the head of"),
        subject_type=PERSON,
        object_type=ORGANIZATION,
    ),
    RelationSeed(
        name="organizations_founded",
        category="founding",
        paraphrases=(
            "found",
            "establish",
            "be a founder of",
            "be a member of",
            "be an early member of",
        ),
        subject_type=PERSON,
        object_type=ORGANIZATION,
    ),
    RelationSeed(
        name="education.alumni.institution",
        category="education",
        paraphrases=(
            "graduate from",
            "study at",
            "attend",
            "be educated at",
            "be an alumnus of",
        ),
        subject_type=PERSON,
        object_type=ORGANIZATION,
    ),
    RelationSeed(
        name="education.teacher.institution",
        category="education_staff",
        paraphrases=("teach at", "be a professor at", "lecture at"),
        subject_type=PERSON,
        object_type=ORGANIZATION,
    ),
    RelationSeed(
        name="book.author.works_written",
        category="authorship",
        paraphrases=("write", "be the author of", "pen"),
        subject_type=PERSON,
        object_type=WORK,
    ),
    RelationSeed(
        name="film.director.film",
        category="authorship",
        paraphrases=("direct", "be the director of"),
        subject_type=PERSON,
        object_type=WORK,
    ),
    RelationSeed(
        name="organization.headquarters",
        category="location",
        paraphrases=(
            "be headquartered in",
            "be based in",
            "have headquarters in",
        ),
        subject_type=ORGANIZATION,
        object_type=PLACE,
    ),
    RelationSeed(
        name="organization.subsidiary_of",
        category="ownership",
        paraphrases=("be a subsidiary of", "be owned by", "belong to"),
        subject_type=ORGANIZATION,
        object_type=ORGANIZATION,
    ),
    RelationSeed(
        name="organization.acquired",
        category="ownership",
        paraphrases=("acquire", "buy", "purchase", "take over"),
        subject_type=ORGANIZATION,
        object_type=ORGANIZATION,
    ),
    RelationSeed(
        name="people.person.spouse",
        category="family",
        paraphrases=("marry", "be married to", "be the spouse of"),
        subject_type=PERSON,
        object_type=PERSON,
    ),
    RelationSeed(
        name="people.person.parent",
        category="family",
        paraphrases=("be the parent of", "be the father of", "be the mother of"),
        subject_type=PERSON,
        object_type=PERSON,
    ),
    RelationSeed(
        name="sports.team.location",
        category="location",
        paraphrases=("play in", "be a team from"),
        subject_type=ORGANIZATION,
        object_type=PLACE,
    ),
    RelationSeed(
        name="music.artist.origin",
        category="birth",
        paraphrases=("form in", "originate from", "start out in"),
        subject_type=ORGANIZATION,
        object_type=PLACE,
    ),
    RelationSeed(
        name="organization.partnership",
        category="partnership",
        paraphrases=("partner with", "collaborate with", "team up with"),
        subject_type=ORGANIZATION,
        object_type=ORGANIZATION,
    ),
    RelationSeed(
        name="people.person.residence",
        category="residence",
        paraphrases=("live in", "reside in", "settle in"),
        subject_type=PERSON,
        object_type=PLACE,
    ),
    RelationSeed(
        name="work.subject_of",
        category="aboutness",
        paraphrases=("be about", "describe", "tell the story of"),
        subject_type=WORK,
        object_type=PLACE,
    ),
    RelationSeed(
        name="organization.investor_in",
        category="investment",
        paraphrases=("invest in", "fund", "back"),
        subject_type=ORGANIZATION,
        object_type=ORGANIZATION,
    ),
    RelationSeed(
        name="people.person.award",
        category="award",
        paraphrases=("win", "receive", "be awarded"),
        subject_type=PERSON,
        object_type=WORK,
    ),
)
