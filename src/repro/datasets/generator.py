"""OIE triple rendering: from world facts to noisy surface triples.

Given a :class:`~repro.datasets.world.World`, the generator renders OIE
triples the way an extractor sees text:

* subject/object surface forms sampled from the entity's alias-usage
  distribution (Zipf-like, matching the anchor statistics);
* relation phrases sampled from the relation's paraphrase set, then
  *inflected* (tense / third-person / auxiliary variants) so RP
  canonicalization is non-trivial;
* a configurable fraction of triples express facts **not** in the CKB
  (OIE's whole point is novel knowledge; these triples exercise the
  model when the fact-inclusion factor stays silent);
* optional out-of-KB subjects (NIL entities) and typo noise.

Every triple carries gold annotations unless annotation is disabled
(the NYTimes2018 profile labels only a sample).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datasets.world import World, WorldFact
from repro.okb.triples import OIETriple, TripleGold


@dataclass(frozen=True)
class TripleNoiseConfig:
    """Noise knobs for triple rendering.

    Attributes
    ----------
    n_triples:
        Number of OIE triples to render.
    novel_fact_fraction:
        Fraction of triples rendering a type-consistent fact absent
        from the CKB.
    out_of_kb_fraction:
        Fraction of triples whose *subject* is an invented entity
        unknown to the CKB (gold subject is then unannotated).
    typo_probability:
        Probability of one character-level typo in an NP surface form.
    determiner_probability:
        Probability of prefixing an NP with "the".
    inflection_probability:
        Probability of inflecting the relation phrase (vs. keeping the
        base form).
    seed:
        Rendering seed (independent of the world seed).
    """

    n_triples: int = 400
    novel_fact_fraction: float = 0.25
    out_of_kb_fraction: float = 0.0
    typo_probability: float = 0.03
    determiner_probability: float = 0.05
    inflection_probability: float = 0.6
    seed: int = 11

    def __post_init__(self) -> None:
        for name in (
            "novel_fact_fraction",
            "out_of_kb_fraction",
            "typo_probability",
            "determiner_probability",
            "inflection_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0,1], got {value}")
        if self.n_triples < 1:
            raise ValueError(f"n_triples must be >= 1, got {self.n_triples}")


def generate_triples(
    world: World, noise: TripleNoiseConfig, annotate: bool = True
) -> list[OIETriple]:
    """Render OIE triples from the world under a noise profile."""
    rng = random.Random(noise.seed)
    kb_facts = list(world.facts)
    if not kb_facts:
        raise ValueError("world has no facts to render triples from")
    triples: list[OIETriple] = []
    for index in range(noise.n_triples):
        if rng.random() < noise.novel_fact_fraction:
            fact = _novel_fact(world, rng)
        else:
            fact = rng.choice(kb_facts)
        triple = _render_triple(world, fact, rng, noise, index, annotate)
        triples.append(triple)
    return triples


def _novel_fact(world: World, rng: random.Random) -> WorldFact:
    """A type-consistent fact not asserted in the CKB."""
    existing = {
        (fact.subject_id, fact.relation_name, fact.object_id)
        for fact in world.facts
    }
    for _attempt in range(200):
        seed = rng.choice(world.relations)
        subjects = world.entities_of_type(seed.subject_type)
        objects = world.entities_of_type(seed.object_type)
        if not subjects or not objects:
            continue
        subject = rng.choice(subjects)
        obj = rng.choice(objects)
        if subject.entity_id == obj.entity_id:
            continue
        key = (subject.entity_id, seed.name, obj.entity_id)
        if key not in existing:
            return WorldFact(
                subject_id=subject.entity_id,
                relation_name=seed.name,
                object_id=obj.entity_id,
            )
    # Dense worlds may have no free pair left; fall back to an existing fact.
    fact = rng.choice(world.facts)
    return fact


#: Inflection renderers for base relation phrases like "be located in".
def _inflect(phrase: str, rng: random.Random) -> str:
    words = phrase.split()
    head, rest = words[0], words[1:]
    choice = rng.random()
    if head == "be":
        if choice < 0.4:
            head = "is"
        elif choice < 0.7:
            head = "was"
        else:
            head = "are"
    else:
        if choice < 0.35:
            head = _third_person(head)
        elif choice < 0.6:
            head = _past_tense(head)
        elif choice < 0.75:
            return " ".join(["has", _past_tense(head)] + rest)
    return " ".join([head] + rest)


def _third_person(verb: str) -> str:
    if verb.endswith(("s", "x", "z", "ch", "sh")):
        return verb + "es"
    if verb.endswith("y") and len(verb) > 2 and verb[-2] not in "aeiou":
        return verb[:-1] + "ies"
    return verb + "s"


def _past_tense(verb: str) -> str:
    irregular = {
        "win": "won",
        "buy": "bought",
        "teach": "taught",
        "write": "wrote",
        "run": "ran",
        "lead": "led",
        "found": "founded",
    }
    if verb in irregular:
        return irregular[verb]
    if verb.endswith("e"):
        return verb + "d"
    if verb.endswith("y") and len(verb) > 2 and verb[-2] not in "aeiou":
        return verb[:-1] + "ied"
    return verb + "ed"


def _typo(text: str, rng: random.Random) -> str:
    if len(text) < 4:
        return text
    position = rng.randrange(1, len(text) - 2)
    if text[position] == " " or text[position + 1] == " ":
        return text
    # Swap two adjacent characters.
    chars = list(text)
    chars[position], chars[position + 1] = chars[position + 1], chars[position]
    return "".join(chars)


def _render_np(world: World, entity_id: str, rng: random.Random,
               noise: TripleNoiseConfig) -> str:
    surface = world.sample_form(entity_id, rng)
    if rng.random() < noise.typo_probability:
        surface = _typo(surface, rng)
    if rng.random() < noise.determiner_probability:
        surface = f"the {surface}"
    return surface


def _render_triple(
    world: World,
    fact: WorldFact,
    rng: random.Random,
    noise: TripleNoiseConfig,
    index: int,
    annotate: bool,
) -> OIETriple:
    seed = world.relation_seed(fact.relation_name)
    base_phrase = rng.choice(seed.paraphrases)
    if rng.random() < noise.inflection_probability:
        predicate = _inflect(base_phrase, rng)
    else:
        predicate = base_phrase

    out_of_kb = rng.random() < noise.out_of_kb_fraction
    if out_of_kb:
        subject_surface = f"{_invented_name(rng)}"
        subject_gold = None
    else:
        subject_surface = _render_np(world, fact.subject_id, rng, noise)
        subject_gold = fact.subject_id
    object_surface = _render_np(world, fact.object_id, rng, noise)

    sentence = f"{subject_surface} {predicate} {object_surface} ."
    gold = None
    if annotate:
        gold = TripleGold(
            subject_entity=subject_gold,
            relation=f"r:{fact.relation_name}",
            object_entity=fact.object_id,
        )
    return OIETriple(
        triple_id=f"t{index:05d}",
        subject=subject_surface,
        predicate=predicate,
        object=object_surface,
        source_sentence=sentence,
        gold=gold,
    )


def _invented_name(rng: random.Random) -> str:
    """A subject NP naming an entity the CKB does not know."""
    from repro.datasets.catalog import NAME_SYLLABLES

    base = "".join(rng.choice(NAME_SYLLABLES) for _ in range(3))
    return rng.choice([f"{base} group", f"{base} collective", base])
