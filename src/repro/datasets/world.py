"""The seeded world model behind every synthetic dataset.

A :class:`World` is a self-consistent universe:

* typed entities with canonical names and alias sets (abbreviations,
  short forms, initials) whose *usage* follows a Zipf-like distribution
  — this drives the anchor statistics exactly like Wikipedia anchor
  dumps drive ``f_pop``;
* engineered ambiguity: a configurable fraction of aliases is shared
  between two entities (same surname, colliding acronyms), which is
  what makes entity linking non-trivial;
* relations drawn from the catalog, each with paraphrase sets;
* typed facts between entities.

From a world one can export the :class:`~repro.ckb.kb.CuratedKB`, the
:class:`~repro.ckb.anchors.AnchorStatistics`, a partially-populated
:class:`~repro.paraphrase.ppdb.ParaphraseDB` and a textual corpus for
embedding training.  All generation is deterministic in the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.ckb.anchors import AnchorStatistics
from repro.ckb.kb import CuratedKB, Entity, Fact, Relation
from repro.datasets.catalog import (
    ENTITY_TYPES,
    FIRST_NAMES,
    NAME_SYLLABLES,
    ORGANIZATION_PATTERNS,
    PERSON,
    PLACE,
    PLACE_PATTERNS,
    ORGANIZATION,
    RELATION_SEEDS,
    WORK_PATTERNS,
    RelationSeed,
)
from repro.paraphrase.ppdb import ParaphraseDB


@dataclass(frozen=True)
class WorldConfig:
    """Knobs of the world generator.

    Attributes
    ----------
    n_entities:
        Total entities across all types.
    n_relations:
        Relations drawn from the catalog (capped at the catalog size).
    n_facts:
        Typed facts asserted in the CKB.
    aliases_per_entity:
        (min, max) extra aliases per entity beyond the canonical name.
    shared_alias_fraction:
        Fraction of entities that donate one alias to another same-type
        entity (ambiguity).
    shared_alias_weight:
        Usage weight of a shared (ambiguous) alias on the receiving
        entity; higher means ambiguous mentions appear more often.
    kb_lexicalizations_per_relation:
        How many of a relation's paraphrases the CKB knows as
        lexicalizations.  Real Freebase knows few surface forms for a
        relation ("organizations_founded" does not list "be an early
        member of"), which is what makes relation linking hard.
    ppdb_coverage:
        Probability that a paraphrase pair is present in the exported
        PPDB (real PPDB is incomplete too).
    anchor_scale:
        Mean anchor count per (alias, entity) pair.
    relation_offset:
        Where in the (circular) relation catalog the ``n_relations``
        draw starts.  Lets independent worlds use *disjoint* relation
        vocabularies — the knob behind the sharded multi-world
        workloads of :mod:`repro.datasets.sharded`.
    seed:
        Master seed; every export derives from it.
    """

    n_entities: int = 120
    n_relations: int = 18
    n_facts: int = 260
    aliases_per_entity: tuple[int, int] = (1, 3)
    shared_alias_fraction: float = 0.15
    shared_alias_weight: float = 0.35
    kb_lexicalizations_per_relation: int = 2
    ppdb_coverage: float = 0.7
    anchor_scale: int = 20
    relation_offset: int = 0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.n_entities < 4:
            raise ValueError(f"need at least 4 entities, got {self.n_entities}")
        if not 0.0 <= self.shared_alias_fraction <= 1.0:
            raise ValueError("shared_alias_fraction must be in [0,1]")
        if not 0.0 <= self.ppdb_coverage <= 1.0:
            raise ValueError("ppdb_coverage must be in [0,1]")
        if self.relation_offset < 0:
            raise ValueError(
                f"relation_offset must be >= 0, got {self.relation_offset}"
            )


@dataclass
class WorldEntity:
    """An entity with its alias *usage weights* (for Zipfian sampling)."""

    entity_id: str
    name: str
    entity_type: str
    aliases: list[str] = field(default_factory=list)
    alias_weights: dict[str, float] = field(default_factory=dict)

    def all_forms(self) -> list[str]:
        """Canonical name first, then aliases."""
        return [self.name] + [a for a in self.aliases if a != self.name]


@dataclass
class WorldFact:
    """A typed fact ``(subject entity, relation, object entity)``."""

    subject_id: str
    relation_name: str
    object_id: str


class World:
    """A generated universe; see module docstring.

    Build with :meth:`generate`; direct construction is for tests.
    """

    def __init__(
        self,
        config: WorldConfig,
        entities: list[WorldEntity],
        relations: list[RelationSeed],
        facts: list[WorldFact],
    ) -> None:
        self.config = config
        self.entities = entities
        self.relations = relations
        self.facts = facts
        self._by_id = {entity.entity_id: entity for entity in entities}
        self._by_type: dict[str, list[WorldEntity]] = {}
        for entity in entities:
            self._by_type.setdefault(entity.entity_type, []).append(entity)
        self._relation_by_name = {seed.name: seed for seed in relations}

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    @classmethod
    def generate(cls, config: WorldConfig | None = None) -> World:
        """Deterministically generate a world from ``config.seed``."""
        config = config or WorldConfig()
        rng = random.Random(config.seed)
        entities = _generate_entities(config, rng)
        offset = config.relation_offset % len(RELATION_SEEDS)
        rotated = RELATION_SEEDS[offset:] + RELATION_SEEDS[:offset]
        relations = list(rotated[: min(config.n_relations, len(RELATION_SEEDS))])
        facts = _generate_facts(config, rng, entities, relations)
        _share_aliases(config, rng, entities)
        return cls(config, entities, relations, facts)

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def entity(self, entity_id: str) -> WorldEntity:
        """Entity by id."""
        return self._by_id[entity_id]

    def entities_of_type(self, entity_type: str) -> list[WorldEntity]:
        """All entities of one type."""
        return list(self._by_type.get(entity_type, []))

    def relation_seed(self, name: str) -> RelationSeed:
        """Relation seed by canonical name."""
        return self._relation_by_name[name]

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------
    def curated_kb(self) -> CuratedKB:
        """The CKB slice of this world (entities, relations, facts)."""
        kb = CuratedKB()
        for entity in self.entities:
            kb.add_entity(
                Entity(
                    entity_id=entity.entity_id,
                    name=entity.name,
                    aliases=frozenset(entity.aliases),
                    types=frozenset((entity.entity_type,)),
                )
            )
        known = max(0, self.config.kb_lexicalizations_per_relation)
        for seed in self.relations:
            kb.add_relation(
                Relation(
                    relation_id=f"r:{seed.name}",
                    name=seed.name,
                    lexicalizations=frozenset(seed.paraphrases[:known]),
                    category=seed.category,
                )
            )
        for fact in self.facts:
            kb.add_fact(
                Fact(
                    subject_id=fact.subject_id,
                    relation_id=f"r:{fact.relation_name}",
                    object_id=fact.object_id,
                )
            )
        return kb

    def anchor_statistics(self) -> AnchorStatistics:
        """Anchor counts proportional to alias usage weights."""
        rng = random.Random(self.config.seed + 1)
        stats = AnchorStatistics()
        for entity in self.entities:
            for form in entity.all_forms():
                weight = entity.alias_weights.get(form, 1.0)
                mean = max(1.0, self.config.anchor_scale * weight)
                count = max(1, int(rng.gauss(mean, mean / 4)))
                stats.record(form, entity.entity_id, count)
        return stats

    def paraphrase_db(self) -> ParaphraseDB:
        """PPDB with ``ppdb_coverage`` of the true paraphrase pairs."""
        rng = random.Random(self.config.seed + 2)
        db = ParaphraseDB(seed=self.config.seed + 3)
        for seed in self.relations:
            phrases = list(seed.paraphrases)
            for i in range(len(phrases) - 1):
                if rng.random() < self.config.ppdb_coverage:
                    db.add_pair(phrases[i], phrases[i + 1])
        for entity in self.entities:
            forms = entity.all_forms()
            for i in range(len(forms) - 1):
                if rng.random() < self.config.ppdb_coverage:
                    db.add_pair(forms[i], forms[i + 1])
        return db

    def corpus(self, sentences_per_fact: int = 2) -> list[list[str]]:
        """Tokenized sentences rendering the facts (for SGNS training)."""
        rng = random.Random(self.config.seed + 4)
        corpus: list[list[str]] = []
        for fact in self.facts:
            seed = self._relation_by_name[fact.relation_name]
            subject = self._by_id[fact.subject_id]
            obj = self._by_id[fact.object_id]
            for _ in range(sentences_per_fact):
                phrase = rng.choice(seed.paraphrases)
                sentence = (
                    self._sample_form(subject, rng).split()
                    + phrase.split()
                    + self._sample_form(obj, rng).split()
                )
                corpus.append(sentence)
        return corpus

    def sample_form(self, entity_id: str, rng: random.Random) -> str:
        """Sample a surface form of an entity by usage weight."""
        return self._sample_form(self._by_id[entity_id], rng)

    @staticmethod
    def _sample_form(entity: WorldEntity, rng: random.Random) -> str:
        forms = entity.all_forms()
        weights = [entity.alias_weights.get(form, 1.0) for form in forms]
        return rng.choices(forms, weights=weights, k=1)[0]


# ----------------------------------------------------------------------
# Generation helpers
# ----------------------------------------------------------------------
def _base_name(rng: random.Random) -> str:
    """A pronounceable generated base name ("belkar", "marvin", ...)."""
    syllables = rng.randint(2, 3)
    return "".join(rng.choice(NAME_SYLLABLES) for _ in range(syllables))


def _acronym(name: str) -> str:
    """First letters of the words of ``name`` ("university of dorkel" -> "uod")."""
    return "".join(word[0] for word in name.split() if word)


def _generate_entities(config: WorldConfig, rng: random.Random) -> list[WorldEntity]:
    # Roughly equal split across the four types.
    per_type = max(1, config.n_entities // len(ENTITY_TYPES))
    counts = {etype: per_type for etype in ENTITY_TYPES}
    counts[PERSON] += config.n_entities - per_type * len(ENTITY_TYPES)
    # Small shared pools force realistic name collisions: "university of
    # dorkel" (org) vs "dorkelton" (place) vs "the dorkel chronicle"
    # (work) all derive from the base "dorkel", and surnames repeat
    # across people.  These collisions are what make canonicalization
    # and linking non-trivial.
    base_pool = _distinct_names(rng, max(8, config.n_entities // 3))
    surname_pool = _distinct_names(rng, max(6, config.n_entities // 5))
    entities: list[WorldEntity] = []
    used_names: set[str] = set()
    for etype, count in counts.items():
        for _ in range(count):
            entity = _make_entity(etype, rng, used_names, config, base_pool, surname_pool)
            entities.append(entity)
    return entities


def _distinct_names(rng: random.Random, count: int) -> list[str]:
    names: set[str] = set()
    while len(names) < count:
        names.add(_base_name(rng))
    return sorted(names)


def _make_entity(
    etype: str,
    rng: random.Random,
    used_names: set[str],
    config: WorldConfig,
    base_pool: list[str],
    surname_pool: list[str],
) -> WorldEntity:
    for _attempt in range(200):
        if etype == PERSON:
            first = rng.choice(FIRST_NAMES)
            last = rng.choice(surname_pool)
            name = f"{first} {last}"
            alias_pool = [last, f"{first[0]} {last}", f"{first} {last[0]}"]
        elif etype == ORGANIZATION:
            base = rng.choice(base_pool)
            name = rng.choice(ORGANIZATION_PATTERNS).format(name=base)
            alias_pool = [_acronym(name), base, name.replace("university", "univ")]
        elif etype == PLACE:
            base = rng.choice(base_pool)
            name = rng.choice(PLACE_PATTERNS).format(name=base)
            alias_pool = [base, _acronym(name) if " " in name else name[:4]]
        else:  # WORK
            base = rng.choice(base_pool)
            name = rng.choice(WORK_PATTERNS).format(name=base)
            alias_pool = [base, _acronym(name)]
        if name not in used_names:
            break
    used_names.add(name)
    low, high = config.aliases_per_entity
    n_aliases = rng.randint(low, high)
    alias_pool = [a for a in dict.fromkeys(alias_pool) if a and a != name]
    aliases = alias_pool[:n_aliases]
    entity_id = "e:" + name.replace(" ", "_")
    # Zipf-ish usage: canonical name dominates, aliases tail off.
    weights = {name: 1.0}
    for rank, alias in enumerate(aliases, start=2):
        weights[alias] = 1.0 / rank
    return WorldEntity(
        entity_id=entity_id,
        name=name,
        entity_type=etype,
        aliases=aliases,
        alias_weights=weights,
    )


def _generate_facts(
    config: WorldConfig,
    rng: random.Random,
    entities: list[WorldEntity],
    relations: list[RelationSeed],
) -> list[WorldFact]:
    """Typed facts, deduplicated, roughly uniform over relations."""
    by_type: dict[str, list[WorldEntity]] = {}
    for entity in entities:
        by_type.setdefault(entity.entity_type, []).append(entity)
    facts: list[WorldFact] = []
    seen: set[tuple[str, str, str]] = set()
    attempts = 0
    max_attempts = config.n_facts * 50
    while len(facts) < config.n_facts and attempts < max_attempts:
        attempts += 1
        seed = rng.choice(relations)
        subjects = by_type.get(seed.subject_type, [])
        objects = by_type.get(seed.object_type, [])
        if not subjects or not objects:
            continue
        subject = rng.choice(subjects)
        obj = rng.choice(objects)
        if subject.entity_id == obj.entity_id:
            continue
        key = (subject.entity_id, seed.name, obj.entity_id)
        if key in seen:
            continue
        seen.add(key)
        facts.append(
            WorldFact(
                subject_id=subject.entity_id,
                relation_name=seed.name,
                object_id=obj.entity_id,
            )
        )
    return facts


def _share_aliases(
    config: WorldConfig, rng: random.Random, entities: list[WorldEntity]
) -> None:
    """Make a fraction of aliases ambiguous across same-type entities."""
    by_type: dict[str, list[WorldEntity]] = {}
    for entity in entities:
        by_type.setdefault(entity.entity_type, []).append(entity)
    for group in by_type.values():
        if len(group) < 2:
            continue
        n_shared = int(len(group) * config.shared_alias_fraction)
        for _ in range(n_shared):
            donor, receiver = rng.sample(group, 2)
            if not donor.aliases:
                continue
            alias = rng.choice(donor.aliases)
            if alias in receiver.aliases or alias == receiver.name:
                continue
            receiver.aliases.append(alias)
            # The receiver uses the shared alias with configurable
            # weight; the anchor prior still favors the heavier user.
            receiver.alias_weights[alias] = config.shared_alias_weight
