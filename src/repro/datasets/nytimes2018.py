"""NYTimes2018-shaped dataset generator.

The real NYTimes2018: 34K Stanford-OIE triples over 1500 nytimes.com
articles, *not* annotated against any CKB; the paper samples 100
non-singleton NP groups (canonicalization gold) and 100 triples
(linking gold) and labels them manually.

The synthetic profile reproduces the protocol: noisier extractions,
out-of-KB subjects, and **sampled** evaluation gold.  No validation
split — the paper trains on ReVerb45K's validation set and evaluates
NYTimes2018 purely as a test set.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.base import Dataset, EvaluationGold
from repro.datasets.generator import TripleNoiseConfig, generate_triples
from repro.datasets.world import World, WorldConfig


@dataclass(frozen=True)
class NYTimes2018Config:
    """Scale and seed knobs for the NYTimes2018-shaped generator."""

    n_entities: int = 110
    n_relations: int = 16
    n_facts: int = 220
    n_triples: int = 340
    #: Number of sampled non-singleton NP gold groups (paper: 100).
    n_gold_groups: int = 60
    #: Number of sampled phrases for each linking gold map (paper: 100).
    n_gold_links: int = 80
    seed: int = 51

    def world_config(self) -> WorldConfig:
        """Noisier world: fewer aliases in PPDB, more shared aliases."""
        return WorldConfig(
            n_entities=self.n_entities,
            n_relations=self.n_relations,
            n_facts=self.n_facts,
            aliases_per_entity=(1, 3),
            shared_alias_fraction=0.2,
            shared_alias_weight=0.45,
            kb_lexicalizations_per_relation=1,
            ppdb_coverage=0.55,
            seed=self.seed,
        )

    def noise_config(self) -> TripleNoiseConfig:
        """News-style rendering: typos, out-of-KB subjects, inflection."""
        return TripleNoiseConfig(
            n_triples=self.n_triples,
            novel_fact_fraction=0.35,
            out_of_kb_fraction=0.08,
            typo_probability=0.05,
            determiner_probability=0.1,
            inflection_probability=0.75,
            seed=self.seed + 100,
        )


def generate_nytimes2018(config: NYTimes2018Config | None = None) -> Dataset:
    """Generate an NYTimes2018-shaped dataset with sampled gold."""
    config = config or NYTimes2018Config()
    world = World.generate(config.world_config())
    triples = generate_triples(world, config.noise_config(), annotate=True)
    dataset = Dataset.assemble(
        name="nytimes2018-synthetic",
        world=world,
        triples=triples,
        validation_fraction=0.0,
        split_seed=config.seed + 200,
    )
    # The paper's protocol: gold is a manually labeled sample.
    full_gold = EvaluationGold.from_triples(dataset.test_triples)
    dataset.gold = full_gold.sampled(
        n_np_groups=config.n_gold_groups,
        n_link_phrases=config.n_gold_links,
        seed=config.seed + 300,
    )
    return dataset
