"""Streaming-ingest workload: a warm OKB plus arrival batches.

Production OKBs are not built once — extractions arrive continuously,
and the serving question is "how cheaply can the joint decisions be
refreshed after a batch lands?".  This module renders that workload from
the sharded multi-world generator of :mod:`repro.datasets.sharded`: the
merged shard-major triple stream is split into a *seed* OKB (what the
engine was built with) and a tail of *arrival batches* (what it
ingests).

Two arrival regimes:

* ``"repeat"`` (default) — arrival triples are re-extractions whose
  surface forms all remain covered by the seed OKB, the Zipf-dominant
  case of streaming traffic (new facts about already-seen entities and
  relations).  No vocabulary enters, so the corpus-level IDF tables are
  untouched and the batch dirties *only* the phrases it mentions —
  because the stream is shard-major and shards have disjoint surface
  vocabularies, that is the final shard's factor-graph components,
  exactly the regime where dirty-component incremental inference
  (:class:`repro.runtime.IncrementalRuntime`) reuses every clean
  shard's component verbatim.
* ``"raw"`` — the plain tail of the stream, vocabulary growth and all:
  new phrases shift global IDF weights, so their shared tokens ripple
  into other shards' pair signals.  This exercises the conservative
  drift-invalidation paths (fewer components reusable, still
  decision-identical to a cold batch run).

This is the fixture behind ``benchmarks/test_incremental_ingest.py`` and
the ingest-then-infer equivalence matrix in
``tests/test_runtime_incremental.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.side_info import SideInformation
from repro.datasets.base import Dataset
from repro.datasets.sharded import ShardedOKBConfig, generate_sharded_reverb45k
from repro.embeddings.base import WordEmbedding
from repro.embeddings.hashed import HashedCharNgramEmbedding
from repro.okb.store import OpenKB
from repro.okb.triples import OIETriple


@dataclass(frozen=True)
class StreamingIngestConfig:
    """Scale knobs of the streaming-ingest workload."""

    #: Independent worlds; each becomes >= 1 factor-graph component.
    n_shards: int = 8
    #: OKB triples contributed per shard.
    triples_per_shard: int = 50
    entities_per_shard: int = 16
    facts_per_shard: int = 33
    relations_per_shard: int = 3
    #: Fraction of the stream that arrives as ingest batches (the tail
    #: of the shard-major order, so batches concentrate in few shards).
    ingest_fraction: float = 0.1
    #: How many arrival batches the tail is split into.
    n_batches: int = 1
    #: Arrival regime: ``"repeat"`` (vocabulary-covered re-extractions)
    #: or ``"raw"`` (the literal stream tail); see the module docstring.
    arrivals: str = "repeat"
    seed: int = 7

    def __post_init__(self) -> None:
        if not 0.0 < self.ingest_fraction < 1.0:
            raise ValueError(
                f"ingest_fraction must be in (0, 1), got {self.ingest_fraction}"
            )
        if self.n_batches < 1:
            raise ValueError(f"n_batches must be >= 1, got {self.n_batches}")
        if self.arrivals not in ("repeat", "raw"):
            raise ValueError(
                f"arrivals must be 'repeat' or 'raw', got {self.arrivals!r}"
            )

    @property
    def sharded_config(self) -> ShardedOKBConfig:
        return ShardedOKBConfig(
            n_shards=self.n_shards,
            triples_per_shard=self.triples_per_shard,
            entities_per_shard=self.entities_per_shard,
            facts_per_shard=self.facts_per_shard,
            relations_per_shard=self.relations_per_shard,
            validation_fraction=0.0,
            seed=self.seed,
        )


@dataclass
class StreamingIngestWorkload:
    """A seeded OKB and the arrival batches that stream into it."""

    dataset: Dataset
    #: Triples the engine is built with (the warm OKB).
    seed_triples: list[OIETriple]
    #: Arrival batches, in stream order.  Seed plus batches cover the
    #: full stream as a *set*; only the ``"raw"`` regime preserves the
    #: original shard-major order under concatenation (``"repeat"``
    #: pulls vocabulary-covered positions out of the stream's interior).
    batches: list[list[OIETriple]] = field(default_factory=list)

    @property
    def all_triples(self) -> list[OIETriple]:
        """The full stream's triples: seed plus every batch."""
        combined = list(self.seed_triples)
        for batch in self.batches:
            combined.extend(batch)
        return combined

    def side_information(
        self,
        triples: list[OIETriple] | None = None,
        embedding: WordEmbedding | None = None,
        max_candidates: int = 8,
    ) -> SideInformation:
        """A side-info bundle over ``triples`` (default: the seed OKB).

        Shares the workload's CKB, anchors and PPDB; pass
        :attr:`all_triples` to get the cold batch-job bundle over the
        full stream (the baseline incremental ingest is measured
        against).
        """
        return SideInformation.build(
            okb=OpenKB(self.seed_triples if triples is None else triples),
            kb=self.dataset.kb,
            anchors=self.dataset.anchors,
            ppdb=self.dataset.ppdb,
            embedding=embedding or HashedCharNgramEmbedding(dimension=64),
            max_candidates=max_candidates,
        )

    def engine(self, config=None, runtime=None):
        """A :class:`repro.api.JOCLEngine` seeded with the warm OKB.

        Stream the batches in with ``engine.ingest(batch)``.
        """
        from repro.api.engine import JOCLEngine
        from repro.core.config import JOCLConfig

        max_candidates = (config or JOCLConfig()).max_candidates
        builder = JOCLEngine.builder().with_side_information(
            self.side_information(max_candidates=max_candidates)
        )
        if config is not None:
            builder = builder.with_config(config)
        if runtime is not None:
            builder = builder.with_runtime(runtime)
        return builder.build()


def _covered_tail(stream: list[OIETriple], tail_size: int) -> list[int]:
    """Positions (from the stream's end) forming a vocabulary-covered tail.

    Greedy reverse scan: a triple joins the tail only if each of its
    three phrases still occurs in a triple *not* moved to the tail, so
    removing the tail from the OKB removes no vocabulary entry — the
    ``"repeat"`` arrival regime.  Returns at most ``tail_size`` stream
    positions, latest first.
    """
    phrase_counts: dict[str, int] = {}
    for triple in stream:
        for phrase in triple.as_tuple():
            phrase_counts[phrase] = phrase_counts.get(phrase, 0) + 1
    positions: list[int] = []
    for position in range(len(stream) - 1, -1, -1):
        if len(positions) == tail_size:
            break
        triple = stream[position]
        phrases = triple.as_tuple()
        # A phrase survives removal when some mention outside this
        # triple remains (degenerate (x, p, x) triples mention x twice).
        if all(phrase_counts[phrase] > phrases.count(phrase) for phrase in phrases):
            positions.append(position)
            for phrase in phrases:
                phrase_counts[phrase] -= 1
    return positions


def generate_streaming_ingest(
    config: StreamingIngestConfig | None = None,
) -> StreamingIngestWorkload:
    """Generate the streaming-ingest workload (see module docstring)."""
    config = config or StreamingIngestConfig()
    dataset = generate_sharded_reverb45k(config.sharded_config)
    stream = list(dataset.triples)
    tail_size = max(config.n_batches, int(len(stream) * config.ingest_fraction))
    tail_size = min(tail_size, len(stream) - 1)
    if config.arrivals == "repeat":
        tail_positions = set(_covered_tail(stream, tail_size))
        seed_triples = [
            triple
            for position, triple in enumerate(stream)
            if position not in tail_positions
        ]
        tail = [
            triple
            for position, triple in enumerate(stream)
            if position in tail_positions
        ]
    else:
        seed_triples = stream[:-tail_size]
        tail = stream[-tail_size:]
    base, remainder = divmod(len(tail), config.n_batches)
    batches: list[list[OIETriple]] = []
    start = 0
    for position in range(config.n_batches):
        size = base + (1 if position < remainder else 0)
        batches.append(tail[start : start + size])
        start += size
    return StreamingIngestWorkload(
        dataset=dataset, seed_triples=seed_triples, batches=batches
    )
