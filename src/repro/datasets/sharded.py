"""Sharded multi-world OKB: the naturally decomposable workload.

A single generated world chains every triple into one connected factor
graph — all extractions share the same small relation vocabulary.  Real
production OKBs are not like that: traffic arrives from many
independent tenants/domains whose phrase vocabularies barely overlap,
which is exactly the regime where the paper's closing remark of
Section 3.4 ("can be extended to a distributed version with a graph
segmentation algorithm") pays off.

:func:`generate_sharded_reverb45k` builds that workload: ``n_shards``
independent ReVerb45K-shaped worlds, each drawing a *disjoint* slice of
the relation catalog (``WorldConfig.relation_offset``) and its own
entity universe, merged into one :class:`~repro.datasets.base.Dataset`.
Cross-shard surface collisions (two worlds minting the same acronym)
are filtered out of the OKB, so the merged factor graph decomposes into
at least one connected component per shard — the fixture behind the
:mod:`repro.runtime` benchmarks.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.datasets.base import Dataset
from repro.datasets.catalog import RELATION_SEEDS
from repro.datasets.reverb45k import ReVerb45KConfig, generate_reverb45k
from repro.datasets.world import World, WorldConfig, WorldFact
from repro.okb.triples import OIETriple, TripleGold


@dataclass(frozen=True)
class ShardedOKBConfig:
    """Scale knobs of the sharded multi-world generator."""

    #: Independent worlds; each becomes >= 1 factor-graph component.
    n_shards: int = 4
    #: OKB triples contributed per shard (before the test/val split).
    triples_per_shard: int = 100
    entities_per_shard: int = 30
    facts_per_shard: int = 65
    #: Relations per shard; shards draw disjoint catalog slices, so
    #: ``n_shards * relations_per_shard`` must fit the catalog.
    relations_per_shard: int = 3
    validation_fraction: float = 0.2
    seed: int = 7

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.triples_per_shard < 1:
            raise ValueError(
                f"triples_per_shard must be >= 1, got {self.triples_per_shard}"
            )
        if self.n_shards * self.relations_per_shard > len(RELATION_SEEDS):
            raise ValueError(
                f"{self.n_shards} shards x {self.relations_per_shard} relations "
                f"exceed the {len(RELATION_SEEDS)}-relation catalog; overlapping "
                "slices would reconnect the shards"
            )

    def shard_config(self, shard: int) -> ReVerb45KConfig:
        """The per-shard generator configuration (oversampled; the
        merge filters cross-shard surface collisions, then trims)."""
        oversample = self.triples_per_shard + self.triples_per_shard // 5 + 8
        return ReVerb45KConfig(
            n_entities=self.entities_per_shard,
            n_relations=self.relations_per_shard,
            n_facts=self.facts_per_shard,
            n_triples=oversample,
            validation_fraction=0.0,
            relation_offset=shard * self.relations_per_shard,
            seed=self.seed + shard * 1009,
        )


def _namespaced_world(shard: int, world: World) -> tuple[list, list, list[WorldFact]]:
    """Entities/relations/facts of one shard with shard-unique ids.

    Only *entity ids* need namespacing (worlds mint the same ``e``
    numbers); relation ids derive from catalog names, which the
    disjoint slices already keep unique.
    """
    prefix = f"s{shard}:"
    entities = [
        dataclasses.replace(entity, entity_id=prefix + entity.entity_id)
        for entity in world.entities
    ]
    facts = [
        WorldFact(
            subject_id=prefix + fact.subject_id,
            relation_name=fact.relation_name,
            object_id=prefix + fact.object_id,
        )
        for fact in world.facts
    ]
    return entities, list(world.relations), facts


def _namespaced_triple(shard: int, triple: OIETriple) -> OIETriple:
    prefix = f"s{shard}:"
    gold = triple.gold
    if gold is not None:
        gold = TripleGold(
            subject_entity=(
                prefix + gold.subject_entity if gold.subject_entity else None
            ),
            relation=gold.relation,
            object_entity=(
                prefix + gold.object_entity if gold.object_entity else None
            ),
        )
    return OIETriple(
        triple_id=prefix + triple.triple_id,
        subject=triple.subject,
        predicate=triple.predicate,
        object=triple.object,
        source_sentence=triple.source_sentence,
        gold=gold,
    )


def shard_partition(triples) -> list[list[OIETriple]]:
    """Group a sharded dataset's triples by the world shard that minted
    them — the natural per-tenant seed placement for a
    :class:`repro.cluster.ShardedEngine`.

    The generator namespaces every triple id with its shard
    (``s0:...``, ``s1:...``, see :func:`_namespaced_triple`); this
    helper inverts that convention.  Shards come back in shard order,
    each preserving stream order.

    Example::

        from repro.datasets import generate_sharded_reverb45k, shard_partition

        dataset = generate_sharded_reverb45k()
        per_shard = shard_partition(dataset.triples)
        assert sum(len(shard) for shard in per_shard) == len(dataset.triples)
    """
    by_shard: dict[str, list[OIETriple]] = {}
    for triple in triples:
        prefix, _, _rest = triple.triple_id.partition(":")
        by_shard.setdefault(prefix, []).append(triple)

    def order(prefix: str):
        return (
            (0, int(prefix[1:]))
            if prefix.startswith("s") and prefix[1:].isdigit()
            else (1, 0)
        )

    return [by_shard[prefix] for prefix in sorted(by_shard, key=order)]


def generate_sharded_reverb45k(config: ShardedOKBConfig | None = None) -> Dataset:
    """Generate a merged multi-shard dataset (see module docstring).

    The result is an ordinary :class:`Dataset` — CKB, anchors, PPDB,
    validation/test split and gold all span every shard — whose factor
    graph decomposes into independent per-shard components.
    """
    config = config or ShardedOKBConfig()
    entities, relations, facts = [], [], []
    triples: list[OIETriple] = []
    used_surfaces: set[str] = set()
    for shard in range(config.n_shards):
        dataset = generate_reverb45k(config.shard_config(shard))
        shard_entities, shard_relations, shard_facts = _namespaced_world(
            shard, dataset.world
        )
        entities.extend(shard_entities)
        relations.extend(shard_relations)
        facts.extend(shard_facts)
        kept = 0
        shard_surfaces: set[str] = set()
        for triple in dataset.triples:
            forms = {triple.subject_norm, triple.predicate_norm, triple.object_norm}
            if forms & used_surfaces:
                # A surface minted by an earlier shard too (e.g. two
                # worlds producing the acronym "MI"): keeping it would
                # fuse the shards into one component.
                continue
            triples.append(_namespaced_triple(shard, triple))
            shard_surfaces |= forms
            kept += 1
            if kept >= config.triples_per_shard:
                break
        used_surfaces |= shard_surfaces
    merged_config = WorldConfig(
        n_entities=config.n_shards * config.entities_per_shard,
        n_relations=len(relations),
        n_facts=config.n_shards * config.facts_per_shard,
        seed=config.seed,
    )
    merged_world = World(merged_config, entities, relations, facts)
    return Dataset.assemble(
        name=f"reverb45k-sharded-{config.n_shards}x{config.triples_per_shard}",
        world=merged_world,
        triples=triples,
        validation_fraction=config.validation_fraction,
        split_seed=config.seed + 200,
    )
