"""The :class:`Dataset` container consumed by pipelines and benchmarks.

Bundles the rendered OKB, the world's CKB and side-information
resources, the validation/test split (by gold subject entity — the
paper reserves the triples of 20% of ReVerb45K's Freebase entities as
the validation set, Section 4.1) and evaluation gold:

* gold NP clusters — annotated subject strings grouped by gold entity;
* gold RP clusters — predicate strings grouped by gold relation;
* gold links for subjects, predicates and objects.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.ckb.anchors import AnchorStatistics
from repro.ckb.kb import CuratedKB
from repro.clustering.clusters import Clustering
from repro.core.side_info import SideInformation
from repro.datasets.world import World
from repro.embeddings.base import WordEmbedding
from repro.embeddings.hashed import HashedCharNgramEmbedding
from repro.embeddings.sgns import SkipGramConfig, SkipGramModel
from repro.okb.store import OpenKB
from repro.okb.triples import OIETriple
from repro.paraphrase.ppdb import ParaphraseDB


@dataclass
class EvaluationGold:
    """Gold structures for one triple collection."""

    np_clusters: Clustering
    rp_clusters: Clustering
    object_clusters: Clustering
    entity_links: dict[str, str]
    relation_links: dict[str, str]
    object_links: dict[str, str]

    @classmethod
    def from_triples(cls, triples: list[OIETriple]) -> EvaluationGold:
        """Derive gold clusters and links from annotated triples.

        A surface string annotated with different targets across
        mentions keeps the first annotation (deterministic; the
        generators do not emit conflicts for one string).
        """
        entity_links: dict[str, str] = {}
        relation_links: dict[str, str] = {}
        object_links: dict[str, str] = {}
        for triple in triples:
            if triple.gold is None:
                continue
            if triple.gold.subject_entity is not None:
                entity_links.setdefault(triple.subject_norm, triple.gold.subject_entity)
            if triple.gold.relation is not None:
                relation_links.setdefault(triple.predicate_norm, triple.gold.relation)
            if triple.gold.object_entity is not None:
                object_links.setdefault(triple.object_norm, triple.gold.object_entity)
        return cls(
            np_clusters=Clustering.from_assignment(entity_links),
            rp_clusters=Clustering.from_assignment(relation_links),
            object_clusters=Clustering.from_assignment(object_links),
            entity_links=entity_links,
            relation_links=relation_links,
            object_links=object_links,
        )

    def sampled(
        self,
        n_np_groups: int,
        n_link_phrases: int,
        seed: int,
    ) -> EvaluationGold:
        """The paper's manual-labeling protocol for unannotated corpora.

        Keeps ``n_np_groups`` randomly chosen *non-singleton* NP gold
        groups (NP canonicalization gold) and ``n_link_phrases``
        randomly chosen phrases for each linking gold map.
        """
        rng = random.Random(seed)

        def sample_clusters(clusters: Clustering) -> Clustering:
            non_singleton = clusters.non_singletons()
            rng.shuffle(non_singleton)
            return Clustering(non_singleton[:n_np_groups])

        def sample_links(links: dict[str, str]) -> dict[str, str]:
            keys = sorted(links)
            rng.shuffle(keys)
            return {key: links[key] for key in keys[:n_link_phrases]}

        return EvaluationGold(
            np_clusters=sample_clusters(self.np_clusters),
            rp_clusters=sample_clusters(self.rp_clusters),
            object_clusters=sample_clusters(self.object_clusters),
            entity_links=sample_links(self.entity_links),
            relation_links=sample_links(self.relation_links),
            object_links=sample_links(self.object_links),
        )


@dataclass
class Dataset:
    """A fully assembled benchmark dataset."""

    name: str
    world: World
    triples: list[OIETriple]
    kb: CuratedKB
    anchors: AnchorStatistics
    ppdb: ParaphraseDB
    validation_triples: list[OIETriple] = field(default_factory=list)
    test_triples: list[OIETriple] = field(default_factory=list)
    #: Evaluation gold over the *test* triples (possibly sampled).
    gold: EvaluationGold | None = None

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    @classmethod
    def assemble(
        cls,
        name: str,
        world: World,
        triples: list[OIETriple],
        validation_fraction: float = 0.2,
        split_seed: int = 13,
    ) -> Dataset:
        """Split by gold subject entity and derive test gold."""
        validation, test = split_by_entity(triples, validation_fraction, split_seed)
        dataset = cls(
            name=name,
            world=world,
            triples=triples,
            kb=world.curated_kb(),
            anchors=world.anchor_statistics(),
            ppdb=world.paraphrase_db(),
            validation_triples=validation,
            test_triples=test,
        )
        dataset.gold = EvaluationGold.from_triples(test)
        return dataset

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def okb(self, which: str = "all") -> OpenKB:
        """OKB over ``"all"``, ``"validation"`` or ``"test"`` triples."""
        if which == "all":
            return OpenKB(self.triples)
        if which == "validation":
            return OpenKB(self.validation_triples)
        if which == "test":
            return OpenKB(self.test_triples)
        raise ValueError(f"unknown split {which!r}")

    def side_information(
        self,
        which: str = "test",
        embedding: WordEmbedding | str | None = None,
        max_candidates: int = 8,
    ) -> SideInformation:
        """Side-information bundle for one split.

        ``embedding`` may be a :class:`WordEmbedding`, ``"hashed"``
        (default) or ``"sgns"`` (trains skip-gram on the world corpus).
        """
        okb = self.okb(which)
        if embedding is None or embedding == "hashed":
            resolved: WordEmbedding = HashedCharNgramEmbedding(dimension=64)
        elif embedding == "sgns":
            model = SkipGramModel(SkipGramConfig(dimension=48, epochs=2))
            model.train(self.world.corpus())
            resolved = model
        elif isinstance(embedding, WordEmbedding):
            resolved = embedding
        else:
            raise ValueError(f"unknown embedding spec {embedding!r}")
        return SideInformation.build(
            okb=okb,
            kb=self.kb,
            anchors=self.anchors,
            ppdb=self.ppdb,
            embedding=resolved,
            max_candidates=max_candidates,
        )

    def engine(
        self,
        which: str = "test",
        config=None,
        embedding: WordEmbedding | str | None = None,
        registry_factory=None,
    ) -> repro.api.engine.JOCLEngine:  # noqa: F821 - forward reference
        """A :class:`repro.api.JOCLEngine` seeded with one split.

        The side-info construction hook for the engine API: the returned
        engine owns this dataset's CKB, anchors and paraphrase DB, holds
        the chosen split's triples as its OKB, and supports incremental
        :meth:`~repro.api.engine.JOCLEngine.ingest` of further triples
        (e.g. streaming the other split in batch by batch).
        """
        from repro.api.engine import JOCLEngine
        from repro.core.config import JOCLConfig

        max_candidates = (config or JOCLConfig()).max_candidates
        side = self.side_information(
            which, embedding=embedding, max_candidates=max_candidates
        )
        builder = JOCLEngine.builder().with_side_information(side)
        if config is not None:
            builder = builder.with_config(config)
        if registry_factory is not None:
            builder = builder.with_signals(registry_factory)
        return builder.build()

    def validation_gold(self) -> EvaluationGold:
        """Gold over the validation triples (used for learning)."""
        return EvaluationGold.from_triples(self.validation_triples)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Dataset({self.name!r}, triples={len(self.triples)}, "
            f"validation={len(self.validation_triples)}, test={len(self.test_triples)})"
        )


def split_by_entity(
    triples: list[OIETriple],
    validation_fraction: float,
    seed: int,
) -> tuple[list[OIETriple], list[OIETriple]]:
    """Reserve the triples of a fraction of gold subject entities.

    Mirrors Section 4.1: "the triples associated with 20% selected
    Freebase entities of ReVerb45K as the validation set".  Triples with
    no gold subject go to the test side.
    """
    if not 0.0 <= validation_fraction < 1.0:
        raise ValueError(f"validation_fraction must be in [0,1), got {validation_fraction}")
    entities = sorted(
        {
            triple.gold.subject_entity
            for triple in triples
            if triple.gold is not None and triple.gold.subject_entity is not None
        }
    )
    rng = random.Random(seed)
    n_validation = int(len(entities) * validation_fraction)
    validation_entities = set(rng.sample(entities, n_validation)) if n_validation else set()
    validation: list[OIETriple] = []
    test: list[OIETriple] = []
    for triple in triples:
        subject_entity = triple.gold.subject_entity if triple.gold else None
        if subject_entity is not None and subject_entity in validation_entities:
            validation.append(triple)
        else:
            test.append(triple)
    return validation, test
