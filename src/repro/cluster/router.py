"""Shard routing: which shard owns a triple, which shards see a mention.

A :class:`ShardRouter` is the placement policy of a
:class:`~repro.cluster.engine.ShardedEngine`.  It answers two questions:

* :meth:`ShardRouter.route_triple` — which single shard an incoming OIE
  triple is ingested into (the write path);
* :meth:`ShardRouter.candidate_shards` — which shards could answer a
  mention query and must be fanned out to (the read path).  The base
  implementation is exact: it scans the per-shard vocabularies, so the
  scatter in ``resolve`` touches only shards that actually mention the
  phrase.

Two policies ship:

* :class:`HashShardRouter` — stable hash of the subject surface form.
  Spreads load uniformly, needs no state, and keeps every mention of
  one *subject* co-located; predicates and objects travel with their
  subject, so their evidence may split across shards (fine for load
  balancing, not for decision parity with a single engine).
* :class:`VocabularyAffinityRouter` — sends a triple to the shard whose
  existing NP/RP vocabulary scores it highest (mention-count-weighted
  overlap), so extraction streams with a natural tenant/domain
  structure keep each domain's evidence on one shard.  Ties — including
  the all-new-vocabulary case — fall back to the hash route *among the
  tied shards*, which is deterministic and keeps a cold cluster
  balanced.

Routing is deterministic and ``PYTHONHASHSEED``-independent (the hash
is BLAKE2, not Python's salted ``hash``), so a cluster rebuilt from the
same stream places every triple identically.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from collections.abc import Sequence

from repro.api.errors import InvalidRequestError
from repro.okb.store import OpenKB, PhraseRole
from repro.okb.triples import OIETriple


def stable_hash(text: str) -> int:
    """A process-stable 64-bit hash of ``text`` (BLAKE2b).

    Python's built-in ``hash`` is salted per process by
    ``PYTHONHASHSEED``; routing must survive restarts byte-identically,
    so the cluster uses this instead.

    Example::

        from repro.cluster import stable_hash

        assert stable_hash("university of maryland") == stable_hash(
            "university of maryland"
        )
    """
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ShardRouter(ABC):
    """The placement-policy contract of a sharded cluster.

    Subclass and implement :meth:`route_triple` (and optionally override
    :meth:`candidate_shards`) to plug a custom policy into
    :meth:`repro.cluster.ShardedEngine.builder`.  Routers are stateless
    with respect to the cluster — they receive per-shard OKB views on
    every call (:class:`~repro.okb.store.OpenKB` instances, or
    overlay views exposing the same ``np_frequency`` / ``rp_frequency``
    / ``np_mentions`` / ``rp_mentions`` query surface during batch
    routing) — so one instance can serve many clusters.

    Example of a custom policy (route by an explicit tenant prefix)::

        class TenantRouter(ShardRouter):
            name = "tenant"

            def route_triple(self, triple, shards):
                tenant = triple.triple_id.split(":", 1)[0]
                return stable_hash(tenant) % len(shards)
    """

    #: Stable identifier recorded in cluster manifests and reports; the
    #: dispatch key of :func:`router_from_state`.
    name = "abstract"

    @abstractmethod
    def route_triple(self, triple: OIETriple, shards: Sequence[OpenKB]) -> int:
        """The shard index (``0 <= index < len(shards)``) that ingests
        ``triple``.  Must be deterministic for a given (triple, shard
        vocabularies) pair."""

    def candidate_shards(
        self,
        mention: str,
        kinds: Sequence[str],
        shards: Sequence[OpenKB],
    ) -> tuple[int, ...]:
        """Shards that could resolve ``mention`` in the given slot kinds.

        ``mention`` is already normalized; ``kinds`` is a subset of
        ``("S", "P", "O")``.  The default is exact *per-slot* membership:
        a shard is a candidate iff its OKB mentions the phrase in one of
        the requested slots (a shard holding the phrase only as an
        object is no candidate for a subject-restricted query), so the
        scatter never queries a shard that would answer
        :class:`~repro.api.errors.UnknownMentionError`.  Returns shard
        indices in ascending order (part of the documented merge order
        of :meth:`repro.cluster.ShardedEngine.resolve`).
        """
        wants = frozenset(kinds)
        wanted_roles = set()
        if "S" in wants:
            wanted_roles.add(PhraseRole.SUBJECT)
        if "O" in wants:
            wanted_roles.add(PhraseRole.OBJECT)
        found = []
        for index, okb in enumerate(shards):
            if wanted_roles and any(
                role in wanted_roles for _id, role in okb.np_mentions(mention)
            ):
                found.append(index)
            elif "P" in wants and okb.rp_frequency(mention) > 0:
                found.append(index)
        return tuple(found)

    # ------------------------------------------------------------------
    # Persistence (cluster manifests)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """JSON-safe router configuration for the cluster manifest.

        The ``"type"`` discriminator is the router's :attr:`name`;
        :func:`router_from_state` dispatches on it at load time.
        """
        return {"type": self.name}

    @classmethod
    def from_state(cls, payload: dict) -> ShardRouter:
        """Reconstruct a router from :meth:`to_state` output."""
        del payload
        return cls()


class HashShardRouter(ShardRouter):
    """Route every triple by a stable hash of its subject surface form.

    The default policy: uniform, stateless, deterministic.  All triples
    sharing a subject land on one shard (their canonicalization evidence
    stays whole); predicates and objects follow their subject.

    Example::

        from repro.cluster import HashShardRouter

        router = HashShardRouter()
        # same subject => same shard, whatever the shard vocabularies
        shard = router.route_triple(triple, shards)
    """

    name = "hash"

    def route_triple(self, triple: OIETriple, shards: Sequence[OpenKB]) -> int:
        return stable_hash(triple.subject_norm) % len(shards)


class VocabularyAffinityRouter(ShardRouter):
    """Route a triple to the shard whose vocabulary already knows it best.

    The affinity score of a shard is the number of existing mentions of
    the triple's three surface forms in that shard's OKB
    (``np_frequency(subject) + rp_frequency(predicate) +
    np_frequency(object)``): the shard that has seen the most evidence
    about these phrases attracts the new fact.  Domain-partitioned
    extraction streams (per-source, per-tenant — the regime CESI and
    COMBO describe) therefore keep each domain's factor-graph components
    on one shard, which is what makes cluster decisions match a single
    engine's.

    Deterministic tie-break: among the highest-scoring shards (including
    the cold-start case where every score is 0) the hash route picks
    within the tied subset, so placement is reproducible *and* a cold
    cluster still spreads uniformly.

    Example::

        from repro.cluster import VocabularyAffinityRouter

        router = VocabularyAffinityRouter()
        # a re-extraction of a known fact follows its vocabulary home
        shard = router.route_triple(triple, shards)
    """

    name = "vocabulary_affinity"

    def route_triple(self, triple: OIETriple, shards: Sequence[OpenKB]) -> int:
        scores = [
            okb.np_frequency(triple.subject_norm)
            + okb.rp_frequency(triple.predicate_norm)
            + okb.np_frequency(triple.object_norm)
            for okb in shards
        ]
        best = max(scores)
        tied = [index for index, score in enumerate(scores) if score == best]
        if len(tied) == 1:
            return tied[0]
        return tied[stable_hash(triple.subject_norm) % len(tied)]


#: ``to_state()["type"]`` discriminator -> router class.
_ROUTER_TYPES: dict[str, type[ShardRouter]] = {
    HashShardRouter.name: HashShardRouter,
    VocabularyAffinityRouter.name: VocabularyAffinityRouter,
}


def router_from_state(payload: dict) -> ShardRouter:
    """Reconstruct a router from a cluster manifest payload.

    Raises :class:`~repro.api.errors.InvalidRequestError` (a
    ``ValueError``) for unknown types (a third-party router whose class
    is not importable here); cluster load lets callers pass an explicit
    ``router`` override in that case.

    Example::

        from repro.cluster import HashShardRouter, router_from_state

        assert isinstance(
            router_from_state({"type": "hash"}), HashShardRouter
        )
    """
    router_type = payload.get("type")
    router_cls = _ROUTER_TYPES.get(router_type)
    if router_cls is None:
        raise InvalidRequestError(
            f"unknown shard router type {router_type!r}; expected one of "
            f"{sorted(_ROUTER_TYPES)} (pass an explicit router to load a "
            f"cluster saved with a custom router)"
        )
    return router_cls.from_state(payload)
