"""Typed, schema-versioned results of the cluster surface.

Mirrors :mod:`repro.api.results` one level up: everything a
:class:`~repro.cluster.engine.ShardedEngine` returns is a frozen
dataclass with a ``to_dict()`` / ``from_dict()`` pair sharing the same
envelope discipline (``schema_version`` + ``type`` discriminator,
:class:`~repro.api.errors.SchemaError` on malformed bodies):

* :class:`IngestReport` — how one routed ingest batch spread over the
  shards;
* :class:`ClusterStats` — per-shard :class:`~repro.api.results.EngineStats`
  plus cluster totals;
* :class:`ClusterReport` — the per-shard
  :class:`~repro.api.results.EngineReport` concatenation, with merged
  cluster-wide canonicalization/linking views derived under a
  documented, deterministic order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api.results import (
    CanonicalizationResult,
    EngineReport,
    EngineStats,
    LinkingResult,
    _envelope,
    _parsing,
    _require,
    check_envelope,
)
from repro.clustering.clusters import Clustering


@dataclass(frozen=True)
class IngestReport:
    """How one :meth:`repro.cluster.ShardedEngine.ingest` batch routed.

    ``per_shard[i]`` is the number of triples the router placed on shard
    ``i``; ``n_triples`` is their sum (every triple lands on exactly one
    shard).  ``wall_time_s`` covers routing plus the shard-parallel
    ingest fan-out; like
    :attr:`repro.api.results.EngineReport.profile` it is excluded from
    equality and from the default payload, because wall times are never
    deterministic.

    Example::

        report = cluster.ingest(batch)
        print(report.n_triples, report.per_shard)
    """

    TYPE = "ingest_report"

    router: str
    per_shard: tuple[int, ...]
    wall_time_s: float = field(default=0.0, compare=False)

    @property
    def n_triples(self) -> int:
        """Total triples ingested across every shard."""
        return sum(self.per_shard)

    @property
    def n_shards(self) -> int:
        """Number of shards the batch was routed over."""
        return len(self.per_shard)

    def to_dict(self, include_wall_time: bool = False) -> dict:
        """JSON-safe payload (wall time only on request — see above)."""
        payload = _envelope(self.TYPE)
        payload.update(
            router=self.router,
            per_shard=list(self.per_shard),
            n_triples=self.n_triples,
        )
        if include_wall_time:
            payload["wall_time_s"] = self.wall_time_s
        return payload

    @classmethod
    def from_dict(cls, payload: object) -> IngestReport:
        """Inverse of :meth:`to_dict` (envelope-validated)."""
        payload = check_envelope(payload, cls.TYPE)
        with _parsing(cls.TYPE):
            return cls(
                router=str(_require(payload, "router", cls.TYPE)),
                per_shard=tuple(
                    int(count)
                    for count in _require(payload, "per_shard", cls.TYPE)
                ),
                wall_time_s=float(payload.get("wall_time_s", 0.0)),
            )


@dataclass(frozen=True)
class ClusterStats:
    """Size and provenance of a sharded cluster.

    Example::

        stats = cluster.stats()
        print(stats.n_shards, stats.n_triples, stats.per_shard[0].n_triples)
    """

    TYPE = "cluster_stats"

    router: str
    per_shard: tuple[EngineStats, ...]
    #: Cluster-level ingest batches absorbed (each may touch many shards).
    n_ingests: int = 0

    @property
    def n_shards(self) -> int:
        """Number of shards in the cluster."""
        return len(self.per_shard)

    @property
    def n_triples(self) -> int:
        """Total OKB triples across every shard."""
        return sum(stats.n_triples for stats in self.per_shard)

    def to_dict(self) -> dict:
        """JSON-safe payload nesting every shard's engine stats."""
        payload = _envelope(self.TYPE)
        payload.update(
            router=self.router,
            per_shard=[stats.to_dict() for stats in self.per_shard],
            n_ingests=self.n_ingests,
        )
        return payload

    @classmethod
    def from_dict(cls, payload: object) -> ClusterStats:
        """Inverse of :meth:`to_dict` (envelope-validated)."""
        payload = check_envelope(payload, cls.TYPE)
        with _parsing(cls.TYPE):
            return cls(
                router=str(_require(payload, "router", cls.TYPE)),
                per_shard=tuple(
                    EngineStats.from_dict(entry)
                    for entry in _require(payload, "per_shard", cls.TYPE)
                ),
                n_ingests=int(payload.get("n_ingests", 0)),
            )


def merge_shard_outputs(
    reports: tuple[EngineReport, ...],
) -> tuple[CanonicalizationResult, LinkingResult]:
    """Merge per-shard decodings into cluster-wide views.

    The documented, deterministic total order: shards are visited in
    ascending shard index.  Clusters concatenate; a surface form already
    claimed by an earlier shard is dropped from later shards' groups
    (and its later link entries are ignored), so the merged clustering
    stays a partition and the merged link map has one entry per phrase —
    *lowest shard index wins*.  On vocabulary-disjoint shards (the
    regime the routers maintain) no conflict exists and the merge is a
    plain union.  ``iterations`` is the slowest shard; ``converged``
    only if every shard converged.
    """
    kinds = ("S", "P", "O")
    claimed: dict[str, set[str]] = {kind: set() for kind in kinds}
    groups: dict[str, list[frozenset[str]]] = {kind: [] for kind in kinds}
    links: dict[str, dict[str, str | None]] = {kind: {} for kind in kinds}
    iterations = 0
    converged = True
    for report in reports:
        iterations = max(iterations, report.iterations)
        converged = converged and report.converged
        for kind in kinds:
            seen = claimed[kind]
            for group in report.canonicalization.clusters[kind].groups:
                fresh = frozenset(member for member in group if member not in seen)
                if fresh:
                    groups[kind].append(fresh)
                    seen |= fresh
            for phrase, target in report.linking.links[kind].items():
                links[kind].setdefault(phrase, target)
    canonicalization = CanonicalizationResult(
        clusters={kind: Clustering(groups[kind]) for kind in kinds},
        iterations=iterations,
        converged=converged,
    )
    linking = LinkingResult(
        links=links, iterations=iterations, converged=converged
    )
    return canonicalization, linking


@dataclass(frozen=True)
class ClusterReport:
    """The full response of :meth:`repro.cluster.ShardedEngine.run_joint`.

    Concatenates the per-shard :class:`~repro.api.results.EngineReport`
    payloads (``shards``, in shard order) and exposes the cluster-wide
    merged views (``canonicalization`` / ``linking``, derived by
    :func:`merge_shard_outputs`) plus :class:`ClusterStats`.

    Example::

        report = cluster.run_joint()
        print(report.canonicalization.np_clusters)   # cluster-wide groups
        print(report.shards[0].stats.n_triples)      # per-shard drill-down
    """

    TYPE = "cluster_report"

    shards: tuple[EngineReport, ...]
    canonicalization: CanonicalizationResult
    linking: LinkingResult
    stats: ClusterStats

    @property
    def n_shards(self) -> int:
        """Number of per-shard reports concatenated."""
        return len(self.shards)

    @property
    def iterations(self) -> int:
        """The slowest shard's LBP iteration count."""
        return self.canonicalization.iterations

    @property
    def converged(self) -> bool:
        """Whether every shard's LBP converged."""
        return self.canonicalization.converged

    @classmethod
    def from_shards(
        cls, shards: tuple[EngineReport, ...], stats: ClusterStats
    ) -> ClusterReport:
        """Assemble the report from per-shard engine reports."""
        canonicalization, linking = merge_shard_outputs(shards)
        return cls(
            shards=shards,
            canonicalization=canonicalization,
            linking=linking,
            stats=stats,
        )

    def to_dict(self, include_profile: bool = False) -> dict:
        """JSON-safe payload: the per-shard reports plus cluster stats.

        The merged views are *derived* state and deliberately excluded —
        :meth:`from_dict` recomputes them, so the wire payload cannot
        drift from its own definition of the merge order.
        """
        payload = _envelope(self.TYPE)
        payload["shards"] = [
            report.to_dict(include_profile=include_profile)
            for report in self.shards
        ]
        payload["stats"] = self.stats.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: object) -> ClusterReport:
        """Inverse of :meth:`to_dict`; recomputes the merged views."""
        payload = check_envelope(payload, cls.TYPE)
        with _parsing(cls.TYPE):
            shards = tuple(
                EngineReport.from_dict(entry)
                for entry in _require(payload, "shards", cls.TYPE)
            )
            return cls.from_shards(
                shards,
                stats=ClusterStats.from_dict(
                    _require(payload, "stats", cls.TYPE)
                ),
            )
