"""The :class:`ShardedEngine`: N engines, one surface, global statistics.

A sharded cluster owns one :class:`repro.api.JOCLEngine` per shard and
re-exposes the engine surface — ``ingest`` / ``run_joint`` /
``canonicalize`` / ``link`` / ``resolve`` / ``resolve_many`` /
``save`` / ``load`` / ``stats`` — with three cluster-only behaviors:

**Routing.**  A pluggable :class:`~repro.cluster.router.ShardRouter`
places every ingested triple on exactly one shard (write path) and
narrows every mention query to the shards that can answer it (read
path, scatter/gather with a documented merge order).

**Shard-parallel execution.**  Per-shard ingest and per-shard joint
inference fan out over the shared executor machinery
(:func:`repro.runtime.pool.scatter`); each shard engine keeps its own
runtime (serial, partitioned, parallel or incremental — supplied by a
*factory*, since stateful runtimes are one-per-engine).

**Corpus-global statistics.**  The paper's ``f_idf`` signal weights
token overlap by corpus-wide word frequencies.  Splitting the OKB
would silently re-weight every similarity, so the cluster maintains
*one* pair of IDF tables spanning all shards
(:meth:`repro.okb.store.OpenKB.adopt_shared_idf`), folds new
vocabulary in exactly once cluster-wide, and broadcasts vocabulary
drift to every shard
(:meth:`repro.api.JOCLEngine.note_vocabulary_drift`) so incremental
runtimes invalidate precisely the components a remote shard's new
vocabulary can reach.  This is what makes a cluster whose router keeps
co-vocabulary evidence co-located (e.g.
:class:`~repro.cluster.router.VocabularyAffinityRouter` on
domain-partitioned streams) produce decisions *identical* to one big
engine over the union — the equivalence
``benchmarks/test_cluster_scaling.py`` gates in CI.

Build one through the fluent builder::

    cluster = (
        ShardedEngine.builder()
        .with_ckb(kb)
        .with_n_shards(4)
        .with_router(VocabularyAffinityRouter())
        .with_shard_triples(per_shard_triples)
        .with_runtime_factory(IncrementalRuntime)
        .build()
    )
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Iterable, Mapping, Sequence
from contextlib import nullcontext
from time import perf_counter
from typing import TYPE_CHECKING

from repro.api.engine import JOCLEngine, _resolve_kinds
from repro.api.errors import (
    CheckpointError,
    EngineBuildError,
    EngineStateError,
    IngestError,
    SchemaError,
    SchemaVersionError,
    UnknownMentionError,
)
from repro.api.results import (
    CanonicalizationResult,
    EngineReport,
    LinkingResult,
    ResolveResult,
)
from repro.ckb.anchors import AnchorStatistics
from repro.ckb.kb import CuratedKB
from repro.cluster.results import ClusterReport, ClusterStats, IngestReport
from repro.cluster.router import (
    HashShardRouter,
    ShardRouter,
    router_from_state,
)
from repro.clustering.clusters import Clustering
from repro.core.config import JOCLConfig
from repro.embeddings.base import WordEmbedding
from repro.okb.store import OpenKB
from repro.okb.triples import OIETriple
from repro.paraphrase.ppdb import ParaphraseDB
from repro.runtime.base import InferenceRuntime
from repro.runtime.pool import scatter
from repro.strings.idf import IdfStatistics
from repro.strings.tokenize import normalize_text

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.persist.store import StateStore

#: Version of the cluster manifest layout.  Bump on any change a
#: version-1 reader could not forward-fill.
CLUSTER_SCHEMA_VERSION = 1

_MANIFEST_TYPE = "cluster_manifest"

#: Document name the cluster manifest is stored under.
_MANIFEST_DOCUMENT = "cluster"


def _shard_namespace(index: int) -> str:
    return f"shard-{index:02d}"


class ClusterBuilder:
    """Fluent assembly of a :class:`ShardedEngine`.

    Mirrors :class:`repro.api.engine.EngineBuilder` one level up: every
    ``with_*`` returns the builder.  A CKB is mandatory; seed triples
    arrive either as one stream (:meth:`with_triples`, placed by the
    router) or pre-partitioned (:meth:`with_shard_triples`, one list per
    shard — the natural shape for tenant/domain-partitioned corpora).

    Example::

        cluster = (
            ShardedEngine.builder()
            .with_ckb(dataset.kb)
            .with_n_shards(2)
            .with_triples(dataset.test_triples)
            .build()
        )
    """

    def __init__(self) -> None:
        self._kb: CuratedKB | None = None
        self._config: JOCLConfig | None = None
        self._anchors: AnchorStatistics | None = None
        self._ppdb: ParaphraseDB | None = None
        self._embedding: WordEmbedding | None = None
        self._router: ShardRouter | None = None
        self._n_shards: int | None = None
        self._stream: list[OIETriple] = []
        self._shard_triples: list[list[OIETriple]] | None = None
        self._runtime_factory: Callable[[], InferenceRuntime] | None = None
        self._weights: Mapping | None = None
        self._max_workers: int | None = None

    def with_ckb(self, kb: CuratedKB) -> ClusterBuilder:
        """The curated KB every shard links against (required, shared)."""
        self._kb = kb
        return self

    def with_config(self, config: JOCLConfig) -> ClusterBuilder:
        """Hyper-parameters, applied to every shard engine."""
        self._config = config
        return self

    def with_anchors(self, anchors: AnchorStatistics) -> ClusterBuilder:
        """Anchor statistics, shared by every shard."""
        self._anchors = anchors
        return self

    def with_ppdb(self, ppdb: ParaphraseDB) -> ClusterBuilder:
        """Paraphrase database, shared by every shard."""
        self._ppdb = ppdb
        return self

    def with_embedding(self, embedding: WordEmbedding) -> ClusterBuilder:
        """Word embedding, shared by every shard."""
        self._embedding = embedding
        return self

    def with_router(self, router: ShardRouter) -> ClusterBuilder:
        """The placement policy (default: :class:`HashShardRouter`)."""
        if not isinstance(router, ShardRouter):
            raise EngineBuildError(
                f"with_router expects a ShardRouter, got "
                f"{type(router).__name__}"
            )
        self._router = router
        return self

    def with_n_shards(self, n_shards: int) -> ClusterBuilder:
        """How many shards the cluster owns (>= 1)."""
        if n_shards < 1:
            raise EngineBuildError(f"n_shards must be >= 1, got {n_shards}")
        self._n_shards = n_shards
        return self

    def with_triples(self, triples: Iterable[OIETriple]) -> ClusterBuilder:
        """Seed triples as one stream; the router places each one.

        May be called repeatedly; batches append.  Mutually exclusive
        with :meth:`with_shard_triples`.
        """
        self._stream.extend(triples)
        return self

    def with_shard_triples(
        self, shard_triples: Sequence[Iterable[OIETriple]]
    ) -> ClusterBuilder:
        """Seed triples with explicit placement: one iterable per shard.

        Fixes ``n_shards`` to ``len(shard_triples)`` unless
        :meth:`with_n_shards` says the same.  Mutually exclusive with
        :meth:`with_triples`.
        """
        self._shard_triples = [list(batch) for batch in shard_triples]
        return self

    def with_runtime_factory(
        self, runtime_factory: Callable[[], InferenceRuntime]
    ) -> ClusterBuilder:
        """How each shard builds its runtime (a class or zero-arg callable).

        A *factory*, not an instance: stateful runtimes
        (:class:`~repro.runtime.IncrementalRuntime`) are one-per-engine,
        so every shard must get its own.  Example:
        ``.with_runtime_factory(IncrementalRuntime)`` or
        ``.with_runtime_factory(lambda: ParallelRuntime(max_workers=2))``.
        """
        self._runtime_factory = runtime_factory
        return self

    def with_trained_weights(self, weights: Mapping) -> ClusterBuilder:
        """Install learned template weights on every shard engine."""
        self._weights = weights
        return self

    def with_max_workers(self, max_workers: int) -> ClusterBuilder:
        """Cap the shard fan-out pool (default: one worker per shard)."""
        if max_workers < 1:
            raise EngineBuildError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self._max_workers = max_workers
        return self

    # ------------------------------------------------------------------
    def build(self) -> ShardedEngine:
        """Validate the configuration and assemble the cluster."""
        if self._kb is None:
            raise EngineBuildError(
                "a cluster needs a curated KB: call with_ckb(...)"
            )
        if self._stream and self._shard_triples is not None:
            raise EngineBuildError(
                "with_triples and with_shard_triples are mutually "
                "exclusive: pass one stream for the router to place, or "
                "the explicit per-shard partition, not both"
            )
        router = self._router or HashShardRouter()
        # Triple ids must be unique cluster-wide (the invariant ingest
        # enforces later); per-shard engines can only check their own
        # slice, so a duplicate routed across two shards would otherwise
        # slip through where a single engine rejects it.
        try:
            seeds = JOCLEngine._validated_batch(
                self._stream
                if self._shard_triples is None
                else (t for batch in self._shard_triples for t in batch)
            )
        except IngestError as error:
            raise EngineBuildError(str(error)) from error
        seen_ids: set[str] = set()
        for triple in seeds:
            if triple.triple_id in seen_ids:
                raise EngineBuildError(
                    f"duplicate triple id {triple.triple_id!r}"
                )
            seen_ids.add(triple.triple_id)
        if self._shard_triples is not None:
            n_shards = len(self._shard_triples)
            if self._n_shards is not None and self._n_shards != n_shards:
                raise EngineBuildError(
                    f"with_n_shards({self._n_shards}) conflicts with the "
                    f"{n_shards} lists given to with_shard_triples"
                )
            if n_shards < 1:
                raise EngineBuildError(
                    "with_shard_triples needs at least one shard list"
                )
            placed = self._shard_triples
        else:
            n_shards = self._n_shards if self._n_shards is not None else 4
            # Route the stream against incrementally growing shard OKBs,
            # so affinity routing sees earlier placements.
            routing_okbs = [OpenKB(()) for _ in range(n_shards)]
            placed = [[] for _ in range(n_shards)]
            for triple in self._stream:
                index = router.route_triple(triple, routing_okbs)
                if not 0 <= index < n_shards:
                    raise EngineBuildError(
                        f"router {router.name!r} routed triple "
                        f"{triple.triple_id!r} to shard {index}, outside "
                        f"0..{n_shards - 1}"
                    )
                placed[index].append(triple)
                routing_okbs[index].extend([triple])
        engines = []
        for shard_triples in placed:
            shard = JOCLEngine.builder().with_ckb(self._kb)
            if self._config is not None:
                shard = shard.with_config(self._config)
            if self._anchors is not None:
                shard = shard.with_anchors(self._anchors)
            if self._ppdb is not None:
                shard = shard.with_ppdb(self._ppdb)
            if self._embedding is not None:
                shard = shard.with_embedding(self._embedding)
            if self._weights is not None:
                shard = shard.with_trained_weights(self._weights)
            if self._runtime_factory is not None:
                runtime = self._runtime_factory()
                if not isinstance(runtime, InferenceRuntime):
                    raise EngineBuildError(
                        f"runtime factory returned "
                        f"{type(runtime).__name__}, not an InferenceRuntime"
                    )
                shard = shard.with_runtime(runtime)
            engines.append(shard.with_triples(shard_triples).build())
        return ShardedEngine(
            engines=engines,
            router=router,
            max_workers=self._max_workers,
        )


class _RoutingView:
    """A shard's OKB plus the triples already routed to it this batch.

    Routing a batch must see its own earlier placements (exactly like
    the builder's stream routing) — otherwise a batched ingest of a
    brand-new domain would scatter across shards on the affinity
    router's cold tie-break instead of co-locating, and placement would
    depend on how the stream happens to be chopped into batches.
    Exposes the OKB query surface routers use.
    """

    __slots__ = ("_base", "_overlay")

    def __init__(self, base: OpenKB) -> None:
        self._base = base
        self._overlay = OpenKB(())

    def add(self, triple: OIETriple) -> None:
        self._overlay.extend([triple])

    def np_frequency(self, phrase: str) -> int:
        return self._base.np_frequency(phrase) + self._overlay.np_frequency(
            phrase
        )

    def rp_frequency(self, phrase: str) -> int:
        return self._base.rp_frequency(phrase) + self._overlay.rp_frequency(
            phrase
        )

    def np_mentions(self, phrase: str):
        return self._base.np_mentions(phrase) + self._overlay.np_mentions(
            phrase
        )

    def rp_mentions(self, phrase: str):
        return self._base.rp_mentions(phrase) + self._overlay.rp_mentions(
            phrase
        )


def _empty_report(shard) -> EngineReport:
    """The report of a shard whose OKB holds no triples yet.

    Vacuously converged, so one cold shard does not mark the whole
    cluster report unconverged.  ``shard`` is any view exposing
    ``stats()`` (an engine, or a session proxy).
    """
    kinds = ("S", "P", "O")
    return EngineReport(
        canonicalization=CanonicalizationResult(
            clusters={kind: Clustering(()) for kind in kinds}, converged=True
        ),
        linking=LinkingResult(
            links={kind: {} for kind in kinds}, converged=True
        ),
        stats=shard.stats(),
    )


def _merge_rank(result: ResolveResult, shard_index: int):
    """Sort key of the documented scatter/gather total order."""
    top_score = result.candidates[0][1] if result.candidates else float("-inf")
    return (
        0 if result.target is not None else 1,
        -top_score,
        -len(result.cluster),
        shard_index,
    )


class ShardedEngine:
    """A horizontally sharded JOCL cluster behind the engine surface.

    Construct through :meth:`ShardedEngine.builder` (or restore through
    :meth:`ShardedEngine.load`); see the module docstring for the
    design.  Like :class:`~repro.api.JOCLEngine`, a bare cluster is safe
    for concurrent *reads* but needs a session layer
    (:class:`repro.serving.JOCLClusterService`) for coherent
    reads-during-writes semantics.

    Example::

        cluster = (
            ShardedEngine.builder()
            .with_ckb(dataset.kb)
            .with_n_shards(4)
            .with_triples(dataset.test_triples)
            .build()
        )
        report = cluster.run_joint()         # shard-parallel, merged
        answer = cluster.resolve("umd")      # scatter/gather
        cluster.ingest(arrival_batch)        # routed, shard-parallel
    """

    def __init__(
        self,
        engines: Sequence[JOCLEngine],
        router: ShardRouter,
        max_workers: int | None = None,
        _n_ingests: int = 0,
    ) -> None:
        if not engines:
            raise EngineBuildError("a cluster needs at least one shard")
        self._engines = list(engines)
        self._router = router
        self._max_workers = max_workers
        self._n_ingests = _n_ingests
        # Serializes cluster-level ingests with each other: routing, the
        # shared-IDF fold and the drift broadcast mutate cluster-global
        # state.  Per-shard readers are unaffected (they take no cluster
        # lock); the per-shard session locks of JOCLClusterService keep
        # reads coherent against the per-shard writes underneath.
        self._ingest_lock = threading.Lock()
        # Cluster-global IDF: one table pair spanning every shard, with
        # each distinct surface form counted exactly once cluster-wide —
        # precisely what a single merged OpenKB would hold.
        self._np_idf = IdfStatistics()
        self._rp_idf = IdfStatistics()
        self._np_vocab: set[str] = set()
        self._rp_vocab: set[str] = set()
        for engine in self._engines:
            okb = engine.okb
            new_nps = [
                phrase
                for phrase in okb.noun_phrases
                if phrase not in self._np_vocab
            ]
            new_rps = [
                phrase
                for phrase in okb.relation_phrases
                if phrase not in self._rp_vocab
            ]
            self._np_idf.update(new_nps)
            self._rp_idf.update(new_rps)
            self._np_vocab.update(new_nps)
            self._rp_vocab.update(new_rps)
            okb.adopt_shared_idf(self._np_idf, self._rp_idf)

    @classmethod
    def builder(cls) -> ClusterBuilder:
        """Start a fluent :class:`ClusterBuilder` chain."""
        return ClusterBuilder()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        """How many shards the cluster owns."""
        return len(self._engines)

    @property
    def shards(self) -> tuple[JOCLEngine, ...]:
        """The shard engines, in shard order (read-only view)."""
        return tuple(self._engines)

    @property
    def router(self) -> ShardRouter:
        """The placement policy routing triples and mention queries."""
        return self._router

    @property
    def n_ingests(self) -> int:
        """Cluster-level ingest batches absorbed so far."""
        return self._n_ingests

    def stats(self) -> ClusterStats:
        """Per-shard engine stats plus cluster totals.

        Example::

            stats = cluster.stats()
            assert stats.n_triples == sum(
                s.n_triples for s in stats.per_shard
            )
        """
        return ClusterStats(
            router=self._router.name,
            per_shard=tuple(engine.stats() for engine in self._engines),
            n_ingests=self._n_ingests,
        )

    def last_profiles(self):
        """Per-shard :class:`~repro.api.results.ExecutionProfile` of the
        most recent inference (``None`` entries for shards that have not
        inferred yet), in shard order."""
        return [engine.last_profile() for engine in self._engines]

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(self, triples: Iterable[OIETriple]) -> IngestReport:
        """Route a batch across the shards and ingest shard-parallel.

        Each triple is placed on exactly one shard by the router; the
        per-shard batches then run the engines' incremental
        :meth:`~repro.api.JOCLEngine.ingest` concurrently on the shared
        executor pool.  Before any shard ingests, vocabulary that is new
        *cluster-wide* is folded once into the global IDF tables and
        broadcast to every shard as drift
        (:meth:`~repro.api.JOCLEngine.note_vocabulary_drift`), so shards
        that received no triples still invalidate exactly the components
        the re-weighted token statistics can reach.

        The batch is validated as a whole (triple ids must be new to the
        *cluster*, not just to their target shard); on
        :class:`~repro.api.errors.IngestError` no shard changes.
        Returns the routed :class:`~repro.cluster.results.IngestReport`.

        Example::

            report = cluster.ingest(batch)
            print(report.per_shard)   # e.g. (0, 12, 0, 3)
        """
        return self.ingest_with(self._engines, triples)

    def ingest_with(
        self,
        shards: Sequence,
        triples: Iterable[OIETriple],
        exclusive_all: Callable | None = None,
    ) -> IngestReport:
        """:meth:`ingest` through caller-supplied shard views.

        ``shards`` must expose ``okb``, ``ingest(batch)`` and
        ``note_vocabulary_drift(new_nps, new_rps)`` for each shard, in
        shard order — normally the engines themselves; a session layer
        (:class:`repro.serving.JOCLClusterService`) passes proxies that
        wrap each ingest in that shard's writer lock (plus an
        ``ingest_exclusive(batch)`` hook bypassing the lock for the
        already-excluded vocabulary-drift path), so cluster-level
        routing and IDF bookkeeping stay here in one place.
        ``exclusive_all``, when given, is a zero-arg context
        manager factory excluding *every* shard's readers and writers;
        the shared-IDF fold and the drift broadcast run inside it, so
        no concurrent decode can observe the corpus-global tables
        mid-update (the session layer supplies its all-shards writer
        lock; the bare engine runs without one, matching its
        reads-only concurrency contract).
        """
        with self._ingest_lock:
            return self._ingest_locked(shards, triples, exclusive_all)

    def _ingest_locked(
        self,
        shards: Sequence,
        triples: Iterable[OIETriple],
        exclusive_all: Callable | None,
    ) -> IngestReport:
        start = perf_counter()
        batch = JOCLEngine._validated_batch(triples)
        okbs = [shard.okb for shard in shards]
        seen: set[str] = set()
        for triple in batch:
            if triple.triple_id in seen:
                raise IngestError(f"duplicate triple id {triple.triple_id!r}")
            seen.add(triple.triple_id)
            for okb in okbs:
                if okb.has_triple(triple.triple_id):
                    raise IngestError(
                        f"duplicate triple id {triple.triple_id!r}"
                    )
        per_shard: list[list[OIETriple]] = [[] for _ in shards]
        # Route against views that include the batch's own earlier
        # placements, matching the builder's stream routing.
        routing_views = [_RoutingView(okb) for okb in okbs]
        for triple in batch:
            index = self._router.route_triple(triple, routing_views)
            if not 0 <= index < len(shards):
                raise IngestError(
                    f"router {self._router.name!r} routed triple "
                    f"{triple.triple_id!r} to shard {index}, outside "
                    f"0..{len(shards) - 1}"
                )
            per_shard[index].append(triple)
            routing_views[index].add(triple)
        # Cluster-new vocabulary (computed against the vocab sets, which
        # only this _ingest_lock-holding thread mutates).
        new_nps: list[str] = []
        new_rps: list[str] = []
        seen_nps: set[str] = set()
        seen_rps: set[str] = set()
        for triple in batch:
            for phrase in (triple.subject_norm, triple.object_norm):
                if phrase not in self._np_vocab and phrase not in seen_nps:
                    seen_nps.add(phrase)
                    new_nps.append(phrase)
            predicate = triple.predicate_norm
            if predicate not in self._rp_vocab and predicate not in seen_rps:
                seen_rps.add(predicate)
                new_rps.append(predicate)
        if new_nps or new_rps:
            # New vocabulary re-weights the corpus-global IDF tables,
            # which every shard's decode reads lock-free — so the fold,
            # the drift broadcast AND the per-shard ingests must appear
            # atomically: a reader must never observe post-batch word
            # weights against a pre-batch OKB (an answer matching no
            # serial schedule).  The whole step runs with every shard
            # quiescent; per-shard ingests go through the views' raw
            # ``ingest_exclusive`` path because the caller already
            # holds each shard's writer lock.
            guard = (
                exclusive_all() if exclusive_all is not None else nullcontext()
            )
            with guard:
                self._np_vocab.update(new_nps)
                self._rp_vocab.update(new_rps)
                self._np_idf.update(new_nps)
                self._rp_idf.update(new_rps)
                # Through the shard views, so a session layer's swapped
                # (rolled-back) engines still receive the drift.
                for shard in shards:
                    shard.note_vocabulary_drift(new_nps, new_rps)
                self._scatter_ingests(shards, per_shard, locked=True)
        else:
            # No shared-statistics drift: per-shard ingests are
            # independent, every interleaving with readers is
            # per-shard serializable, so only the shards' own writer
            # locks (inside the views) are needed.
            self._scatter_ingests(shards, per_shard, locked=False)
        self._n_ingests += 1
        return IngestReport(
            router=self._router.name,
            per_shard=tuple(len(shard_batch) for shard_batch in per_shard),
            wall_time_s=perf_counter() - start,
        )

    def _scatter_ingests(
        self, shards: Sequence, per_shard: Sequence, locked: bool
    ) -> None:
        """Fan the non-empty per-shard batches out on the pool.

        ``locked=True`` means the caller already excluded every shard
        (the vocabulary-drift path), so the views' ``ingest_exclusive``
        hook — engine-level ingest without re-taking the session lock —
        is used where available; plain engines expose only ``ingest``,
        which is the same thing for them.
        """
        tasks = []
        for shard, shard_batch in zip(shards, per_shard, strict=True):
            if not shard_batch:
                continue
            ingest = (
                getattr(shard, "ingest_exclusive", shard.ingest)
                if locked
                else shard.ingest
            )
            tasks.append(
                lambda ingest=ingest, shard_batch=shard_batch: ingest(
                    shard_batch
                )
            )
        # The ingest lock is *deliberately* held across this fan-out:
        # it serializes whole cluster ingests, and the shard tasks only
        # take per-shard locks, which no pooled task re-enters.
        # repro: disable=SAN03 -- ingest lock ordering documented above
        scatter(tasks, max_workers=self._max_workers)

    # ------------------------------------------------------------------
    # Batch inference
    # ------------------------------------------------------------------
    def run_joint(self) -> ClusterReport:
        """Joint canonicalization + linking, shard-parallel.

        Every non-empty shard runs its engine's
        :meth:`~repro.api.JOCLEngine.run_joint` concurrently on the
        executor pool (each reusing its own cached decoding when it is
        still valid); empty shards contribute empty reports.  The
        per-shard reports concatenate under a
        :class:`~repro.cluster.results.ClusterReport` whose merged views
        follow the documented shard-order merge.

        Raises :class:`~repro.api.errors.EngineStateError` when *every*
        shard is empty.

        Example::

            report = cluster.run_joint()
            print(report.canonicalization.np_clusters)
        """
        return self.run_joint_with(self._engines, stats=self.stats())

    def run_joint_with(
        self, shards: Sequence, stats: ClusterStats
    ) -> ClusterReport:
        """:meth:`run_joint` through caller-supplied shard views.

        ``shards`` must expose ``okb``, ``run_joint()`` and ``stats()``
        in shard order — the engines themselves, or session proxies
        wrapping each call in that shard's read lock
        (:class:`repro.serving.JOCLClusterService`).  Keeps the
        empty-shard handling and the fan-out cap in one place for both
        callers.
        """
        if all(len(shard.okb) == 0 for shard in shards):
            raise EngineStateError(
                "every shard's OKB is empty; seed triples at build time "
                "or call ingest before running inference"
            )
        reports = scatter(
            [
                (
                    lambda shard=shard: shard.run_joint()
                    if len(shard.okb)
                    else _empty_report(shard)
                )
                for shard in shards
            ],
            max_workers=self._max_workers,
        )
        return ClusterReport.from_shards(tuple(reports), stats=stats)

    def canonicalize(self) -> CanonicalizationResult:
        """Cluster-wide canonicalization groups (shares the decodings)."""
        return self.run_joint().canonicalization

    def link(self) -> LinkingResult:
        """Cluster-wide linking decisions (shares the decodings)."""
        return self.run_joint().linking

    # ------------------------------------------------------------------
    # Serving-time queries
    # ------------------------------------------------------------------
    def resolve(self, mention: str, kind: str | None = None) -> ResolveResult:
        """Scatter/gather :meth:`~repro.api.JOCLEngine.resolve`.

        The router narrows the fan-out to the shards that actually
        mention the phrase (usually one); each candidate shard resolves
        against its own decoding and the answers merge under the
        documented total order — linked (non-NIL) answers beat NIL, then
        higher top retrieval score, then larger canonical cluster, then
        lower shard index.  Raises
        :class:`~repro.api.errors.UnknownMentionError` when no shard
        knows the mention.

        Example::

            answer = cluster.resolve("university of maryland")
            print(answer.target, answer.cluster)
        """
        merged = self.resolve_many([mention], kind)
        return merged[0]

    def resolve_many(
        self, mentions: Iterable[str], kind: str | None = None
    ) -> list[ResolveResult]:
        """Batched scatter/gather resolve (one sub-batch per shard).

        Answer-for-answer identical to calling :meth:`resolve` per
        mention, but each shard is visited once with all the mentions
        routed to it, amortizing the per-shard decoding and index
        lookups.  Like the engine's
        :meth:`~repro.api.JOCLEngine.resolve_many`, unknown mentions
        fail the whole batch (no partial results escape).

        Example::

            answers = cluster.resolve_many(["umd", "college park"])
        """
        return self.resolve_many_with(self._engines, mentions, kind)

    def resolve_many_with(
        self,
        shards: Sequence,
        mentions: Iterable[str],
        kind: str | None = None,
    ) -> list[ResolveResult]:
        """:meth:`resolve_many` through caller-supplied shard views.

        ``shards`` must expose ``okb`` and ``resolve_many(mentions,
        kind)`` in shard order — the engines themselves, or session
        proxies serving each sub-batch under that shard's read lock.
        Keeps the routing, per-shard batching and the documented merge
        order in one place for both callers.
        """
        mentions = list(mentions)
        requests = [normalize_text(mention) for mention in mentions]
        kinds = _resolve_kinds(kind) if kind is not None else ("S", "P", "O")
        okbs = [shard.okb for shard in shards]
        candidate_lists: list[tuple[int, ...]] = []
        for raw, phrase in zip(mentions, requests, strict=True):
            candidates = self._router.candidate_shards(phrase, kinds, okbs)
            if not candidates:
                raise UnknownMentionError(raw, kind)
            candidate_lists.append(candidates)
        # One sub-batch per shard, preserving request order within it.
        per_shard: dict[int, list[int]] = {}
        for position, candidates in enumerate(candidate_lists):
            for shard_index in candidates:
                per_shard.setdefault(shard_index, []).append(position)
        shard_indices = sorted(per_shard)
        answer_sets = scatter(
            [
                (
                    lambda shard_index=shard_index: shards[
                        shard_index
                    ].resolve_many(
                        [requests[p] for p in per_shard[shard_index]], kind
                    )
                )
                for shard_index in shard_indices
            ],
            max_workers=self._max_workers,
        )
        by_position: dict[int, list[tuple[int, ResolveResult]]] = {}
        for shard_index, answers in zip(shard_indices, answer_sets, strict=True):
            for position, answer in zip(per_shard[shard_index], answers, strict=True):
                by_position.setdefault(position, []).append(
                    (shard_index, answer)
                )
        merged: list[ResolveResult] = []
        for position in range(len(requests)):
            ranked = sorted(
                by_position[position],
                key=lambda entry: _merge_rank(entry[1], entry[0]),
            )
            merged.append(ranked[0][1])
        return merged

    # ------------------------------------------------------------------
    # Durability (repro.persist)
    # ------------------------------------------------------------------
    def save(self, store: StateStore) -> dict:
        """Checkpoint the whole cluster into ``store``.

        Each shard engine saves a full
        :class:`~repro.persist.EngineState` snapshot into its own
        namespace (``shard-00``, ``shard-01``, ...), then a cluster
        manifest — topology, router configuration, per-shard snapshot
        ids, schema version — is committed as the store document
        ``"cluster"`` *last*, so a crash mid-save leaves the previous
        manifest pointing at the previous consistent set (shard
        namespaces never inherit the store's ``history`` cap, so no
        referenced snapshot can be pruned out from under the manifest).
        Only after the commit are shard snapshots no manifest can reach
        anymore garbage-collected, best-effort.  Returns the manifest
        payload (JSON-safe).

        Example::

            manifest = cluster.save(store)
            print(manifest["shards"])   # namespace + snapshot id per shard
        """
        entries = []
        for index, engine in enumerate(self._engines):
            namespace = _shard_namespace(index)
            snapshot = engine.save(store.namespace(namespace))
            entries.append({"namespace": namespace, "snapshot": snapshot})
        manifest = {
            "schema_version": CLUSTER_SCHEMA_VERSION,
            "type": _MANIFEST_TYPE,
            "n_shards": len(self._engines),
            "router": self._router.to_state(),
            "shards": entries,
            "n_ingests": self._n_ingests,
        }
        store.save_document(_MANIFEST_DOCUMENT, manifest)
        # GC: snapshot names order lexicographically by sequence, so
        # everything older than the just-committed reference is
        # unreachable by any manifest.  A crash anywhere in here only
        # leaves extra snapshots behind, never a dangling manifest.
        for entry in entries:
            shard_store = store.namespace(entry["namespace"])
            for old in shard_store.snapshots():
                if old >= entry["snapshot"]:
                    break
                try:
                    shard_store.drop_snapshot(old)
                except CheckpointError:
                    break  # store without GC support: retain everything
        return manifest

    @classmethod
    def load(
        cls,
        store: StateStore,
        *,
        router: ShardRouter | None = None,
        runtime_factory: Callable[[], InferenceRuntime] | None = None,
        embedding: WordEmbedding | None = None,
        max_workers: int | None = None,
    ) -> ShardedEngine:
        """Restore a cluster from the manifest committed by :meth:`save`.

        Every shard engine restores decision-identical and *warm* (see
        :meth:`repro.api.JOCLEngine.load`), the corpus-global IDF tables
        are rebuilt from the union of the restored shard vocabularies
        (bit-identical to the tables the saving cluster held), and the
        router is reconstructed from its manifest configuration —
        ``router`` / ``runtime_factory`` / ``embedding`` override the
        serialized specs for deployments using custom types.

        Example::

            cluster = ShardedEngine.load(store)
            report = cluster.run_joint()   # splices, no cold LBP
        """
        manifest = store.load_document(_MANIFEST_DOCUMENT)
        if not isinstance(manifest, Mapping):
            raise SchemaError(
                f"cluster manifest must be a mapping, got "
                f"{type(manifest).__name__}"
            )
        version = manifest.get("schema_version")
        if version != CLUSTER_SCHEMA_VERSION:
            raise SchemaVersionError(version, CLUSTER_SCHEMA_VERSION)
        if manifest.get("type") != _MANIFEST_TYPE:
            raise SchemaError(
                f"cluster manifest type {manifest.get('type')!r} does not "
                f"match expected {_MANIFEST_TYPE!r}"
            )
        entries = manifest.get("shards")
        if not isinstance(entries, list) or not entries:
            raise SchemaError(
                "cluster manifest is missing its shard list"
            )
        if router is None:
            try:
                router = router_from_state(manifest.get("router") or {})
            except ValueError as error:
                raise CheckpointError(
                    f"cluster router could not be restored: {error} "
                    f"(pass an explicit router= override)"
                ) from error
        engines = []
        for entry in entries:
            try:
                namespace = entry["namespace"]
                snapshot = entry["snapshot"]
            except (KeyError, TypeError) as error:
                raise SchemaError(
                    f"malformed cluster manifest shard entry {entry!r}: "
                    f"{error}"
                ) from error
            engines.append(
                JOCLEngine.load(
                    store.namespace(namespace),
                    snapshot,
                    runtime=(
                        runtime_factory() if runtime_factory is not None else None
                    ),
                    embedding=embedding,
                )
            )
        return cls(
            engines=engines,
            router=router,
            max_workers=max_workers,
            _n_ingests=int(manifest.get("n_ingests", 0)),
        )
