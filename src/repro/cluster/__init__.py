"""Horizontal scale-out: a sharded multi-engine JOCL cluster.

The paper closes Section 3.4 noting joint inference "can be extended to
a distributed version with a graph segmentation algorithm";
:mod:`repro.runtime` built that seam *inside* one engine (per-component
LBP), and this package extends it *across* engines: a
:class:`ShardedEngine` owns N :class:`repro.api.JOCLEngine` shards
behind the familiar engine surface, with

* a pluggable :class:`ShardRouter` placement policy
  (:class:`HashShardRouter` by default,
  :class:`VocabularyAffinityRouter` for domain-partitioned streams),
* scatter/gather ``resolve`` / ``resolve_many`` fanning out only to
  candidate shards and merging under a documented total order,
* shard-parallel ``ingest`` and ``run_joint`` on the shared executor
  machinery,
* cluster-global IDF statistics (so splitting the corpus does not
  silently re-weight the paper's ``f_idf`` signal), and
* ``save``/``load`` over the :class:`repro.persist.StateStore`
  contract — one namespaced snapshot per shard plus a cluster manifest,
  restoring warm and decision-identical.

Wrap a cluster in :class:`repro.serving.JOCLClusterService` for
concurrent sessions (per-shard reader/writer locks and micro-batching:
readers on shard A never block writers on shard B).

Quickstart::

    from repro.cluster import ShardedEngine, VocabularyAffinityRouter

    cluster = (
        ShardedEngine.builder()
        .with_ckb(dataset.kb)
        .with_n_shards(4)
        .with_router(VocabularyAffinityRouter())
        .with_triples(dataset.test_triples)
        .build()
    )
    report = cluster.run_joint()
    answer = cluster.resolve("university of maryland")
"""

from repro.cluster.engine import (
    CLUSTER_SCHEMA_VERSION,
    ClusterBuilder,
    ShardedEngine,
)
from repro.cluster.results import (
    ClusterReport,
    ClusterStats,
    IngestReport,
    merge_shard_outputs,
)
from repro.cluster.router import (
    HashShardRouter,
    ShardRouter,
    VocabularyAffinityRouter,
    router_from_state,
    stable_hash,
)

__all__ = [
    "CLUSTER_SCHEMA_VERSION",
    "ClusterBuilder",
    "ClusterReport",
    "ClusterStats",
    "HashShardRouter",
    "IngestReport",
    "ShardRouter",
    "ShardedEngine",
    "VocabularyAffinityRouter",
    "merge_shard_outputs",
    "router_from_state",
    "stable_hash",
]
