"""OKB linking accuracy (Section 4.1).

"Accuracy ... is calculated as the number of correctly linked NPs (RPs)
divided by the total number of all NPs (RPs)."  Gold may cover only a
sample of phrases (the NYTimes2018 protocol); unlabeled phrases are
excluded from the denominator.
"""

from __future__ import annotations

from collections.abc import Mapping


def linking_accuracy(
    predicted: Mapping[str, str | None],
    gold: Mapping[str, str],
) -> float:
    """Fraction of gold-labeled phrases linked to their gold target.

    Parameters
    ----------
    predicted:
        Phrase -> predicted CKB identifier (``None`` = abstained; counts
        as wrong, the phrase still has a gold target).
    gold:
        Phrase -> gold CKB identifier; defines the denominator.
    """
    if not gold:
        return 0.0
    correct = sum(
        1 for phrase, target in gold.items() if predicted.get(phrase) == target
    )
    return correct / len(gold)
