"""Macro, micro and pairwise clustering metrics (Galárraga et al. 2014).

Given a predicted clustering C and a gold clustering G over the same
items:

* **macro precision** — fraction of predicted clusters that are *pure*
  (all members share one gold cluster); macro recall swaps C and G.
* **micro precision** — ``(1/N) * Σ_c max_g |c ∩ g|``: each predicted
  cluster is credited with its best-matching gold cluster; micro recall
  swaps C and G.
* **pairwise precision** — fraction of predicted within-cluster pairs
  that are also gold within-cluster pairs; pairwise recall swaps C / G.

F1 is the harmonic mean; the paper's headline *average F1* is the mean
of the three F1 values.

When the predicted clustering covers items absent from the gold (the
sampled-gold protocol of NYTimes2018), the prediction is first projected
onto the gold item set.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clustering.clusters import Clustering


@dataclass(frozen=True)
class PRF:
    """A (precision, recall, F1) triple."""

    precision: float
    recall: float

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall (0 when both are 0)."""
        if self.precision + self.recall == 0.0:
            return 0.0
        return 2.0 * self.precision * self.recall / (self.precision + self.recall)


@dataclass(frozen=True)
class CanonicalizationReport:
    """All canonicalization metrics for one system on one dataset."""

    macro: PRF
    micro: PRF
    pairwise: PRF

    @property
    def average_f1(self) -> float:
        """The paper's summary metric: mean of the three F1 scores."""
        return (self.macro.f1 + self.micro.f1 + self.pairwise.f1) / 3.0

    def as_row(self) -> dict[str, float]:
        """Flat dict for table printing (matches the paper's columns)."""
        return {
            "macro_f1": self.macro.f1,
            "micro_f1": self.micro.f1,
            "pairwise_f1": self.pairwise.f1,
            "average_f1": self.average_f1,
        }


def _align(predicted: Clustering, gold: Clustering) -> Clustering:
    """Project ``predicted`` onto the gold item universe.

    Items the gold does not cover are dropped (sampled-gold protocol);
    gold items the prediction misses are added back as singletons so
    recall is still penalized.
    """
    projected = predicted.restricted_to(gold.items)
    missing = gold.items - projected.items
    if missing:
        groups = projected.groups + [frozenset((item,)) for item in missing]
        projected = Clustering(groups)
    return projected


def macro_scores(predicted: Clustering, gold: Clustering) -> PRF:
    """Macro precision/recall/F1 (cluster purity both ways)."""
    if not gold.items:
        return PRF(0.0, 0.0)
    predicted = _align(predicted, gold)
    return PRF(
        precision=_macro_one_way(predicted, gold),
        recall=_macro_one_way(gold, predicted),
    )


def _macro_one_way(from_clusters: Clustering, to_clusters: Clustering) -> float:
    groups = from_clusters.groups
    if not groups:
        return 0.0
    pure = 0
    for group in groups:
        members = iter(group)
        first = next(members)
        if first not in to_clusters:
            continue
        target = to_clusters.cluster_of(first)
        if all(member in target for member in members):
            pure += 1
    return pure / len(groups)


def micro_scores(predicted: Clustering, gold: Clustering) -> PRF:
    """Micro precision/recall/F1 (best-match overlap both ways)."""
    if not gold.items:
        return PRF(0.0, 0.0)
    predicted = _align(predicted, gold)
    return PRF(
        precision=_micro_one_way(predicted, gold),
        recall=_micro_one_way(gold, predicted),
    )


def _micro_one_way(from_clusters: Clustering, to_clusters: Clustering) -> float:
    total = sum(len(group) for group in from_clusters.groups)
    if total == 0:
        return 0.0
    credit = 0
    for group in from_clusters.groups:
        # Keyed by the target cluster itself (clusters partition the
        # items, so distinct clusters are never equal frozensets) — an
        # id()-keyed map here would group correctly but tie decisions
        # to allocation addresses.
        overlap: dict[frozenset, int] = {}
        for item in group:
            if item not in to_clusters:
                continue
            key = to_clusters.cluster_of(item)
            overlap[key] = overlap.get(key, 0) + 1
        credit += max(overlap.values(), default=0)
    return credit / total


def pairwise_scores(predicted: Clustering, gold: Clustering) -> PRF:
    """Pairwise precision/recall/F1 over within-cluster pairs."""
    if not gold.items:
        return PRF(0.0, 0.0)
    predicted = _align(predicted, gold)
    predicted_pairs = predicted.merged_pairs()
    gold_pairs = gold.merged_pairs()
    hits = len(predicted_pairs & gold_pairs)
    # Vacuous-truth convention: a side with no within-cluster pairs is
    # perfectly precise (resp. has perfect recall); this keeps the
    # precision/recall swap symmetry and makes self-evaluation exact.
    precision = hits / len(predicted_pairs) if predicted_pairs else 1.0
    recall = hits / len(gold_pairs) if gold_pairs else 1.0
    return PRF(precision=precision, recall=recall)


def evaluate_clustering(
    predicted: Clustering, gold: Clustering
) -> CanonicalizationReport:
    """All three metric families plus average F1 in one report."""
    return CanonicalizationReport(
        macro=macro_scores(predicted, gold),
        micro=micro_scores(predicted, gold),
        pairwise=pairwise_scores(predicted, gold),
    )
