"""Evaluation metrics used in the paper's experimental study (Section 4.1).

* :func:`macro_scores`, :func:`micro_scores`, :func:`pairwise_scores` —
  the three canonicalization metrics of Galárraga et al. (2014), each a
  (precision, recall, F1) triple.
* :func:`evaluate_clustering` / :class:`CanonicalizationReport` — all
  three at once plus the paper's *average F1* (mean of macro, micro and
  pairwise F1).
* :func:`linking_accuracy` — correctly linked phrases / total phrases,
  the OKB-linking measure.
"""

from repro.metrics.canonicalization import (
    CanonicalizationReport,
    PRF,
    evaluate_clustering,
    macro_scores,
    micro_scores,
    pairwise_scores,
)
from repro.metrics.linking import linking_accuracy

__all__ = [
    "CanonicalizationReport",
    "PRF",
    "evaluate_clustering",
    "linking_accuracy",
    "macro_scores",
    "micro_scores",
    "pairwise_scores",
]
