"""Distant-supervision relation categorizer (Stanford-KBP stand-in).

Stanford KBP's slot-filling model is trained by distant supervision:
sentence-level relation mentions are labeled by the KB facts their
entity pair participates in (Surdeanu et al. 2012, MIML-RE).  We
reproduce the same mechanism at the RP level:

1. For each relation phrase, collect the (subject NP, object NP) pairs
   it connects in the OKB.
2. Resolve those NPs to CKB entities by exact alias match (high
   precision, as distant supervision requires).
3. Vote: the RP maps to the CKB relation that explains the largest
   number of its resolved pairs (subject to a minimum evidence count).
4. Two RPs are equivalent — ``Sim_KBP = 1`` — when their mapped
   relations share a category.

Lexicalization matches are folded into the vote so RPs that literally
spell a relation's surface form ("worked for") map correctly even with
a single mention.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable

from repro.ckb.kb import CuratedKB
from repro.okb.normalize import morph_normalize
from repro.okb.triples import OIETriple


class RelationCategorizer:
    """Maps relation phrases to CKB relations / categories.

    Parameters
    ----------
    kb:
        The curated KB providing facts and relation categories.
    triples:
        The OKB triples used as distant-supervision evidence.
    min_votes:
        Minimum supporting facts for a distant-supervision mapping.
    """

    def __init__(
        self,
        kb: CuratedKB,
        triples: Iterable[OIETriple],
        min_votes: int = 1,
    ) -> None:
        self._kb = kb
        self._min_votes = min_votes
        #: Per-predicate distant-supervision vote counters; kept for the
        #: categorizer's lifetime so ingested triples update them in
        #: place instead of forcing a rebuild.
        self._votes: dict[str, Counter[str]] = {}
        self._mapping: dict[str, str] = {}
        self._ingest(triples)

    def extend(self, triples: Iterable[OIETriple]) -> frozenset[str]:
        """Incrementally absorb new distant-supervision evidence.

        Votes are strictly additive per triple, so updating the counters
        in place and re-deciding only the predicates the batch mentions
        leaves the categorizer *exactly* as if it had been rebuilt from
        the union — the ingest-equals-batch guarantee — at O(batch)
        instead of O(whole OKB) cost.

        Returns the predicates whose *mapping* actually changed (vote
        updates that do not flip the winning relation report nothing).
        """
        return self._ingest(triples)

    def _ingest(self, triples: Iterable[OIETriple]) -> frozenset[str]:
        affected: set[str] = set()
        for triple in triples:
            predicate = triple.predicate_norm
            affected.add(predicate)
            counter = self._votes.setdefault(predicate, Counter())
            # Lexicalization evidence: RP literally matches the relation.
            for relation_id in self._kb.relations_with_lexicalization(predicate):
                counter[relation_id] += 1
            normalized = morph_normalize(predicate)
            for relation_id in self._kb.relations_with_lexicalization(normalized):
                counter[relation_id] += 1
            # Distant supervision: subject/object resolve to entities that
            # participate in a fact with some relation.
            subject_ids = self._kb.entities_with_alias(triple.subject_norm)
            object_ids = self._kb.entities_with_alias(triple.object_norm)
            for subject_id in subject_ids:
                for object_id in object_ids:
                    for relation_id in self._kb.relations_between(
                        subject_id, object_id
                    ):
                        counter[relation_id] += 1
        changed: set[str] = set()
        for predicate in affected:
            counter = self._votes[predicate]
            winner: str | None = None
            if counter:
                relation_id, count = max(
                    counter.items(), key=lambda item: (item[1], item[0])
                )
                if count >= self._min_votes:
                    winner = relation_id
            if winner != self._mapping.get(predicate):
                changed.add(predicate)
                if winner is None:
                    self._mapping.pop(predicate, None)
                else:
                    self._mapping[predicate] = winner
        return frozenset(changed)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def relation_of(self, relation_phrase: str) -> str | None:
        """CKB relation id the RP maps to, or ``None`` when unmapped."""
        return self._mapping.get(relation_phrase.strip().lower())

    def category_of(self, relation_phrase: str) -> str | None:
        """Category of the mapped relation (falls back to relation id)."""
        relation_id = self.relation_of(relation_phrase)
        if relation_id is None:
            return None
        relation = self._kb.relation(relation_id)
        return relation.category or relation.relation_id

    def same_category(self, first: str, second: str) -> bool:
        """``Sim_KBP``: both RPs map and their categories coincide."""
        category_a = self.category_of(first)
        category_b = self.category_of(second)
        return category_a is not None and category_a == category_b

    def similarity(self, first: str, second: str) -> float:
        """``Sim_KBP`` as the paper's 0/1 score."""
        return 1.0 if self.same_category(first, second) else 0.0

    @property
    def min_votes(self) -> int:
        """Minimum distant-supervision votes required for a mapping."""
        return self._min_votes

    @property
    def mapped_phrases(self) -> frozenset[str]:
        """RPs with a distant-supervision mapping."""
        return frozenset(self._mapping)

    # ------------------------------------------------------------------
    # Persistence (repro.persist)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """JSON-safe snapshot: vote counters and the decided mapping."""
        return {
            "min_votes": self._min_votes,
            "votes": {
                predicate: dict(sorted(counter.items()))
                for predicate, counter in sorted(self._votes.items())
            },
            "mapping": dict(sorted(self._mapping.items())),
        }

    @classmethod
    def from_state(cls, kb: CuratedKB, payload: dict) -> RelationCategorizer:
        """Inverse of :meth:`to_state`; the CKB is supplied by the caller."""
        categorizer = cls(kb, (), min_votes=int(payload["min_votes"]))
        categorizer._votes = {
            predicate: Counter(
                {relation_id: int(count) for relation_id, count in counts.items()}
            )
            for predicate, counts in payload["votes"].items()
        }
        categorizer._mapping = dict(payload["mapping"])
        return categorizer
