"""Relation categorizer substrate (the paper's Stanford KBP role).

Section 3.1.4: "Stanford KBP can link a RP to a relation in a CKB.  If
the relations of two RPs fall in the same category, these two RPs are
considered as equivalent."  :class:`RelationCategorizer` reproduces that
consumable with distant supervision against the CKB.
"""

from repro.kbp.categorizer import RelationCategorizer

__all__ = ["RelationCategorizer"]
