"""Test-time concurrency diagnostics for the serving/cluster stack.

The package pairs with the static analyzers (``tools/analyzers``): the
LOCK checker proves what it can about lock discipline from source, and
exports its guarded-by map (``--emit-lock-model``); this runtime
sanitizer (:func:`lock_sanitizer`) enforces the *same* map on live
objects under real thread interleavings, and adds the checks that need
execution — lock-order cycles across distinct call paths (``SAN01``),
guarded-state mutations on concrete instances (``SAN02``), and locks
held across blocking pool fan-outs (``SAN03``).

This is a diagnostics layer, not part of the serving data path: nothing
in ``repro`` imports it at runtime, and with the sanitizer inactive the
patched constructors are never installed.  Enable it in the test suites
with ``REPRO_SANITIZE_LOCKS=1`` (see :mod:`.pytest_support`).

Example::

    from repro.diagnostics import lock_sanitizer

    with lock_sanitizer(model="lock-model.json") as sanitizer:
        exercise_service_under_threads()
    assert sanitizer.findings == []
"""

from repro.diagnostics.model import (
    LOCK_MODEL_VERSION,
    GuardedClassSpec,
    LockModel,
    LockModelError,
    load_lock_model,
)
from repro.diagnostics.report import (
    SAN01,
    SAN02,
    SAN03,
    SANITIZER_CODES,
    SanitizerFinding,
    format_findings,
)
from repro.diagnostics.sanitizer import (
    LockSanitizer,
    SanitizerError,
    lock_sanitizer,
)

__all__ = [
    "GuardedClassSpec",
    "LOCK_MODEL_VERSION",
    "LockModel",
    "LockModelError",
    "LockSanitizer",
    "SAN01",
    "SAN02",
    "SAN03",
    "SANITIZER_CODES",
    "SanitizerError",
    "SanitizerFinding",
    "format_findings",
    "load_lock_model",
    "lock_sanitizer",
]
