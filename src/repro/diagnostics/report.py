"""Sanitizer findings: record shape, output formats, suppressions.

The runtime sanitizer reports through the same conventions as the
static analyzers (``tools/analyzers``): findings are ``(path, line,
code, message)`` records, rendered as ``path:line: CODE message`` text
or ``::error`` GitHub workflow commands, and silenced by the exact
same ``# repro: disable=CODE`` comment syntax — a site that is fine to
hold a lock across a fan-out carries one reviewable justification that
both the static checker and the sanitizer honor.

The suppression scanner is deliberately re-implemented here rather
than imported: ``tools/`` is repo tooling, not part of the installed
``repro`` package, so ``src/`` must never import it.  The syntax and
semantics mirror ``tools.analyzers.core.Suppressions`` line for line
(same-line directive, standalone directive applying to the next code
line, ``disable-file=``, the ``all`` keyword).
"""

from __future__ import annotations

import re
from collections.abc import Iterable
from dataclasses import dataclass
from functools import lru_cache

#: Lock-order cycle (potential ABBA deadlock), including the
#: descending-shard-order special case.
SAN01 = "SAN01"
#: Guarded attribute mutated without its owning lock held.
SAN02 = "SAN02"
#: Lock held across a blocking submit to the shared fan-out pool.
SAN03 = "SAN03"

#: Every code the sanitizer can emit.
SANITIZER_CODES = (SAN01, SAN02, SAN03)

#: ``# repro: disable=CODE1,CODE2 [-- justification]`` — kept in sync
#: with ``tools.analyzers.core._DISABLE``.
_DISABLE = re.compile(
    r"#\s*repro:\s*disable(?P<scope>-file)?\s*=\s*"
    r"(?P<codes>[A-Za-z0-9_,\s]+?)(?:\s*(?:--.*)?)?$"
)

_COMMENT_ONLY = re.compile(r"^\s*#")


@dataclass(frozen=True, order=True)
class SanitizerFinding:
    """One runtime finding, anchored to the source line that acted.

    Structurally identical to the static analyzers'
    ``tools.analyzers.core.Finding`` so both render through the same
    CI annotation machinery.
    """

    path: str
    line: int
    code: str
    message: str


def format_findings(
    findings: Iterable[SanitizerFinding], fmt: str = "text"
) -> list[str]:
    """Render findings as ``text`` lines or ``github`` annotations."""
    lines = []
    for finding in sorted(findings):
        if fmt == "github":
            lines.append(
                f"::error file={finding.path},line={finding.line},"
                f"title={finding.code}::{finding.message}"
            )
        else:
            lines.append(
                f"{finding.path}:{finding.line}: {finding.code} "
                f"{finding.message}"
            )
    return lines


@lru_cache(maxsize=512)
def _file_suppressions(
    abs_path: str,
) -> tuple[frozenset[str], dict[int, frozenset[str]]]:
    """``(file_wide_codes, line -> codes)`` parsed from one source file.

    Cached per path: sources do not change during a test run, and the
    sanitizer may consult the same file on every mutation.
    """
    try:
        with open(abs_path, encoding="utf-8") as handle:
            source = handle.read()
    except (OSError, UnicodeDecodeError):
        return frozenset(), {}
    file_wide: set[str] = set()
    by_line: dict[int, set[str]] = {}
    lines = source.splitlines()
    for number, text in enumerate(lines, start=1):
        comment = text.partition("#")[2]
        if not comment:
            continue
        match = _DISABLE.search("#" + comment)
        if match is None:
            continue
        codes = {
            code.strip().upper()
            for code in match.group("codes").split(",")
            if code.strip()
        }
        if not codes:
            continue
        if match.group("scope"):
            file_wide |= codes
            continue
        target = number
        if _COMMENT_ONLY.match(text):
            target = _next_code_line(lines, number)
        by_line.setdefault(target, set()).update(codes)
    return frozenset(file_wide), {
        line: frozenset(codes) for line, codes in by_line.items()
    }


def _next_code_line(lines: list[str], after: int) -> int:
    """First line after ``after`` (1-based) that is not blank/comment."""
    for number in range(after + 1, len(lines) + 1):
        text = lines[number - 1]
        if text.strip() and not _COMMENT_ONLY.match(text):
            return number
    return after


def suppressed_at(abs_path: str, line: int, code: str) -> bool:
    """Whether a finding of ``code`` at ``abs_path:line`` is silenced."""
    file_wide, by_line = _file_suppressions(abs_path)
    for scope in (file_wide, by_line.get(line, frozenset())):
        if code.upper() in scope or "ALL" in scope:
            return True
    return False
