"""The test-time concurrency sanitizer (``lock_sanitizer()``).

ThreadSanitizer-style dynamic checking for the serving/cluster stack,
active only inside the :func:`lock_sanitizer` context:

* ``threading.Lock`` / ``RLock`` / ``Condition`` *construction* inside
  repro code is patched to return instrumented wrappers that record
  per-thread acquisition stacks into one global lock-order graph;
* classes named by the static lock model (:mod:`.model`) get their
  ``__init__`` and ``__setattr__`` patched: locks are labeled with
  their owning attribute (``JOCLService._rw#0``, numbered in
  construction order — the shard order), and every mutation of a
  guarded attribute checks that one of its guard locks is held;
* guard classes that are not ``threading`` primitives (the serving
  layer's ``_ReadWriteLock``) have their ``read()``/``write()``/
  ``exclusive()`` context managers wrapped so they join the same
  held-stack bookkeeping;
* the shared fan-out pool (:func:`repro.runtime.pool.scatter`)
  notifies the sanitizer before blocking on a pool, catching locks
  held across a submit.

Findings (suppressable with the analyzers' ``# repro: disable=`` comment
syntax, see :mod:`.report`):

``SAN01``
    A lock acquisition closes a cycle in the lock-order graph — the
    classic ABBA pair, caught even when the interleaving never actually
    deadlocks — or acquires a same-group lock (same class+attribute)
    with a *lower* construction ordinal while holding a higher one,
    the runtime form of the cluster's ascending-shard-order rule.
``SAN02``
    A guarded attribute was mutated while none of its guard locks was
    held by the mutating thread.  The guarded-by map is the static
    LOCK checker's export, not a second hand-written list.
``SAN03``
    The thread entering a blocking pool fan-out holds tracked locks; a
    task needing any of them would deadlock the pool.

Overhead stays well under the ~3x budget on the stress suites: the
wrappers add a few dict operations per acquisition, the mutation check
is two dict lookups, and no tracebacks are captured — sites are read
off the live frame stack only when a finding is recorded.

Example::

    from repro.diagnostics import lock_sanitizer

    with lock_sanitizer() as sanitizer:
        a, b = sanitizer.Lock(), sanitizer.Lock()
        with a:
            with b:
                pass
        with b:
            with a:   # ABBA against the order recorded above
                pass
    assert [f.code for f in sanitizer.findings] == ["SAN01"]
"""

from __future__ import annotations

import contextlib
import functools
import importlib
import os
import sys
import threading
from collections.abc import Iterator, Mapping, Sequence
from contextlib import contextmanager
from typing import Any

from repro.diagnostics.model import (
    THREADING_CONSTRUCTORS,
    GuardedClassSpec,
    LockModel,
)
from repro.diagnostics.report import (
    SAN01,
    SAN02,
    SAN03,
    SanitizerFinding,
    suppressed_at,
)
from repro.runtime import pool as _pool

#: Real constructors, captured at import time so the sanitizer's own
#: bookkeeping (and wrapped inner locks) never recurse into the patch.
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock
_REAL_CONDITION = threading.Condition

#: Guard-class context-manager methods the sanitizer knows how to wrap.
_GUARD_METHODS = ("read", "write", "exclusive")

#: Files whose frames are bookkeeping, not user code: used to anchor
#: findings at the first *external* frame.
_INTERNAL_FILES = (
    os.path.dirname(os.path.abspath(__file__)) + os.sep,
    os.path.abspath(threading.__file__),
    os.path.abspath(contextlib.__file__),
    os.path.abspath(_pool.__file__),
)


class SanitizerError(RuntimeError):
    """The sanitizer cannot honor its configuration (e.g. a lock model
    naming a module or class that does not resolve)."""


class _LockInfo:
    """Registry entry for one tracked lock object."""

    __slots__ = ("key", "type_name", "ordinal", "label", "group", "seq")

    def __init__(self, key: int, type_name: str, ordinal: int) -> None:
        self.key = key
        self.type_name = type_name
        self.ordinal = ordinal
        self.label: str | None = None
        self.group: str | None = None
        self.seq: int | None = None

    @property
    def name(self) -> str:
        return self.label or f"{self.type_name}#{self.ordinal}"


class _SanitizedLock:
    """``threading.Lock`` wrapper feeding the sanitizer's held-stack."""

    def __init__(self, inner: Any, sanitizer: LockSanitizer) -> None:
        self._inner = inner
        self._sanitizer = sanitizer

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._sanitizer._note_acquire(self)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._sanitizer._push(self)
        return acquired

    def release(self) -> None:
        self._inner.release()
        self._sanitizer._pop(self)

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> _SanitizedLock:
        self.acquire()
        return self

    def __exit__(self, exc_type: Any, exc_value: Any, traceback: Any) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<sanitized {type(self._inner).__name__} {self._inner!r}>"


class _SanitizedRLock(_SanitizedLock):
    """Reentrant variant: every acquire pushes, every release pops, and
    reentrant acquisitions record no order edges (see ``_note_acquire``)."""


class _SanitizedCondition:
    """``threading.Condition`` wrapper; ``wait()`` releases the lock, so
    the held-stack entry is popped for the duration of the wait."""

    def __init__(self, inner: Any, sanitizer: LockSanitizer) -> None:
        self._inner = inner
        self._sanitizer = sanitizer

    def acquire(self, *args: Any) -> bool:
        self._sanitizer._note_acquire(self)
        acquired = self._inner.acquire(*args)
        if acquired:
            self._sanitizer._push(self)
        return acquired

    def release(self) -> None:
        self._inner.release()
        self._sanitizer._pop(self)

    def __enter__(self) -> _SanitizedCondition:
        self._sanitizer._note_acquire(self)
        self._inner.__enter__()
        self._sanitizer._push(self)
        return self

    def __exit__(self, exc_type: Any, exc_value: Any, traceback: Any) -> Any:
        self._sanitizer._pop(self)
        return self._inner.__exit__(exc_type, exc_value, traceback)

    def wait(self, timeout: float | None = None) -> bool:
        self._sanitizer._pop(self)
        try:
            return self._inner.wait(timeout)
        finally:
            self._sanitizer._push(self)

    def wait_for(self, predicate: Any, timeout: float | None = None) -> Any:
        self._sanitizer._pop(self)
        try:
            return self._inner.wait_for(predicate, timeout)
        finally:
            self._sanitizer._push(self)

    def notify(self, n: int = 1) -> None:
        self._inner.notify(n)

    def notify_all(self) -> None:
        self._inner.notify_all()


class _GuardContext:
    """Wraps a guard-class context manager (``_ReadWriteLock.read()``)
    so entering/leaving it maintains the held-stack for the *guard
    object itself* — one node per RW lock, whatever the mode."""

    __slots__ = ("_cm", "_lock", "_sanitizer")

    def __init__(self, cm: Any, lock: Any, sanitizer: LockSanitizer) -> None:
        self._cm = cm
        self._lock = lock
        self._sanitizer = sanitizer

    def __enter__(self) -> Any:
        self._sanitizer._note_acquire(self._lock)
        value = self._cm.__enter__()
        self._sanitizer._push(self._lock)
        return value

    def __exit__(self, exc_type: Any, exc_value: Any, traceback: Any) -> Any:
        self._sanitizer._pop(self._lock)
        return self._cm.__exit__(exc_type, exc_value, traceback)


class LockSanitizer:
    """The sanitizer state machine; use via :func:`lock_sanitizer`.

    Parameters
    ----------
    model:
        A :class:`~repro.diagnostics.model.LockModel` (or the payload
        dict / JSON path for one) exported by ``python -m
        tools.analyzers --emit-lock-model``.  Optional: without it the
        order graph (SAN01) and pool checks (SAN03) still run; the
        guarded-by checks (SAN02) need the map.
    extra:
        ``{cls: {"locks": {...}, "guarded": {...}}}`` — additional
        classes to instrument, resolved directly instead of through an
        import path.  Meant for test fixtures.
    module_prefixes:
        Dotted-module prefixes whose ``threading`` constructions are
        wrapped (default: repro code).  The sanitizer itself is always
        exempt.
    """

    def __init__(
        self,
        model: LockModel | Mapping[str, Any] | str | os.PathLike | None = None,
        extra: Mapping[type, Mapping[str, Any]] | None = None,
        module_prefixes: Sequence[str] = ("repro",),
    ) -> None:
        self._model = _coerce_model(model)
        self._extra = dict(extra or {})
        self._prefixes = tuple(module_prefixes)
        self._active = False
        self._mutex = _REAL_RLOCK()
        self._tls = threading.local()
        self._findings: list[SanitizerFinding] = []
        self._finding_keys: set[tuple[str, str, int]] = set()
        #: lock key -> {successor key: site} — the global order graph.
        self._graph: dict[int, dict[int, str]] = {}
        self._info: dict[int, _LockInfo] = {}
        self._refs: list[Any] = []  # keep ids stable while active
        self._group_counts: dict[str, int] = {}
        self._guard_classes: set[type] = set()
        self._undo: list[Any] = []

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------
    @property
    def findings(self) -> list[SanitizerFinding]:
        """Findings recorded so far (deduplicated per code and site)."""
        with self._mutex:
            return sorted(self._findings)

    def Lock(self) -> _SanitizedLock:
        """An instrumented ``threading.Lock`` (for fixtures and docs)."""
        return _SanitizedLock(_REAL_LOCK(), self)

    def RLock(self) -> _SanitizedRLock:
        """An instrumented ``threading.RLock``."""
        return _SanitizedRLock(_REAL_RLOCK(), self)

    def Condition(self) -> _SanitizedCondition:
        """An instrumented ``threading.Condition``."""
        return _SanitizedCondition(_REAL_CONDITION(), self)

    def label(self, lock: Any, group: str) -> None:
        """Label ``lock`` as the next member of ``group``.

        Members of one group (one class+attribute pair, e.g. per-shard
        session locks) are sequence-numbered in labeling order and must
        be acquired in ascending order when nested — the shard-order
        rule.  Instrumented classes are labeled automatically after
        ``__init__``; this is the manual hook for fixtures.
        """
        self._label(lock, group)

    def start(self) -> None:
        """Activate: patch constructors, model classes, the pool hook."""
        if self._active:
            return
        self._active = True
        self._patch_threading()
        for cls, spec in self._resolve_classes():
            self._patch_model_class(cls, spec)
            self._patch_spec_guard_classes(cls, spec)
        _pool._SCATTER_OBSERVERS.append(self._on_scatter)
        self._undo.append(
            lambda: _pool._SCATTER_OBSERVERS.remove(self._on_scatter)
        )

    def stop(self) -> None:
        """Deactivate and unpatch everything, in reverse patch order."""
        if not self._active:
            return
        self._active = False
        while self._undo:
            self._undo.pop()()
        self._guard_classes.clear()

    # ------------------------------------------------------------------
    # Model resolution and patching
    # ------------------------------------------------------------------
    def _resolve_classes(self) -> Iterator[tuple[type, GuardedClassSpec]]:
        for spec in self._model.specs if self._model else ():
            try:
                module = importlib.import_module(spec.module)
            except ImportError as error:
                raise SanitizerError(
                    f"lock model names module {spec.module!r} which does "
                    f"not import: {error}"
                ) from error
            obj: Any = module
            for part in spec.qualname.split("."):
                obj = getattr(obj, part, None)
            if not isinstance(obj, type):
                raise SanitizerError(
                    f"lock model names {spec.module}.{spec.qualname} "
                    f"which does not resolve to a class"
                )
            yield obj, spec
        for cls, payload in self._extra.items():
            yield (
                cls,
                GuardedClassSpec(
                    module=cls.__module__,
                    qualname=cls.__qualname__,
                    locks=dict(payload.get("locks", {})),
                    guarded={
                        attr: tuple(guards)
                        for attr, guards in dict(
                            payload.get("guarded", {})
                        ).items()
                    },
                ),
            )

    def _patch_threading(self) -> None:
        sanitizer = self

        def factory(real: Any, wrapper: type) -> Any:
            def construct(*args: Any, **kwargs: Any) -> Any:
                inner = real(*args, **kwargs)
                caller = sys._getframe(1).f_globals.get("__name__", "")
                if sanitizer._active and sanitizer._instruments(caller):
                    return wrapper(inner, sanitizer)
                return inner

            return construct

        originals = (threading.Lock, threading.RLock, threading.Condition)
        threading.Lock = factory(_REAL_LOCK, _SanitizedLock)
        threading.RLock = factory(_REAL_RLOCK, _SanitizedRLock)
        threading.Condition = factory(_REAL_CONDITION, _SanitizedCondition)

        def undo() -> None:
            threading.Lock, threading.RLock, threading.Condition = originals

        self._undo.append(undo)

    def _instruments(self, module: str) -> bool:
        if not module or module.startswith("repro.diagnostics"):
            return False
        return module.startswith(self._prefixes)

    def _patch_model_class(self, cls: type, spec: GuardedClassSpec) -> None:
        sanitizer = self
        init_in_dict = "__init__" in cls.__dict__
        setattr_in_dict = "__setattr__" in cls.__dict__
        current_init = cls.__init__
        current_setattr = cls.__setattr__

        @functools.wraps(current_init)
        def patched_init(instance: Any, *args: Any, **kwargs: Any) -> None:
            constructing = sanitizer._constructing()
            # repro: disable=DET02 -- runtime identity of a live object, never serialized or ordered
            constructing.append(id(instance))
            try:
                current_init(instance, *args, **kwargs)
            finally:
                constructing.pop()
            sanitizer._register_instance(instance, spec)

        def patched_setattr(instance: Any, name: str, value: Any) -> None:
            if sanitizer._active and name in spec.guarded:
                sanitizer._check_guarded_mutation(instance, spec, name)
            current_setattr(instance, name, value)

        cls.__init__ = patched_init  # type: ignore[method-assign]
        cls.__setattr__ = patched_setattr  # type: ignore[method-assign]

        def undo() -> None:
            if init_in_dict:
                cls.__init__ = current_init  # type: ignore[method-assign]
            else:
                del cls.__init__
            if setattr_in_dict:
                cls.__setattr__ = current_setattr  # type: ignore[method-assign]
            else:
                del cls.__setattr__

        self._undo.append(undo)

    def _patch_spec_guard_classes(
        self, cls: type, spec: GuardedClassSpec
    ) -> None:
        """Patch non-``threading`` guard classes (``_ReadWriteLock``) so
        even instances that predate the sanitizer are tracked."""
        module = sys.modules.get(cls.__module__)
        for constructor in set(spec.locks.values()):
            if constructor in THREADING_CONSTRUCTORS or module is None:
                continue
            guard_cls = getattr(module, constructor, None)
            if isinstance(guard_cls, type):
                self._patch_guard_class(guard_cls)

    def _patch_guard_class(self, guard_cls: type) -> None:
        if guard_cls in self._guard_classes:
            return
        self._guard_classes.add(guard_cls)
        sanitizer = self
        for method_name in _GUARD_METHODS:
            original = guard_cls.__dict__.get(method_name)
            if original is None or not callable(original):
                continue

            def make(original: Any) -> Any:
                @functools.wraps(original)
                def guard(lock_self: Any, *args: Any, **kwargs: Any) -> Any:
                    cm = original(lock_self, *args, **kwargs)
                    if not sanitizer._active:
                        return cm
                    return _GuardContext(cm, lock_self, sanitizer)

                return guard

            setattr(guard_cls, method_name, make(original))

            def undo(
                guard_cls: type = guard_cls,
                method_name: str = method_name,
                original: Any = original,
            ) -> None:
                setattr(guard_cls, method_name, original)

            self._undo.append(undo)

    def _register_instance(self, instance: Any, spec: GuardedClassSpec) -> None:
        if not self._active:
            return
        for attr in spec.locks:
            lock = getattr(instance, attr, None)
            if lock is not None:
                self._label(lock, f"{spec.qualname}.{attr}")

    # ------------------------------------------------------------------
    # Held-stack bookkeeping and the order graph
    # ------------------------------------------------------------------
    def _held(self) -> list[Any]:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = self._tls.held = []
        return held

    def _constructing(self) -> list[int]:
        constructing = getattr(self._tls, "constructing", None)
        if constructing is None:
            constructing = self._tls.constructing = []
        return constructing

    def _push(self, lock: Any) -> None:
        if self._active:
            self._held().append(lock)

    def _pop(self, lock: Any) -> None:
        held = self._held()
        for index in range(len(held) - 1, -1, -1):
            if held[index] is lock:
                del held[index]
                return

    def _ensure_info(self, lock: Any) -> _LockInfo:
        # Lock *identity* is the right key for a runtime registry: the
        # sanitizer pins a strong reference, ids stay unique while
        # active, and nothing keyed on them is serialized or ordered.
        # repro: disable=DET02 -- runtime identity of a pinned live lock
        key = id(lock)
        with self._mutex:
            info = self._info.get(key)
            if info is None:
                inner = getattr(lock, "_inner", lock)
                info = _LockInfo(key, type(inner).__name__, len(self._info))
                self._info[key] = info
                self._refs.append(lock)
            return info

    def _label(self, lock: Any, group: str) -> None:
        info = self._ensure_info(lock)
        with self._mutex:
            if info.label is not None:
                return
            seq = self._group_counts.get(group, 0)
            self._group_counts[group] = seq + 1
            info.group = group
            info.seq = seq
            info.label = f"{group}#{seq}"

    def _note_acquire(self, lock: Any) -> None:
        """Record intent to acquire: order edges from every held lock,
        cycle detection, and the same-group ordering rule.  Called
        *before* blocking, so a true deadlock still gets its finding."""
        if not self._active:
            return
        held = self._held()
        if any(entry is lock for entry in held):
            return  # reentrant (RLock/Condition): no new edges
        info = self._ensure_info(lock)
        site = None
        with self._mutex:
            for holder in held:
                held_info = self._ensure_info(holder)
                if site is None:
                    site = self._external_site()
                self._check_group_order(held_info, info, site)
                self._add_edge(held_info, info, site)

    def _check_group_order(
        self,
        held_info: _LockInfo,
        new_info: _LockInfo,
        site: tuple[str, str, int],
    ) -> None:
        if (
            held_info.group is None
            or held_info.group != new_info.group
            or held_info.seq is None
            or new_info.seq is None
            or held_info.seq <= new_info.seq
        ):
            return
        self._record(
            SAN01,
            site,
            f"{new_info.name} acquired while holding {held_info.name}: "
            f"same-group locks must be taken in ascending construction "
            f"(shard) order — every other acquirer walks shards upward",
        )

    def _add_edge(
        self,
        src: _LockInfo,
        dst: _LockInfo,
        site: tuple[str, str, int],
    ) -> None:
        successors = self._graph.setdefault(src.key, {})
        if dst.key in successors:
            return
        successors[dst.key] = f"{site[1]}:{site[2]}"
        cycle = self._find_path(dst.key, src.key)
        if cycle is None:
            return
        names = [self._info[key].name for key in [src.key, *cycle]]
        reverse_site = self._graph.get(dst.key, {}).get(src.key)
        where = f" (opposite order recorded at {reverse_site})" if reverse_site else ""
        self._record(
            SAN01,
            site,
            f"acquiring {dst.name} while holding {src.name} closes the "
            f"lock-order cycle {' -> '.join(names)} — potential ABBA "
            f"deadlock{where}",
        )

    def _find_path(self, start: int, goal: int) -> list[int] | None:
        """DFS path ``start -> ... -> goal`` in the order graph."""
        stack: list[tuple[int, list[int]]] = [(start, [start])]
        seen = {start}
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            for successor in self._graph.get(node, {}):
                if successor not in seen:
                    seen.add(successor)
                    stack.append((successor, path + [successor]))
        return None

    # ------------------------------------------------------------------
    # SAN02: guarded-state mutations
    # ------------------------------------------------------------------
    def _check_guarded_mutation(
        self, instance: Any, spec: GuardedClassSpec, name: str
    ) -> None:
        constructing = getattr(self._tls, "constructing", None)
        # repro: disable=DET02 -- runtime identity of a live object, never serialized or ordered
        if constructing and id(instance) in constructing:
            return
        guards = spec.guarded.get(name, ())
        held = self._held()
        checkable = False
        guard_locks = []
        for guard_attr in guards:
            lock = getattr(instance, guard_attr, None)
            if lock is None:
                continue
            if any(entry is lock for entry in held):
                return
            guard_locks.append(guard_attr)
            if self._tracked(lock):
                checkable = True
        if not checkable:
            # Every guard is an uninstrumented (pre-sanitizer) primitive:
            # acquisitions were invisible, so absence of evidence is not
            # evidence of absence.
            return
        self._record(
            SAN02,
            self._external_site(),
            f"{spec.qualname}.{name} mutated without holding "
            f"{' or '.join(guard_locks)} (guarded-by map exported by the "
            f"static LOCK checker)",
        )

    def _tracked(self, lock: Any) -> bool:
        if isinstance(
            lock, (_SanitizedLock, _SanitizedCondition)
        ):
            return True
        return type(lock) in self._guard_classes

    # ------------------------------------------------------------------
    # SAN03: blocking pool fan-out with locks held
    # ------------------------------------------------------------------
    def _on_scatter(self, n_tasks: int) -> None:
        if not self._active:
            return
        held = self._held()
        if not held:
            return
        names = sorted({self._ensure_info(lock).name for lock in held})
        self._record(
            SAN03,
            self._external_site(),
            f"blocking fan-out of {n_tasks} task(s) on the shared pool "
            f"while holding {', '.join(names)} — a task needing any of "
            f"these locks deadlocks the pool",
        )

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _external_site(self) -> tuple[str, str, int]:
        """``(abs_path, display_path, line)`` of the first frame outside
        the sanitizer/threading/pool plumbing."""
        frame = sys._getframe(2)
        while frame is not None:
            filename = os.path.abspath(frame.f_code.co_filename)
            if not _internal_file(filename):
                display = os.path.relpath(filename, os.getcwd())
                if display.startswith(".."):
                    display = filename
                return filename, display.replace(os.sep, "/"), frame.f_lineno
            frame = frame.f_back
        return "<unknown>", "<unknown>", 0

    def _record(
        self, code: str, site: tuple[str, str, int], message: str
    ) -> None:
        abs_path, display, line = site
        if suppressed_at(abs_path, line, code):
            return
        key = (code, display, line)
        with self._mutex:
            if key in self._finding_keys:
                return
            self._finding_keys.add(key)
            self._findings.append(
                SanitizerFinding(
                    path=display, line=line, code=code, message=message
                )
            )


def _internal_file(filename: str) -> bool:
    return any(
        filename.startswith(prefix) if prefix.endswith(os.sep)
        else filename == prefix
        for prefix in _INTERNAL_FILES
    )


def _coerce_model(
    model: LockModel | Mapping[str, Any] | str | os.PathLike | None,
) -> LockModel | None:
    if model is None or isinstance(model, LockModel):
        return model
    if isinstance(model, (str, os.PathLike)):
        return LockModel.from_json_file(model)
    return LockModel.from_payload(dict(model))


@contextmanager
def lock_sanitizer(
    model: LockModel | Mapping[str, Any] | str | os.PathLike | None = None,
    extra: Mapping[type, Mapping[str, Any]] | None = None,
    module_prefixes: Sequence[str] = ("repro",),
) -> Iterator[LockSanitizer]:
    """Run a block under the concurrency sanitizer; see the module
    docstring and :class:`LockSanitizer` for parameters.

    Example::

        with lock_sanitizer(model="lock-model.json") as sanitizer:
            run_stress_test()
        assert sanitizer.findings == []
    """
    sanitizer = LockSanitizer(
        model=model, extra=extra, module_prefixes=module_prefixes
    )
    sanitizer.start()
    try:
        yield sanitizer
    finally:
        sanitizer.stop()
