"""Opt-in pytest wiring for the concurrency sanitizer.

The test suites enable the sanitizer through one environment variable
rather than a pytest plugin, so plain ``pytest`` invocations (and the
benchmark harness, which has its own ``conftest``) need no registration
magic:

``REPRO_SANITIZE_LOCKS``
    unset / ``""`` / ``0``
        Sanitizer off (the default; zero overhead).
    ``1`` / ``text``
        Every test runs under :func:`~repro.diagnostics.lock_sanitizer`;
        findings fail the test, printed as ``path:line: CODE message``.
    ``github``
        Same, but findings are printed as ``::error`` workflow commands
        so CI annotates the offending source lines (the
        ``sanitized-stress`` job).

``REPRO_LOCK_MODEL``
    Path to a lock-model JSON previously exported with ``python -m
    tools.analyzers --emit-lock-model=PATH src``.  When unset, the
    model is exported once per process by running the analyzer in a
    subprocess (never by importing ``tools`` — repo tooling stays out
    of the ``repro`` package's import graph); if the repo checkout is
    not available (installed package), the sanitizer still runs the
    lock-order and pool checks, only the guarded-state map is skipped.

Both ``tests/conftest.py`` and ``benchmarks/conftest.py`` declare a thin
autouse fixture delegating to :func:`sanitized_test`.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
from collections.abc import Iterator
from contextlib import contextmanager
from pathlib import Path

from repro.diagnostics.model import LockModel, LockModelError, load_lock_model
from repro.diagnostics.report import format_findings
from repro.diagnostics.sanitizer import lock_sanitizer

_MODES = {"": None, "0": None, "off": None, "1": "text", "text": "text", "github": "github"}

#: Sentinel distinguishing "not built yet" from "built, unavailable".
_UNSET = object()
_session_model: object = _UNSET


def sanitizer_mode() -> str | None:
    """The requested output mode (``text``/``github``) or ``None`` (off).

    Unknown values enable the sanitizer in ``text`` mode rather than
    silently disabling it — an opt-in that looks set should never be a
    no-op.
    """
    value = os.environ.get("REPRO_SANITIZE_LOCKS", "").strip().lower()
    return _MODES.get(value, "text")


def session_lock_model() -> LockModel | None:
    """The lock model for this test process (built once, then cached)."""
    global _session_model
    if _session_model is _UNSET:
        _session_model = _build_model()
    return _session_model  # type: ignore[return-value]


def _build_model() -> LockModel | None:
    explicit = os.environ.get("REPRO_LOCK_MODEL")
    if explicit:
        return load_lock_model(explicit)
    repo_root = Path(__file__).resolve().parents[3]
    if not (repo_root / "tools" / "analyzers").is_dir():
        return None
    with tempfile.TemporaryDirectory(prefix="repro-lock-model-") as tmp:
        target = Path(tmp) / "lock-model.json"
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "tools.analyzers",
                f"--emit-lock-model={target}",
                "src",
            ],
            cwd=repo_root,
            capture_output=True,
            text=True,
        )
        if result.returncode != 0:
            raise LockModelError(
                f"lock-model export failed ({result.returncode}): "
                f"{result.stderr.strip() or result.stdout.strip()}"
            )
        return load_lock_model(target)


@contextmanager
def sanitized_test() -> Iterator[None]:
    """Wrap one test in the sanitizer when ``REPRO_SANITIZE_LOCKS`` asks.

    Findings are printed in the configured format and raised as an
    ``AssertionError`` so the enclosing test fails — from a fixture's
    teardown half, pytest reports that as a test error with the printed
    annotations right above it.
    """
    mode = sanitizer_mode()
    if mode is None:
        yield
        return
    with lock_sanitizer(model=session_lock_model()) as sanitizer:
        yield
    findings = sanitizer.findings
    if findings:
        for line in format_findings(findings, fmt=mode):
            print(line)
        raise AssertionError(
            f"concurrency sanitizer recorded {len(findings)} finding(s); "
            f"see the {', '.join(sorted({f.code for f in findings}))} "
            f"lines above"
        )
