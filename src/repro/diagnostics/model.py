"""The lock model: which attributes are locks, and who guards what.

The model is *exported by the static LOCK checker* (``python -m
tools.analyzers --emit-lock-model=PATH src``) — the call-graph
fixpoint that powers LOCK01 also computes, per lock-owning class,
which instance attributes are guarded by which locks.  The runtime
sanitizer loads that JSON and enforces the same map on live objects,
so the static and dynamic halves can never drift apart: there is one
source of truth, and it is the analyzed source itself.

Payload shape (``LOCK_MODEL_VERSION`` = 1)::

    {"version": 1, "classes": [{
        "module": "repro.serving.service",
        "qualname": "JOCLService",
        "locks": {"_rw": "_ReadWriteLock", "_stats_lock": "Lock"},
        "guarded": {"_engine": ["_rw"], "_writes": ["_stats_lock"]},
    }, ...]}
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

#: Kept in lockstep with ``tools.analyzers.lock.LOCK_MODEL_VERSION``.
LOCK_MODEL_VERSION = 1

#: Constructors from the ``threading`` module the sanitizer can wrap at
#: construction time; anything else is a guard class (``_ReadWriteLock``)
#: whose guard methods are patched instead.
THREADING_CONSTRUCTORS = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)


class LockModelError(ValueError):
    """A lock-model payload that cannot be parsed or has the wrong shape."""


@dataclass(frozen=True)
class GuardedClassSpec:
    """One lock-owning class: its lock attributes and guarded state."""

    #: Importable module holding the class (``repro.serving.service``).
    module: str
    #: Class name within the module (dotted for nested classes).
    qualname: str
    #: Lock attribute -> constructor basename (``Lock``, ``Condition``,
    #: ``_ReadWriteLock``, ...).
    locks: dict[str, str]
    #: Guarded attribute -> the lock attributes its mutations hold.
    guarded: dict[str, tuple[str, ...]]


@dataclass
class LockModel:
    """A set of :class:`GuardedClassSpec`, loadable from the exported JSON."""

    specs: list[GuardedClassSpec] = field(default_factory=list)

    @classmethod
    def from_payload(cls, payload: dict) -> LockModel:
        """Parse the ``--emit-lock-model`` JSON payload.

        Raises :class:`LockModelError` on a malformed or
        version-incompatible payload.
        """
        if not isinstance(payload, dict):
            raise LockModelError(
                f"lock model must be a mapping, got {type(payload).__name__}"
            )
        if payload.get("version") != LOCK_MODEL_VERSION:
            raise LockModelError(
                f"lock model version {payload.get('version')!r} is not "
                f"the supported {LOCK_MODEL_VERSION}"
            )
        entries = payload.get("classes", [])
        if not isinstance(entries, list):
            raise LockModelError("lock model 'classes' must be a list")
        specs = []
        for entry in entries:
            try:
                specs.append(
                    GuardedClassSpec(
                        module=str(entry["module"]),
                        qualname=str(entry["qualname"]),
                        locks={
                            str(attr): str(ctor)
                            for attr, ctor in dict(entry["locks"]).items()
                        },
                        guarded={
                            str(attr): tuple(str(g) for g in guards)
                            for attr, guards in dict(
                                entry.get("guarded", {})
                            ).items()
                        },
                    )
                )
            except (KeyError, TypeError, ValueError) as error:
                raise LockModelError(
                    f"malformed lock-model entry {entry!r}: {error}"
                ) from error
        return cls(specs=specs)

    @classmethod
    def from_json_file(cls, path: str | Path) -> LockModel:
        """Load the JSON file ``--emit-lock-model`` wrote."""
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except OSError as error:
            raise LockModelError(
                f"cannot read lock model {path}: {error}"
            ) from error
        except json.JSONDecodeError as error:
            raise LockModelError(
                f"lock model {path} is not valid JSON: {error}"
            ) from error
        return cls.from_payload(payload)


def load_lock_model(path: str | Path) -> LockModel:
    """Convenience alias for :meth:`LockModel.from_json_file`."""
    return LockModel.from_json_file(path)
