"""Anchor-link statistics: the entity-popularity prior ``f_pop``.

The paper computes ``f_pop(s_i, e) = count(s_i, e) / count(s_i)`` from
Wikipedia anchor links (Section 3.2.3).  :class:`AnchorStatistics` is
the count table; the dataset generator populates it from the synthetic
world's alias-usage frequencies, which plays exactly the role of a
Wikipedia anchor dump.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable

from repro.strings.tokenize import normalize_text


class AnchorStatistics:
    """Counts of (surface form, entity) anchor occurrences.

    Surface forms are normalized on both write and read, so lookups are
    case/whitespace insensitive.
    """

    def __init__(self) -> None:
        self._pair_counts: Counter[tuple[str, str]] = Counter()
        self._surface_counts: Counter[str] = Counter()

    def record(self, surface_form: str, entity_id: str, count: int = 1) -> None:
        """Record ``count`` anchors with ``surface_form`` -> ``entity_id``."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        form = normalize_text(surface_form)
        self._pair_counts[(form, entity_id)] += count
        self._surface_counts[form] += count

    def count(self, surface_form: str) -> int:
        """Total anchors with this surface form — ``count(s_i)``."""
        return self._surface_counts[normalize_text(surface_form)]

    def count_pair(self, surface_form: str, entity_id: str) -> int:
        """Anchors with this surface form pointing at ``entity_id``."""
        return self._pair_counts[(normalize_text(surface_form), entity_id)]

    def popularity(self, surface_form: str, entity_id: str) -> float:
        """``f_pop = count(s, e) / count(s)``; 0.0 for unseen forms."""
        total = self.count(surface_form)
        if total == 0:
            return 0.0
        return self.count_pair(surface_form, entity_id) / total

    def entities_for(self, surface_form: str) -> list[tuple[str, int]]:
        """Entities this surface form has pointed at, most popular first."""
        form = normalize_text(surface_form)
        matches = [
            (entity_id, count)
            for (anchor, entity_id), count in self._pair_counts.items()
            if anchor == form
        ]
        matches.sort(key=lambda pair: (-pair[1], pair[0]))
        return matches

    @property
    def surface_forms(self) -> frozenset[str]:
        """All surface forms with at least one recorded anchor."""
        return frozenset(self._surface_counts)

    def merge(self, other: AnchorStatistics) -> None:
        """Add all counts of ``other`` into this table."""
        for (form, entity_id), count in other._pair_counts.items():
            self._pair_counts[(form, entity_id)] += count
            self._surface_counts[form] += count

    @classmethod
    def from_records(
        cls, records: Iterable[tuple[str, str, int]]
    ) -> AnchorStatistics:
        """Build from ``(surface form, entity id, count)`` rows."""
        stats = cls()
        for surface_form, entity_id, count in records:
            stats.record(surface_form, entity_id, count)
        return stats

    # ------------------------------------------------------------------
    # Persistence (repro.persist)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """JSON-safe snapshot: sorted (form, entity, count) rows."""
        return {
            "anchors": [
                [form, entity_id, count]
                for (form, entity_id), count in sorted(self._pair_counts.items())
            ]
        }

    @classmethod
    def from_state(cls, payload: dict) -> AnchorStatistics:
        """Inverse of :meth:`to_state` (forms are already normalized)."""
        return cls.from_records(
            (row[0], row[1], row[2]) for row in payload["anchors"]
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AnchorStatistics(surface_forms={len(self._surface_counts)}, "
            f"pairs={len(self._pair_counts)})"
        )
