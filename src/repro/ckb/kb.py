"""The curated KB: entities, relations, facts, aliases and types.

Models the slice of Freebase/DBpedia the paper links against.  All
lookups used by JOCL signals are O(1):

* alias -> entities (candidate generation),
* relation lemma -> relations,
* fact membership ``(e_i, r_k, e_j) in kb`` (fact-inclusion factor U4),
* entity -> types (used by the SIST-like baseline).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.strings.tokenize import normalize_text


@dataclass(frozen=True)
class Entity:
    """A canonicalized entity.

    Attributes
    ----------
    entity_id:
        Unique identifier (e.g. ``"e:university_of_maryland"``).
    name:
        Canonical human-readable name.
    aliases:
        Known surface forms (the canonical name is always an alias).
    types:
        Coarse ontology types (e.g. ``"organization"``), used by
        type-aware baselines.
    """

    entity_id: str
    name: str
    aliases: frozenset[str] = frozenset()
    types: frozenset[str] = frozenset()

    def all_surface_forms(self) -> frozenset[str]:
        """Normalized alias set, always including the canonical name."""
        forms = {normalize_text(self.name)}
        forms.update(normalize_text(alias) for alias in self.aliases)
        return frozenset(forms)


@dataclass(frozen=True)
class Relation:
    """A canonicalized relation.

    Attributes
    ----------
    relation_id:
        Unique identifier (e.g. ``"r:organizations_founded"``).
    name:
        Canonical name; usually underscore- or dot-separated like
        Freebase ("location.contained_by").
    lexicalizations:
        Natural-language phrases known to express the relation (used by
        candidate generation and the Rematch-like baseline).
    category:
        Coarse category grouping near-equivalent relations (the KBP
        signal checks whether two RPs map to the same category, §3.1.4).
    """

    relation_id: str
    name: str
    lexicalizations: frozenset[str] = frozenset()
    category: str | None = None

    def all_surface_forms(self) -> frozenset[str]:
        """Normalized lexicalizations plus the name with separators spaced."""
        forms = {normalize_text(self.name.replace("_", " ").replace(".", " "))}
        forms.update(normalize_text(phrase) for phrase in self.lexicalizations)
        return frozenset(forms)


@dataclass(frozen=True)
class Fact:
    """One curated fact ``<subject entity, relation, object entity>``."""

    subject_id: str
    relation_id: str
    object_id: str


@dataclass
class CuratedKB:
    """An in-memory curated KB with the indexes JOCL needs.

    Build with :meth:`add_entity` / :meth:`add_relation` /
    :meth:`add_fact`, or pass complete collections to the constructor.
    """

    entities: dict[str, Entity] = field(default_factory=dict)
    relations: dict[str, Relation] = field(default_factory=dict)
    facts: set[Fact] = field(default_factory=set)

    def __post_init__(self) -> None:
        self._alias_index: dict[str, set[str]] = {}
        self._lexical_index: dict[str, set[str]] = {}
        self._fact_index: set[tuple[str, str, str]] = set()
        self._facts_by_pair: dict[tuple[str, str], set[str]] = {}
        for entity in list(self.entities.values()):
            self._index_entity(entity)
        for relation in list(self.relations.values()):
            self._index_relation(relation)
        for fact in list(self.facts):
            self._index_fact(fact)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_entity(self, entity: Entity) -> None:
        """Register an entity; id must be new."""
        if entity.entity_id in self.entities:
            raise ValueError(f"duplicate entity id {entity.entity_id!r}")
        self.entities[entity.entity_id] = entity
        self._index_entity(entity)

    def add_relation(self, relation: Relation) -> None:
        """Register a relation; id must be new."""
        if relation.relation_id in self.relations:
            raise ValueError(f"duplicate relation id {relation.relation_id!r}")
        self.relations[relation.relation_id] = relation
        self._index_relation(relation)

    def add_fact(self, fact: Fact) -> None:
        """Register a fact; end points must already be registered."""
        if fact.subject_id not in self.entities:
            raise KeyError(f"unknown subject entity {fact.subject_id!r}")
        if fact.object_id not in self.entities:
            raise KeyError(f"unknown object entity {fact.object_id!r}")
        if fact.relation_id not in self.relations:
            raise KeyError(f"unknown relation {fact.relation_id!r}")
        self.facts.add(fact)
        self._index_fact(fact)

    def _index_entity(self, entity: Entity) -> None:
        for form in entity.all_surface_forms():
            self._alias_index.setdefault(form, set()).add(entity.entity_id)

    def _index_relation(self, relation: Relation) -> None:
        for form in relation.all_surface_forms():
            self._lexical_index.setdefault(form, set()).add(relation.relation_id)

    def _index_fact(self, fact: Fact) -> None:
        self._fact_index.add((fact.subject_id, fact.relation_id, fact.object_id))
        self._facts_by_pair.setdefault((fact.subject_id, fact.object_id), set()).add(
            fact.relation_id
        )

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def entity(self, entity_id: str) -> Entity:
        """Entity by id (KeyError if absent)."""
        return self.entities[entity_id]

    def relation(self, relation_id: str) -> Relation:
        """Relation by id (KeyError if absent)."""
        return self.relations[relation_id]

    def entities_with_alias(self, surface_form: str) -> frozenset[str]:
        """Entity ids whose alias table contains ``surface_form``."""
        return frozenset(self._alias_index.get(normalize_text(surface_form), ()))

    def relations_with_lexicalization(self, phrase: str) -> frozenset[str]:
        """Relation ids lexicalized by ``phrase``."""
        return frozenset(self._lexical_index.get(normalize_text(phrase), ()))

    def has_fact(self, subject_id: str, relation_id: str, object_id: str) -> bool:
        """Fact membership test — the ``u4`` signal (Section 3.2.5)."""
        return (subject_id, relation_id, object_id) in self._fact_index

    def relations_between(self, subject_id: str, object_id: str) -> frozenset[str]:
        """Relations the CKB asserts between two entities."""
        return frozenset(self._facts_by_pair.get((subject_id, object_id), ()))

    @property
    def alias_vocabulary(self) -> frozenset[str]:
        """All normalized entity surface forms known to the KB."""
        return frozenset(self._alias_index)

    # ------------------------------------------------------------------
    # Persistence (repro.persist)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """JSON-safe snapshot: entities, relations and facts, sorted."""
        return {
            "entities": [
                {
                    "entity_id": entity.entity_id,
                    "name": entity.name,
                    "aliases": sorted(entity.aliases),
                    "types": sorted(entity.types),
                }
                for _, entity in sorted(self.entities.items())
            ],
            "relations": [
                {
                    "relation_id": relation.relation_id,
                    "name": relation.name,
                    "lexicalizations": sorted(relation.lexicalizations),
                    "category": relation.category,
                }
                for _, relation in sorted(self.relations.items())
            ],
            "facts": sorted(
                (fact.subject_id, fact.relation_id, fact.object_id)
                for fact in self.facts
            ),
        }

    @classmethod
    def from_state(cls, payload: dict) -> CuratedKB:
        """Inverse of :meth:`to_state` (indexes rebuilt in the constructor)."""
        return cls(
            entities={
                entry["entity_id"]: Entity(
                    entity_id=entry["entity_id"],
                    name=entry["name"],
                    aliases=frozenset(entry["aliases"]),
                    types=frozenset(entry["types"]),
                )
                for entry in payload["entities"]
            },
            relations={
                entry["relation_id"]: Relation(
                    relation_id=entry["relation_id"],
                    name=entry["name"],
                    lexicalizations=frozenset(entry["lexicalizations"]),
                    category=entry["category"],
                )
                for entry in payload["relations"]
            },
            facts={
                Fact(subject_id=row[0], relation_id=row[1], object_id=row[2])
                for row in payload["facts"]
            },
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CuratedKB(entities={len(self.entities)}, "
            f"relations={len(self.relations)}, facts={len(self.facts)})"
        )
