"""Curated Knowledge Base substrate (the paper's Freebase/DBpedia role).

A CKB holds canonicalized entities ``e``, relations ``r`` and facts
``<e_i, r_k, e_j>`` (Section 2).  This package provides:

* :class:`Entity`, :class:`Relation`, :class:`CuratedKB` — the KB with
  alias tables, a type system, and a fact index (used by the
  fact-inclusion factor ``U4``).
* :class:`AnchorStatistics` — Wikipedia-anchor-style (surface form,
  entity) counts backing the entity-popularity signal ``f_pop``
  (Section 3.2.3).
* :class:`CandidateGenerator` — NP -> candidate entities and RP ->
  candidate relations, the state spaces of linking variables
  (Section 3.2.1).
"""

from repro.ckb.anchors import AnchorStatistics
from repro.ckb.candidates import CandidateGenerator, EntityCandidate, RelationCandidate
from repro.ckb.kb import CuratedKB, Entity, Fact, Relation

__all__ = [
    "AnchorStatistics",
    "CandidateGenerator",
    "CuratedKB",
    "Entity",
    "EntityCandidate",
    "Fact",
    "Relation",
    "RelationCandidate",
]
