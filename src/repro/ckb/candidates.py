"""Candidate generation: the state spaces of JOCL's linking variables.

Section 3.2.1: a subject linking variable ``e_{s_i}`` has one state per
*candidate entity* the NP may refer to; a predicate linking variable
``r_{p_i}`` has one state per candidate relation.  This module builds
those candidate lists from the CKB:

* entities: exact alias hits, anchor-statistics hits, and fuzzy token
  matches, ranked by popularity and string similarity, truncated to
  ``max_candidates``;
* relations: lexicalization hits plus fuzzy n-gram / token matches over
  relation surface forms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ckb.anchors import AnchorStatistics
from repro.ckb.kb import CuratedKB
from repro.okb.normalize import morph_normalize
from repro.strings.idf import IdfStatistics, idf_token_overlap
from repro.strings.similarity import (
    ngram_jaccard,
    ngram_set,
    normalized_levenshtein_similarity,
)
from repro.strings.tokenize import normalize_text, word_set


@dataclass(frozen=True)
class EntityCandidate:
    """One candidate entity for an NP, with its retrieval score."""

    entity_id: str
    score: float


@dataclass(frozen=True)
class RelationCandidate:
    """One candidate relation for an RP, with its retrieval score."""

    relation_id: str
    score: float


class CandidateGenerator:
    """NP -> candidate entities; RP -> candidate relations.

    Parameters
    ----------
    kb:
        The curated KB to link against.
    anchors:
        Anchor statistics for the popularity prior; may be empty.
    max_candidates:
        Hard cap on candidates per phrase (the linking-variable domain
        size).
    min_fuzzy_similarity:
        Token-overlap floor below which fuzzy matches are discarded.
    """

    def __init__(
        self,
        kb: CuratedKB,
        anchors: AnchorStatistics | None = None,
        max_candidates: int = 8,
        min_fuzzy_similarity: float = 0.3,
    ) -> None:
        if max_candidates < 1:
            raise ValueError(f"max_candidates must be >= 1, got {max_candidates}")
        self._kb = kb
        self._anchors = anchors or AnchorStatistics()
        self._max_candidates = max_candidates
        self._min_fuzzy = min_fuzzy_similarity
        # IDF over the alias vocabulary makes rare alias tokens decisive.
        self._alias_idf = IdfStatistics(kb.alias_vocabulary)
        # Token inverted index over aliases for fuzzy retrieval.
        self._alias_token_index: dict[str, set[str]] = {}
        self._alias_to_entities: dict[str, frozenset[str]] = {}
        # Character-trigram index for typo-tolerant retrieval.
        self._alias_ngram_index: dict[str, set[str]] = {}
        for alias in kb.alias_vocabulary:
            self._alias_to_entities[alias] = kb.entities_with_alias(alias)
            for token in word_set(alias):
                self._alias_token_index.setdefault(token, set()).add(alias)
            for gram in ngram_set(alias, 3):
                self._alias_ngram_index.setdefault(gram, set()).add(alias)
        # Relation surface-form table (normalized and morph-normalized).
        self._relation_forms: dict[str, set[str]] = {}
        for relation_id, relation in kb.relations.items():
            forms = set(relation.all_surface_forms())
            forms.update(morph_normalize(form) for form in set(forms))
            self._relation_forms[relation_id] = forms

    # ------------------------------------------------------------------
    # Entities
    # ------------------------------------------------------------------
    def entity_candidates(self, noun_phrase: str) -> list[EntityCandidate]:
        """Ranked candidate entities for ``noun_phrase``.

        Scoring: exact alias match and anchor popularity dominate; fuzzy
        token-overlap matches fill the remainder of the candidate list.
        """
        phrase = normalize_text(noun_phrase)
        scores: dict[str, float] = {}

        for entity_id in self._kb.entities_with_alias(phrase):
            scores[entity_id] = max(scores.get(entity_id, 0.0), 1.0)

        for entity_id, count in self._anchors.entities_for(phrase):
            popularity = self._anchors.popularity(phrase, entity_id)
            score = 0.5 + 0.5 * popularity  # anchor hits rank above fuzzy
            scores[entity_id] = max(scores.get(entity_id, 0.0), score)
            del count  # popularity already folds the count in

        for alias in self._fuzzy_alias_matches(phrase):
            similarity = idf_token_overlap(phrase, alias, self._alias_idf)
            if similarity < self._min_fuzzy:
                continue
            for entity_id in self._alias_to_entities[alias]:
                scores[entity_id] = max(scores.get(entity_id, 0.0), similarity)

        # Typo-tolerant fallback: when token-level retrieval found nothing
        # strong (misspellings break tokens), fall back to character
        # trigram matching, slightly discounted so clean matches win.
        if not scores or max(scores.values()) < 0.8:
            for alias in self._ngram_alias_matches(phrase):
                similarity = 0.9 * ngram_jaccard(phrase, alias)
                if similarity < self._min_fuzzy:
                    continue
                for entity_id in self._alias_to_entities[alias]:
                    scores[entity_id] = max(scores.get(entity_id, 0.0), similarity)

        ranked = sorted(scores.items(), key=lambda pair: (-pair[1], pair[0]))
        return [
            EntityCandidate(entity_id=entity_id, score=score)
            for entity_id, score in ranked[: self._max_candidates]
        ]

    def _fuzzy_alias_matches(self, phrase: str) -> set[str]:
        """Aliases sharing at least one token with ``phrase``."""
        matches: set[str] = set()
        for token in word_set(phrase):
            matches.update(self._alias_token_index.get(token, ()))
        return matches

    def _ngram_alias_matches(self, phrase: str, min_shared: int = 2) -> set[str]:
        """Aliases sharing at least ``min_shared`` character trigrams."""
        counts: dict[str, int] = {}
        for gram in ngram_set(phrase, 3):
            for alias in self._alias_ngram_index.get(gram, ()):
                counts[alias] = counts.get(alias, 0) + 1
        return {alias for alias, count in counts.items() if count >= min_shared}

    # ------------------------------------------------------------------
    # Relations
    # ------------------------------------------------------------------
    def relation_candidates(self, relation_phrase: str) -> list[RelationCandidate]:
        """Ranked candidate relations for ``relation_phrase``.

        Scoring: exact lexicalization match dominates; otherwise the
        best n-gram Jaccard against any known surface form of the
        relation (computed on the morph-normalized phrase, which strips
        tense/auxiliaries as in "be an early member of" -> "early member
        of").
        """
        phrase = normalize_text(relation_phrase)
        normalized = morph_normalize(phrase)
        scores: dict[str, float] = {}

        for relation_id in self._kb.relations_with_lexicalization(phrase):
            scores[relation_id] = max(scores.get(relation_id, 0.0), 1.0)
        for relation_id in self._kb.relations_with_lexicalization(normalized):
            scores[relation_id] = max(scores.get(relation_id, 0.0), 1.0)

        for relation_id, forms in self._relation_forms.items():
            best = 0.0
            for form in forms:
                best = max(
                    best,
                    ngram_jaccard(normalized, form),
                    normalized_levenshtein_similarity(normalized, form),
                )
                if best == 1.0:
                    break
            if best >= self._min_fuzzy:
                scores[relation_id] = max(scores.get(relation_id, 0.0), best)

        ranked = sorted(scores.items(), key=lambda pair: (-pair[1], pair[0]))
        return [
            RelationCandidate(relation_id=relation_id, score=score)
            for relation_id, score in ranked[: self._max_candidates]
        ]

    @property
    def max_candidates(self) -> int:
        """Domain-size cap for linking variables."""
        return self._max_candidates
