"""Candidate generation: the state spaces of JOCL's linking variables.

Section 3.2.1: a subject linking variable ``e_{s_i}`` has one state per
*candidate entity* the NP may refer to; a predicate linking variable
``r_{p_i}`` has one state per candidate relation.  This module builds
those candidate lists from the CKB:

* entities: exact alias hits, anchor-statistics hits, and fuzzy token
  matches, ranked by popularity and string similarity, truncated to
  ``max_candidates``;
* relations: lexicalization hits plus fuzzy n-gram / token matches over
  relation surface forms.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.ckb.anchors import AnchorStatistics
from repro.ckb.kb import CuratedKB
from repro.okb.normalize import morph_normalize
from repro.strings.idf import IdfStatistics, idf_token_overlap
from repro.strings.similarity import (
    ngram_jaccard,
    ngram_set,
    normalized_levenshtein_similarity,
)
from repro.strings.tokenize import normalize_text, word_set


def _levenshtein_similarity_bound(
    query_counts: Counter[str], query_length: int, form: str
) -> float:
    """Cheap upper bound on ``normalized_levenshtein_similarity``.

    Edit distance is at least ``max(len) - common`` where ``common`` is
    the character-multiset overlap, so the normalized similarity is at
    most ``common / max(len)``.  Computing the bound is O(len), letting
    the candidate generator skip the O(len^2) dynamic program for forms
    that provably cannot reach the fuzzy floor or beat the best score
    seen so far.
    """
    longest = max(query_length, len(form))
    if longest == 0:
        return 1.0
    common = sum(
        min(count, query_counts[char]) for char, count in Counter(form).items()
    )
    return common / longest


@dataclass(frozen=True)
class EntityCandidate:
    """One candidate entity for an NP, with its retrieval score."""

    entity_id: str
    score: float


@dataclass(frozen=True)
class RelationCandidate:
    """One candidate relation for an RP, with its retrieval score."""

    relation_id: str
    score: float


class CandidateGenerator:
    """NP -> candidate entities; RP -> candidate relations.

    Parameters
    ----------
    kb:
        The curated KB to link against.
    anchors:
        Anchor statistics for the popularity prior; may be empty.
    max_candidates:
        Hard cap on candidates per phrase (the linking-variable domain
        size).
    min_fuzzy_similarity:
        Token-overlap floor below which fuzzy matches are discarded.
    """

    def __init__(
        self,
        kb: CuratedKB,
        anchors: AnchorStatistics | None = None,
        max_candidates: int = 8,
        min_fuzzy_similarity: float = 0.3,
    ) -> None:
        if max_candidates < 1:
            raise ValueError(f"max_candidates must be >= 1, got {max_candidates}")
        self._kb = kb
        self._anchors = anchors or AnchorStatistics()
        self._max_candidates = max_candidates
        self._min_fuzzy = min_fuzzy_similarity
        # IDF over the alias vocabulary makes rare alias tokens decisive.
        self._alias_idf = IdfStatistics(kb.alias_vocabulary)
        # Token inverted index over aliases for fuzzy retrieval.
        self._alias_token_index: dict[str, set[str]] = {}
        self._alias_to_entities: dict[str, frozenset[str]] = {}
        # Character-trigram index for typo-tolerant retrieval.
        self._alias_ngram_index: dict[str, set[str]] = {}
        for alias in kb.alias_vocabulary:
            self._alias_to_entities[alias] = kb.entities_with_alias(alias)
            for token in word_set(alias):
                self._alias_token_index.setdefault(token, set()).add(alias)
            for gram in ngram_set(alias, 3):
                self._alias_ngram_index.setdefault(gram, set()).add(alias)
        # Relation surface-form table (normalized and morph-normalized)
        # plus a character-trigram index over the forms, mirroring the
        # alias trigram index: fuzzy retrieval touches only relations
        # sharing at least one trigram with the query instead of
        # linearly scanning every relation x form.
        self._relation_forms: dict[str, set[str]] = {}
        self._relation_ngram_index: dict[str, set[tuple[str, str]]] = {}
        for relation_id, relation in kb.relations.items():
            base_forms = set(relation.all_surface_forms())
            forms = base_forms | {morph_normalize(form) for form in base_forms}
            self._relation_forms[relation_id] = forms
            for form in forms:
                for gram in ngram_set(form, 3):
                    self._relation_ngram_index.setdefault(gram, set()).add(
                        (relation_id, form)
                    )
        # Memoized candidate lists.  Candidate retrieval depends only on
        # the CKB and the anchor statistics — both fixed for the
        # generator's lifetime — so results are cached per normalized
        # phrase; repeated graph builds and serving-time resolve() calls
        # pay the retrieval once per distinct phrase.
        self._entity_cache: dict[str, tuple[EntityCandidate, ...]] = {}
        self._relation_cache: dict[str, tuple[RelationCandidate, ...]] = {}

    @property
    def max_candidates(self) -> int:
        """Hard cap on candidates per phrase (the linking domain size)."""
        return self._max_candidates

    @property
    def min_fuzzy_similarity(self) -> float:
        """Score floor below which fuzzy matches are discarded."""
        return self._min_fuzzy

    # ------------------------------------------------------------------
    # Persistence (repro.persist)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """JSON-safe snapshot: the knobs plus the memoized candidate lists.

        The lists are pure derived state (a deterministic function of
        the CKB, anchors and knobs), but retrieval is the single most
        expensive part of a cold graph build — shipping the memo with a
        checkpoint lets a restored engine skip it for every phrase the
        original engine had already seen.
        """
        return {
            "max_candidates": self._max_candidates,
            "min_fuzzy_similarity": self._min_fuzzy,
            "entity_candidates": {
                phrase: [[c.entity_id, c.score] for c in candidates]
                for phrase, candidates in sorted(self._entity_cache.items())
            },
            "relation_candidates": {
                phrase: [[c.relation_id, c.score] for c in candidates]
                for phrase, candidates in sorted(self._relation_cache.items())
            },
        }

    @classmethod
    def from_state(
        cls, kb: CuratedKB, anchors: AnchorStatistics, payload: dict
    ) -> CandidateGenerator:
        """Inverse of :meth:`to_state`; CKB and anchors come from the
        caller (they are checkpoint sections of their own)."""
        generator = cls(
            kb,
            anchors=anchors,
            max_candidates=int(payload["max_candidates"]),
            min_fuzzy_similarity=float(payload["min_fuzzy_similarity"]),
        )
        generator._entity_cache = {
            phrase: tuple(
                EntityCandidate(row[0], float(row[1])) for row in rows
            )
            for phrase, rows in payload["entity_candidates"].items()
        }
        generator._relation_cache = {
            phrase: tuple(
                RelationCandidate(row[0], float(row[1])) for row in rows
            )
            for phrase, rows in payload["relation_candidates"].items()
        }
        return generator

    # ------------------------------------------------------------------
    # Entities
    # ------------------------------------------------------------------
    def entity_candidates(self, noun_phrase: str) -> list[EntityCandidate]:
        """Ranked candidate entities for ``noun_phrase``.

        Scoring: exact alias match and anchor popularity dominate; fuzzy
        token-overlap matches fill the remainder of the candidate list.
        Results are memoized per normalized phrase (the CKB and anchors
        are fixed for the generator's lifetime).
        """
        phrase = normalize_text(noun_phrase)
        cached = self._entity_cache.get(phrase)
        if cached is None:
            cached = tuple(self._compute_entity_candidates(phrase))
            self._entity_cache[phrase] = cached
        return list(cached)

    def _compute_entity_candidates(self, phrase: str) -> list[EntityCandidate]:
        scores: dict[str, float] = {}

        for entity_id in self._kb.entities_with_alias(phrase):
            scores[entity_id] = max(scores.get(entity_id, 0.0), 1.0)

        # popularity already folds the co-occurrence count in
        for entity_id, _count in self._anchors.entities_for(phrase):
            popularity = self._anchors.popularity(phrase, entity_id)
            score = 0.5 + 0.5 * popularity  # anchor hits rank above fuzzy
            scores[entity_id] = max(scores.get(entity_id, 0.0), score)

        for alias in self._fuzzy_alias_matches(phrase):
            similarity = idf_token_overlap(phrase, alias, self._alias_idf)
            if similarity < self._min_fuzzy:
                continue
            for entity_id in self._alias_to_entities[alias]:
                scores[entity_id] = max(scores.get(entity_id, 0.0), similarity)

        # Typo-tolerant fallback: when token-level retrieval found nothing
        # strong (misspellings break tokens), fall back to character
        # trigram matching, slightly discounted so clean matches win.
        if not scores or max(scores.values()) < 0.8:
            for alias in self._ngram_alias_matches(phrase):
                similarity = 0.9 * ngram_jaccard(phrase, alias)
                if similarity < self._min_fuzzy:
                    continue
                for entity_id in self._alias_to_entities[alias]:
                    scores[entity_id] = max(scores.get(entity_id, 0.0), similarity)

        ranked = sorted(scores.items(), key=lambda pair: (-pair[1], pair[0]))
        return [
            EntityCandidate(entity_id=entity_id, score=score)
            for entity_id, score in ranked[: self._max_candidates]
        ]

    def _fuzzy_alias_matches(self, phrase: str) -> set[str]:
        """Aliases sharing at least one token with ``phrase``."""
        matches: set[str] = set()
        for token in word_set(phrase):
            matches.update(self._alias_token_index.get(token, ()))
        return matches

    def _ngram_alias_matches(self, phrase: str, min_shared: int = 2) -> set[str]:
        """Aliases sharing at least ``min_shared`` character trigrams."""
        counts: dict[str, int] = {}
        for gram in ngram_set(phrase, 3):
            for alias in self._alias_ngram_index.get(gram, ()):
                counts[alias] = counts.get(alias, 0) + 1
        return {alias for alias, count in counts.items() if count >= min_shared}

    # ------------------------------------------------------------------
    # Relations
    # ------------------------------------------------------------------
    def relation_candidates(self, relation_phrase: str) -> list[RelationCandidate]:
        """Ranked candidate relations for ``relation_phrase``.

        Scoring: exact lexicalization match dominates; otherwise the
        best n-gram Jaccard or normalized Levenshtein similarity against
        any known surface form of the relation (computed on the
        morph-normalized phrase, which strips tense/auxiliaries as in
        "be an early member of" -> "early member of").

        Retrieval is index-backed and provably rank-identical to the
        exhaustive scan: n-gram Jaccard is non-zero only for forms
        sharing a trigram (served by the trigram index), relations
        already at an exact 1.0 hit skip fuzzy scoring entirely, and the
        Levenshtein dynamic program runs only where its O(len) upper
        bound could still reach the fuzzy floor or beat the best score
        found so far.  Results are memoized per normalized phrase.
        """
        phrase = normalize_text(relation_phrase)
        cached = self._relation_cache.get(phrase)
        if cached is None:
            cached = tuple(self._compute_relation_candidates(phrase))
            self._relation_cache[phrase] = cached
        return list(cached)

    def _compute_relation_candidates(self, phrase: str) -> list[RelationCandidate]:
        normalized = morph_normalize(phrase)
        scores: dict[str, float] = {}

        for relation_id in self._kb.relations_with_lexicalization(phrase):
            scores[relation_id] = 1.0
        for relation_id in self._kb.relations_with_lexicalization(normalized):
            scores[relation_id] = 1.0

        # N-gram Jaccard over index-retrieved forms only (disjoint
        # trigram sets have Jaccard 0 and cannot contribute).
        best: dict[str, float] = {}
        seen_forms: set[tuple[str, str]] = set()
        for gram in ngram_set(normalized, 3):
            for entry in self._relation_ngram_index.get(gram, ()):
                relation_id, form = entry
                if scores.get(relation_id) == 1.0 or entry in seen_forms:
                    continue  # early exit: an exact hit cannot improve
                seen_forms.add(entry)
                value = ngram_jaccard(normalized, form)
                if value > best.get(relation_id, 0.0):
                    best[relation_id] = value

        # Levenshtein pass with the cheap upper-bound prune.
        query_counts = Counter(normalized)
        query_length = len(normalized)
        for relation_id, forms in self._relation_forms.items():
            if scores.get(relation_id) == 1.0:
                continue
            current = best.get(relation_id, 0.0)
            for form in forms:
                if current == 1.0:
                    break
                bound = _levenshtein_similarity_bound(
                    query_counts, query_length, form
                )
                if bound <= current or bound < self._min_fuzzy:
                    continue
                value = normalized_levenshtein_similarity(normalized, form)
                if value > current:
                    current = value
            if current > 0.0:
                best[relation_id] = current

        for relation_id, value in best.items():
            if value >= self._min_fuzzy:
                scores[relation_id] = max(scores.get(relation_id, 0.0), value)

        ranked = sorted(scores.items(), key=lambda pair: (-pair[1], pair[0]))
        return [
            RelationCandidate(relation_id=relation_id, score=score)
            for relation_id, score in ranked[: self._max_candidates]
        ]
