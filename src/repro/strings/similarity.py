"""String similarity measures used by linking signals and baselines.

Implements, from scratch:

* Levenshtein distance (dynamic programming, two-row) and its normalized
  similarity — the ``f_LD`` relation-linking signal (§3.2.4).
* Character n-gram sets and their Jaccard similarity — the ``f_ngram``
  relation-linking signal (§3.2.4), following [Nakashole13].
* Jaro and Jaro-Winkler similarity [Winkler99] — the Text Similarity
  canonicalization baseline of Galárraga et al. (2014).
* Generic set Jaccard — the Attribute Overlap baseline.
"""

from __future__ import annotations

from collections.abc import Collection, Hashable


def levenshtein_distance(first: str, second: str) -> int:
    """Edit distance between two strings (insert / delete / substitute).

    Uses the classic two-row dynamic program: ``O(len(first) *
    len(second))`` time, ``O(min(len))`` memory.
    """
    if first == second:
        return 0
    if not first:
        return len(second)
    if not second:
        return len(first)
    # Keep the shorter string in the inner loop for memory.
    if len(second) < len(first):
        first, second = second, first
    previous = list(range(len(first) + 1))
    for row, char_b in enumerate(second, start=1):
        current = [row]
        for col, char_a in enumerate(first, start=1):
            substitution = previous[col - 1] + (char_a != char_b)
            current.append(min(previous[col] + 1, current[col - 1] + 1, substitution))
        previous = current
    return previous[-1]


def normalized_levenshtein_similarity(first: str, second: str) -> float:
    """Levenshtein distance normalized to a ``[0, 1]`` similarity.

    ``1 - distance / max(len)``; two empty strings are identical (1.0).
    """
    longest = max(len(first), len(second))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein_distance(first, second) / longest


def ngram_set(text: str, n: int = 3) -> frozenset[str]:
    """Set of character n-grams of ``text``.

    Strings shorter than ``n`` yield the single gram ``text`` itself (if
    non-empty), so short relation phrases still compare non-trivially.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if not text:
        return frozenset()
    if len(text) < n:
        return frozenset((text,))
    return frozenset(text[i : i + n] for i in range(len(text) - n + 1))


def ngram_jaccard(first: str, second: str, n: int = 3) -> float:
    """Jaccard similarity between the n-gram sets of two strings."""
    grams_a = ngram_set(first, n)
    grams_b = ngram_set(second, n)
    return jaccard(grams_a, grams_b)


def jaccard(first: Collection[Hashable], second: Collection[Hashable]) -> float:
    """Set Jaccard ``|A ∩ B| / |A ∪ B|``; empty-vs-empty is 0.0."""
    set_a = set(first)
    set_b = set(second)
    union = set_a | set_b
    if not union:
        return 0.0
    return len(set_a & set_b) / len(union)


def jaro_similarity(first: str, second: str) -> float:
    """Jaro similarity between two strings, in ``[0, 1]``."""
    if first == second:
        return 1.0
    len_a, len_b = len(first), len(second)
    if len_a == 0 or len_b == 0:
        return 0.0
    match_window = max(len_a, len_b) // 2 - 1
    match_window = max(match_window, 0)
    matched_a = [False] * len_a
    matched_b = [False] * len_b
    matches = 0
    for i, char_a in enumerate(first):
        start = max(0, i - match_window)
        stop = min(len_b, i + match_window + 1)
        for j in range(start, stop):
            if matched_b[j] or second[j] != char_a:
                continue
            matched_a[i] = True
            matched_b[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i in range(len_a):
        if not matched_a[i]:
            continue
        while not matched_b[j]:
            j += 1
        if first[i] != second[j]:
            transpositions += 1
        j += 1
    transpositions //= 2
    return (
        matches / len_a + matches / len_b + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler(first: str, second: str, prefix_scale: float = 0.1) -> float:
    """Jaro-Winkler similarity: Jaro boosted by shared prefix length.

    ``prefix_scale`` is the standard 0.1 and is clamped to 0.25 to keep
    the result within ``[0, 1]``.
    """
    if not 0.0 <= prefix_scale <= 0.25:
        raise ValueError(f"prefix_scale must be in [0, 0.25], got {prefix_scale}")
    jaro = jaro_similarity(first, second)
    prefix = 0
    for char_a, char_b in zip(first, second, strict=False):
        if char_a != char_b or prefix == 4:
            break
        prefix += 1
    return jaro + prefix * prefix_scale * (1.0 - jaro)
