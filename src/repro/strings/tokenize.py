"""Tokenization helpers shared by all string-based signals.

The paper operates on short noun phrases and relation phrases ("University
of Maryland", "be an early member of"), so the tokenizer is deliberately
simple: lowercase, strip punctuation, split on whitespace.  Keeping it in
one module means every signal (IDF overlap, embeddings, candidate
generation) sees exactly the same token stream.
"""

from __future__ import annotations

import re

_TOKEN_RE = re.compile(r"[a-z0-9]+(?:'[a-z]+)?")

_WHITESPACE_RE = re.compile(r"\s+")


def normalize_text(text: str) -> str:
    """Lowercase ``text`` and collapse internal whitespace.

    This is the canonical surface form used as dictionary keys throughout
    the package (alias tables, anchor statistics, paraphrase DB).
    """
    return _WHITESPACE_RE.sub(" ", text.strip().lower())


def tokenize(text: str) -> list[str]:
    """Split ``text`` into lowercase alphanumeric tokens.

    Apostrophes inside words are preserved ("o'brien" stays one token);
    all other punctuation separates tokens.

    >>> tokenize("University of Maryland!")
    ['university', 'of', 'maryland']
    """
    return _TOKEN_RE.findall(text.lower())


def word_set(text: str) -> frozenset[str]:
    """Return the set of distinct tokens of ``text`` (``w(.)`` in §3.1.3)."""
    return frozenset(tokenize(text))
