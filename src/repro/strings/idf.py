"""IDF token-overlap similarity (Section 3.1.3 of the paper).

The similarity between two phrases is a weighted Jaccard where each shared
word ``x`` contributes ``1 / log(1 + f(x))``: rare words dominate, frequent
words ("of", "the") contribute almost nothing.  The word frequency ``f(x)``
is computed over *all words appearing in the NPs (or RPs) of the OIE
triples* — :class:`IdfStatistics` holds that corpus-level table.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable

from repro.strings.tokenize import tokenize, word_set


class IdfStatistics:
    """Word-frequency table over a phrase corpus.

    Parameters
    ----------
    phrases:
        The phrase collection (e.g. all NPs of an OKB).  Each phrase is
        tokenized and every token occurrence counts once.
    """

    def __init__(self, phrases: Iterable[str] = ()) -> None:
        self._counts: Counter[str] = Counter()
        self._total = 0
        self.update(phrases)

    def update(self, phrases: Iterable[str]) -> None:
        """Add more phrases to the frequency table."""
        for phrase in phrases:
            tokens = tokenize(phrase)
            self._counts.update(tokens)
            self._total += len(tokens)

    def frequency(self, word: str) -> int:
        """Number of occurrences of ``word`` in the corpus (``f(x)``)."""
        return self._counts[word.lower()]

    def weight(self, word: str) -> float:
        """IDF-style weight ``1 / log(1 + f(x))`` of ``word``.

        Unseen words get frequency 1 (so weight ``1/log 2``) rather than a
        division by ``log 1 = 0``; an unseen shared word is maximally
        informative.
        """
        frequency = max(1, self.frequency(word))
        return 1.0 / math.log(1.0 + frequency)

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct words observed."""
        return len(self._counts)

    @property
    def total_tokens(self) -> int:
        """Total token occurrences observed."""
        return self._total

    def __contains__(self, word: str) -> bool:
        return word.lower() in self._counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IdfStatistics(vocabulary={self.vocabulary_size}, "
            f"tokens={self.total_tokens})"
        )


def idf_token_overlap(first: str, second: str, stats: IdfStatistics) -> float:
    """``Sim_idf`` from Section 3.1.3: IDF-weighted token Jaccard.

    Returns a value in ``[0, 1]``; 1.0 when the token sets are identical
    and non-empty, 0.0 when they are disjoint or either phrase has no
    tokens.
    """
    words_a = word_set(first)
    words_b = word_set(second)
    union = words_a | words_b
    if not union:
        return 0.0
    # Sorted iteration: float addition is not associative, so summing
    # in set (hash) order makes the score depend on PYTHONHASHSEED and
    # on which operand came first — overlap(a, b) could differ from
    # overlap(b, a) in the last ulp.  Sorting pins one order for both.
    intersection = words_a & words_b
    numerator = sum(stats.weight(word) for word in sorted(intersection))
    denominator = sum(stats.weight(word) for word in sorted(union))
    if denominator == 0.0:
        return 0.0
    return numerator / denominator
