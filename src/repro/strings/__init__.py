"""String utilities: tokenization, IDF statistics, and similarity measures.

These are the primitives behind the paper's canonicalization and linking
signals (Sections 3.1.3, 3.1.4, 3.2.3 and 3.2.4):

* :func:`tokenize` / :func:`word_set` — whitespace+punctuation tokenizer.
* :class:`IdfStatistics` — corpus word-frequency table used by the IDF
  token-overlap similarity.
* :func:`idf_token_overlap` — ``Sim_idf`` from Section 3.1.3.
* :func:`levenshtein_distance` / :func:`normalized_levenshtein_similarity`
  — ``f_LD`` from Section 3.2.4.
* :func:`ngram_set` / :func:`ngram_jaccard` — ``f_ngram`` from Section
  3.2.4 (character n-gram Jaccard).
* :func:`jaro_winkler` — the Text Similarity baseline measure [Winkler99].
* :func:`jaccard` — generic set Jaccard (Attribute Overlap baseline).
"""

from repro.strings.idf import IdfStatistics, idf_token_overlap
from repro.strings.similarity import (
    jaccard,
    jaro_similarity,
    jaro_winkler,
    levenshtein_distance,
    ngram_jaccard,
    ngram_set,
    normalized_levenshtein_similarity,
)
from repro.strings.tokenize import normalize_text, tokenize, word_set

__all__ = [
    "IdfStatistics",
    "idf_token_overlap",
    "jaccard",
    "jaro_similarity",
    "jaro_winkler",
    "levenshtein_distance",
    "ngram_jaccard",
    "ngram_set",
    "normalize_text",
    "normalized_levenshtein_similarity",
    "tokenize",
    "word_set",
]
