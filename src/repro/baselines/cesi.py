"""CESI-like baseline (Vashishth et al. 2018).

CESI canonicalizes by (1) learning NP/RP embeddings that fold in side
information (PPDB equivalence, entity-linking hints, morph normal
forms) and (2) HAC over the learned embeddings.  Our reimplementation
keeps that architecture with the offline embedding substrate:

* base similarity — cosine of phrase embeddings;
* side information — PPDB-equivalent phrases and phrases whose exact
  alias match points at the same entity are pinned to similarity 1,
  morph-identical phrases likewise (CESI's "side info as hard
  constraints in the embedding objective");
* HAC with average linkage at a tuned threshold.
"""

from __future__ import annotations

from repro.baselines.base import CanonicalizationBaseline, phrases_of_kind
from repro.clustering.clusters import Clustering
from repro.clustering.hac import Linkage, hac_cluster
from repro.core.side_info import SideInformation
from repro.okb.normalize import morph_normalize


class CesiBaseline(CanonicalizationBaseline):
    """Embeddings + side information + HAC."""

    name = "CESI"

    def __init__(self, threshold: float = 0.72) -> None:
        self._threshold = threshold

    def cluster(self, side: SideInformation, kind: str) -> Clustering:
        self._check_kind(kind)
        phrases = phrases_of_kind(side, kind)
        embedding = side.embedding
        ppdb = side.ppdb
        kb = side.kb
        drop_aux = kind == "P"
        normal_forms = {
            phrase: morph_normalize(phrase, drop_auxiliaries=drop_aux)
            for phrase in phrases
        }
        exact_entity: dict[str, str | None] = {}
        if kind in ("S", "O"):
            for phrase in phrases:
                matches = kb.entities_with_alias(phrase)
                exact_entity[phrase] = min(matches) if len(matches) == 1 else None

        def similarity(first: str, second: str) -> float:
            # Hard side-information constraints first.
            if ppdb.equivalent(first, second):
                return 1.0
            if normal_forms[first] == normal_forms[second]:
                return 1.0
            entity_a = exact_entity.get(first)
            if entity_a is not None and entity_a == exact_entity.get(second):
                return 1.0
            return embedding.similarity(first, second)

        return hac_cluster(phrases, similarity, self._threshold, linkage=Linkage.AVERAGE)
