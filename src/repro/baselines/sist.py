"""SIST-like baseline (Lin & Chen, ICDE 2019).

SIST canonicalizes OKBs with *side information from the source text*:
candidate entities of each NP, the types of those candidates, and
domain knowledge of the source document.  Our reimplementation uses the
same three ingredients over the offline substrates:

* candidate-entity overlap — Jaccard between the candidate sets the
  two NPs retrieve from the CKB (SIST's "candidate entities" signal);
* type compatibility — overlap between the types of the top
  candidates;
* string evidence — IDF token overlap and embedding similarity;
* PPDB equivalence as a hard merge, like CESI.

The combination is a weighted similarity fed to HAC.  For RPs the
candidate sets come from relation candidates and the KBP category
replaces entity types.
"""

from __future__ import annotations

from repro.baselines.base import CanonicalizationBaseline, phrases_of_kind
from repro.clustering.clusters import Clustering
from repro.clustering.hac import Linkage, hac_cluster
from repro.core.side_info import SideInformation
from repro.okb.normalize import morph_normalize
from repro.strings.idf import idf_token_overlap
from repro.strings.similarity import jaccard


class SistBaseline(CanonicalizationBaseline):
    """Source-text side information + HAC."""

    name = "SIST"

    def __init__(
        self,
        threshold: float = 0.42,
        rp_threshold: float = 0.55,
        candidate_weight: float = 0.45,
        type_weight: float = 0.1,
        idf_weight: float = 0.25,
        embedding_weight: float = 0.2,
    ) -> None:
        total = candidate_weight + type_weight + idf_weight + embedding_weight
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"weights must sum to 1, got {total}")
        self._threshold = threshold
        self._rp_threshold = rp_threshold
        self._weights = (candidate_weight, type_weight, idf_weight, embedding_weight)

    def cluster(self, side: SideInformation, kind: str) -> Clustering:
        self._check_kind(kind)
        phrases = phrases_of_kind(side, kind)
        stats = side.okb.rp_idf if kind == "P" else side.okb.np_idf
        candidate_sets: dict[str, frozenset[str]] = {}
        type_sets: dict[str, frozenset[str]] = {}
        for phrase in phrases:
            if kind == "P":
                ranked = side.candidates.relation_candidates(phrase)
                ids = frozenset(c.relation_id for c in ranked[:5])
                category = side.kbp.category_of(phrase)
                types = frozenset((category,)) if category else frozenset()
            else:
                ranked = side.candidates.entity_candidates(phrase)
                ids = frozenset(c.entity_id for c in ranked[:5])
                types = frozenset(
                    t
                    for c in ranked[:3]
                    for t in side.kb.entity(c.entity_id).types
                )
            candidate_sets[phrase] = ids
            type_sets[phrase] = types

        if kind == "P":
            # Relation candidate sets are barely discriminative for short
            # "be the X of" patterns, so RPs lean on lexical evidence.
            candidate_w, type_w, idf_w, embedding_w = 0.1, 0.1, 0.5, 0.3
        else:
            candidate_w, type_w, idf_w, embedding_w = self._weights
        embedding = side.embedding
        ppdb = side.ppdb
        drop_aux = kind == "P"
        normal_forms = {
            phrase: morph_normalize(phrase, drop_auxiliaries=drop_aux)
            for phrase in phrases
        }

        def similarity(first: str, second: str) -> float:
            # Hard side-information merges (SIST subsumes CESI's side
            # info) before the soft weighted combination.
            if ppdb.equivalent(first, second):
                return 1.0
            if normal_forms[first] == normal_forms[second]:
                return 1.0
            # For RPs, SIST's source-text KBP mapping is the main recall
            # source for paraphrases with disjoint tokens.
            if kind == "P" and side.kbp.same_category(first, second):
                return 1.0
            score = candidate_w * jaccard(candidate_sets[first], candidate_sets[second])
            score += type_w * jaccard(type_sets[first], type_sets[second])
            score += idf_w * idf_token_overlap(first, second, stats)
            score += embedding_w * embedding.similarity(first, second)
            return score

        threshold = self._rp_threshold if kind == "P" else self._threshold
        return hac_cluster(phrases, similarity, threshold, linkage=Linkage.AVERAGE)
