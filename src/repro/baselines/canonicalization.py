"""Classic canonicalization baselines (Table 1, rows 1-5).

* Morph Norm — Fader et al. (2011): group by morphologically
  normalized surface form.
* Wikidata Integrator — link each NP independently by exact alias
  match (popularity tie-break), group by linked entity.
* Text Similarity — Galárraga et al. (2014): Jaro-Winkler + HAC.
* IDF Token Overlap — Galárraga et al. (2014): IDF overlap + HAC.
* Attribute Overlap — Galárraga et al. (2014): Jaccard of the (RP,
  other-NP) attribute sets + HAC.
"""

from __future__ import annotations

from repro.baselines.base import CanonicalizationBaseline, phrases_of_kind
from repro.clustering.clusters import Clustering
from repro.clustering.hac import Linkage, hac_cluster
from repro.core.side_info import SideInformation
from repro.okb.normalize import morph_normalize
from repro.strings.idf import idf_token_overlap
from repro.strings.similarity import jaccard, jaro_winkler


class MorphNormBaseline(CanonicalizationBaseline):
    """Group phrases whose morphological normal forms coincide."""

    name = "Morph Norm"

    def cluster(self, side: SideInformation, kind: str) -> Clustering:
        self._check_kind(kind)
        phrases = phrases_of_kind(side, kind)
        assignment = {
            phrase: morph_normalize(phrase, drop_auxiliaries=(kind == "P"))
            for phrase in phrases
        }
        return Clustering.from_assignment(assignment)


class WikidataIntegratorBaseline(CanonicalizationBaseline):
    """Link-then-group: NPs linked to the same entity share a cluster.

    Linking is what the real tool does for well-formed inputs: exact
    alias lookup, resolved by anchor popularity; unresolvable phrases
    stay singletons.
    """

    name = "Wikidata Integrator"
    kinds = ("S", "O")

    def cluster(self, side: SideInformation, kind: str) -> Clustering:
        self._check_kind(kind)
        phrases = phrases_of_kind(side, kind)
        assignment: dict[str, str] = {}
        for phrase in phrases:
            matches = side.kb.entities_with_alias(phrase)
            if not matches:
                assignment[phrase] = f"~nil:{phrase}"
                continue
            best = max(
                matches,
                key=lambda entity_id: (side.anchors.popularity(phrase, entity_id), entity_id),
            )
            assignment[phrase] = best
        return Clustering.from_assignment(assignment)


class TextSimilarityBaseline(CanonicalizationBaseline):
    """Jaro-Winkler similarity + hierarchical agglomerative clustering."""

    name = "Text Similarity"

    def __init__(self, threshold: float = 0.88) -> None:
        self._threshold = threshold

    def cluster(self, side: SideInformation, kind: str) -> Clustering:
        self._check_kind(kind)
        phrases = phrases_of_kind(side, kind)
        return hac_cluster(
            phrases, jaro_winkler, self._threshold, linkage=Linkage.AVERAGE
        )


class IdfTokenOverlapBaseline(CanonicalizationBaseline):
    """IDF token overlap + HAC (the similarity JOCL also prunes with)."""

    name = "IDF Token Overlap"

    def __init__(self, threshold: float = 0.5) -> None:
        self._threshold = threshold

    def cluster(self, side: SideInformation, kind: str) -> Clustering:
        self._check_kind(kind)
        phrases = phrases_of_kind(side, kind)
        stats = side.okb.rp_idf if kind == "P" else side.okb.np_idf

        def similarity(first: str, second: str) -> float:
            return idf_token_overlap(first, second, stats)

        return hac_cluster(phrases, similarity, self._threshold, linkage=Linkage.AVERAGE)


class AttributeOverlapBaseline(CanonicalizationBaseline):
    """Jaccard over NP attribute sets ((RP, other NP) pairs) + HAC."""

    name = "Attribute Overlap"
    kinds = ("S", "O")

    def __init__(self, threshold: float = 0.2) -> None:
        self._threshold = threshold

    def cluster(self, side: SideInformation, kind: str) -> Clustering:
        self._check_kind(kind)
        phrases = phrases_of_kind(side, kind)
        # Attributes are morph-normalized first (the Galárraga et al.
        # pipeline normalizes triples before comparing), otherwise
        # inflectional variants of the same RP never match.
        attributes = {
            phrase: frozenset(
                (morph_normalize(rp), morph_normalize(np, drop_auxiliaries=False))
                for rp, np in side.okb.attributes(phrase)
            )
            for phrase in phrases
        }

        def similarity(first: str, second: str) -> float:
            return jaccard(attributes[first], attributes[second])

        return hac_cluster(phrases, similarity, self._threshold, linkage=Linkage.AVERAGE)
