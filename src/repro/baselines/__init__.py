"""Baseline systems from the paper's evaluation (Section 4).

Canonicalization baselines (Tables 1-2):

* :class:`MorphNormBaseline` — Fader et al. (2011) normalization.
* :class:`WikidataIntegratorBaseline` — link-then-group via an entity
  linking tool.
* :class:`TextSimilarityBaseline` — Jaro-Winkler + HAC (Galárraga'14).
* :class:`IdfTokenOverlapBaseline` — IDF token overlap + HAC.
* :class:`AttributeOverlapBaseline` — attribute Jaccard + HAC.
* :class:`CesiBaseline` — embeddings + side information (CESI).
* :class:`SistBaseline` — source-text side information (SIST).
* :class:`AmieClusteringBaseline` — RP groups from mined Horn rules.
* :class:`PattyBaseline` — RP groups from shared NP-pair support.

Linking baselines (Table 3, Figure 3):

* :class:`SpotlightBaseline` — popularity-first independent linking.
* :class:`TagmeBaseline` — collective voting by candidate relatedness.
* :class:`FalconBaseline` — English-morphology rules, joint E+R.
* :class:`EarlBaseline` — GTSP-style joint candidate selection.
* :class:`KBPearlBaseline` — triple-context joint linking pipeline.
* :class:`RematchBaseline` — relation matching (relation task only).
"""

from repro.baselines.base import CanonicalizationBaseline, LinkingBaseline, LinkingResult
from repro.baselines.canonicalization import (
    AttributeOverlapBaseline,
    IdfTokenOverlapBaseline,
    MorphNormBaseline,
    TextSimilarityBaseline,
    WikidataIntegratorBaseline,
)
from repro.baselines.cesi import CesiBaseline
from repro.baselines.linking import (
    EarlBaseline,
    FalconBaseline,
    KBPearlBaseline,
    RematchBaseline,
    SpotlightBaseline,
    TagmeBaseline,
)
from repro.baselines.rp_baselines import AmieClusteringBaseline, PattyBaseline
from repro.baselines.sist import SistBaseline

__all__ = [
    "AmieClusteringBaseline",
    "AttributeOverlapBaseline",
    "CanonicalizationBaseline",
    "CesiBaseline",
    "EarlBaseline",
    "FalconBaseline",
    "IdfTokenOverlapBaseline",
    "KBPearlBaseline",
    "LinkingBaseline",
    "LinkingResult",
    "MorphNormBaseline",
    "PattyBaseline",
    "RematchBaseline",
    "SistBaseline",
    "SpotlightBaseline",
    "TagmeBaseline",
    "TextSimilarityBaseline",
    "WikidataIntegratorBaseline",
]
