"""Baseline interfaces.

All canonicalization baselines implement
``cluster(side, kind) -> Clustering`` over the distinct phrases of one
slot kind ("S" subjects, "P" predicates, "O" objects); all linking
baselines implement ``link(side) -> LinkingResult``.  Both consume the
same :class:`~repro.core.side_info.SideInformation` bundle JOCL does,
so every system sees identical inputs.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.clustering.clusters import Clustering
from repro.core.side_info import SideInformation


def phrases_of_kind(side: SideInformation, kind: str) -> list[str]:
    """Distinct normalized phrases of one slot kind, sorted."""
    triples = side.okb.triples
    if kind == "S":
        return sorted({t.subject_norm for t in triples})
    if kind == "P":
        return sorted({t.predicate_norm for t in triples})
    if kind == "O":
        return sorted({t.object_norm for t in triples})
    raise ValueError(f"unknown kind {kind!r}")


class CanonicalizationBaseline(abc.ABC):
    """A system that clusters NPs or RPs."""

    #: Display name used in benchmark tables.
    name: str = "baseline"
    #: Which slot kinds the system supports.
    kinds: tuple[str, ...] = ("S", "P", "O")

    @abc.abstractmethod
    def cluster(self, side: SideInformation, kind: str) -> Clustering:
        """Cluster the distinct phrases of ``kind``."""

    def _check_kind(self, kind: str) -> None:
        if kind not in self.kinds:
            raise ValueError(f"{self.name} does not support kind {kind!r}")


@dataclass
class LinkingResult:
    """Phrase -> CKB identifier maps produced by a linking system."""

    entity_links: dict[str, str | None] = field(default_factory=dict)
    relation_links: dict[str, str | None] = field(default_factory=dict)
    object_links: dict[str, str | None] = field(default_factory=dict)


class LinkingBaseline(abc.ABC):
    """A system that links NPs (and possibly RPs) to the CKB."""

    name: str = "baseline"
    #: Whether the system produces relation links (Figure 3 eligibility).
    links_relations: bool = False

    @abc.abstractmethod
    def link(self, side: SideInformation) -> LinkingResult:
        """Link every distinct subject NP (and RP, if supported)."""
