"""Relation-phrase canonicalization baselines (Table 2).

* AMIE clustering — Galárraga et al. (2013/2014): two RPs share a group
  when bidirectional implication rules pass support and confidence;
  most RPs fall below the support threshold and stay singletons (the
  coverage weakness the paper points out).
* PATTY-like — Nakashole et al. (2012): RPs whose NP-pair support sets
  overlap strongly (or that share a synset in the paraphrase lexicon)
  belong to one pattern synset.
"""

from __future__ import annotations

import itertools

from repro.baselines.base import CanonicalizationBaseline, phrases_of_kind
from repro.clustering.clusters import Clustering
from repro.core.side_info import SideInformation
from repro.okb.normalize import morph_normalize
from repro.strings.idf import idf_token_overlap
from repro.strings.similarity import jaccard


class AmieClusteringBaseline(CanonicalizationBaseline):
    """Connected components of bidirectional AMIE implications."""

    name = "AMIE"
    kinds = ("P",)

    def cluster(self, side: SideInformation, kind: str) -> Clustering:
        self._check_kind(kind)
        phrases = phrases_of_kind(side, kind)
        merged = [
            (first, second)
            for first, second in itertools.combinations(phrases, 2)
            if side.amie.equivalent(first, second)
        ]
        return Clustering.from_pairs(phrases, merged)


class PattyBaseline(CanonicalizationBaseline):
    """Shared NP-pair support sets + synset lexicon."""

    name = "PATTY"
    kinds = ("P",)

    def __init__(self, support_overlap: float = 0.25, min_shared: int = 1) -> None:
        self._support_overlap = support_overlap
        self._min_shared = min_shared

    def cluster(self, side: SideInformation, kind: str) -> Clustering:
        self._check_kind(kind)
        phrases = phrases_of_kind(side, kind)
        # Support sets are morph-normalized NP pairs (PATTY works on
        # entity pairs; normalization stands in for that resolution).
        support = {
            phrase: {
                (
                    morph_normalize(subject, drop_auxiliaries=False),
                    morph_normalize(obj, drop_auxiliaries=False),
                )
                for subject, obj in side.okb.np_pairs_of_rp(phrase)
            }
            for phrase in phrases
        }
        stats = side.okb.rp_idf
        merged: list[tuple[str, str]] = []
        for first, second in itertools.combinations(phrases, 2):
            if side.ppdb.equivalent(first, second):
                merged.append((first, second))
                continue
            if morph_normalize(first) == morph_normalize(second):
                merged.append((first, second))
                continue
            shared = len(support[first] & support[second])
            if shared < self._min_shared:
                continue
            if jaccard(support[first], support[second]) < self._support_overlap:
                continue
            # Support evidence must be corroborated lexically (PATTY's
            # SOL patterns generalize words, they do not merge arbitrary
            # co-occurring relations).
            if idf_token_overlap(first, second, stats) >= 0.2:
                merged.append((first, second))
        return Clustering.from_pairs(phrases, merged)
