"""Entity/relation linking baselines (Table 3 and Figure 3).

Each system reimplements the *mechanism* its paper is known for, over
the same substrates JOCL uses:

* Spotlight — independent per-mention linking dominated by the
  popularity prior (plus lexical match), like DBpedia Spotlight's
  support+similarity scoring.
* TagMe — collective voting: candidates are scored by their
  relatedness to the candidates of all other mentions; strong on dense
  text, weak on isolated triples (exactly its failure mode in the
  paper).
* Falcon — English-morphology rules: normalized exact alias matching,
  then a joint entity-relation check against the KB (Falcon's
  "fundamental principles of English morphology" + extended KG).
* EARL — joint candidate selection per triple as a small GTSP: pick
  one candidate per slot maximizing connection density; phrase-level
  answer by majority over triples.
* KBPearl — a document-level joint pipeline: initial lexical+prior
  scores, then iterative propagation over the fact graph until stable.
* Rematch — relation linking by lexical/synonym matching of the RP
  against relation lexicalizations.
"""

from __future__ import annotations

import itertools
from collections import Counter, defaultdict

from repro.baselines.base import LinkingBaseline, LinkingResult, phrases_of_kind
from repro.core.side_info import SideInformation
from repro.okb.normalize import morph_normalize
from repro.strings.similarity import ngram_jaccard, normalized_levenshtein_similarity


def _entity_candidates(side: SideInformation, phrase: str, limit: int = 8):
    return side.candidates.entity_candidates(phrase)[:limit]


def _relation_candidates(side: SideInformation, phrase: str, limit: int = 8):
    return side.candidates.relation_candidates(phrase)[:limit]


class SpotlightBaseline(LinkingBaseline):
    """Popularity-prior linking, independent per mention."""

    name = "Spotlight"

    def __init__(self, popularity_weight: float = 0.7) -> None:
        self._popularity_weight = popularity_weight

    def link(self, side: SideInformation) -> LinkingResult:
        result = LinkingResult()
        for kind, target in (("S", result.entity_links), ("O", result.object_links)):
            for phrase in phrases_of_kind(side, kind):
                target[phrase] = self._best(side, phrase)
        return result

    def _best(self, side: SideInformation, phrase: str) -> str | None:
        candidates = _entity_candidates(side, phrase)
        if not candidates:
            return None
        weight = self._popularity_weight

        def score(candidate) -> float:
            popularity = side.anchors.popularity(phrase, candidate.entity_id)
            return weight * popularity + (1.0 - weight) * candidate.score

        best = max(candidates, key=lambda c: (score(c), c.entity_id))
        return best.entity_id


class TagmeBaseline(LinkingBaseline):
    """Collective voting by candidate-candidate relatedness.

    Relatedness between two entities is derived from the KB fact graph
    (shared facts / shared neighbors).  Isolated OIE triples give weak
    votes, which is why TagMe trails on this task.
    """

    name = "TagMe"

    def __init__(self, vote_weight: float = 1.0) -> None:
        self._vote_weight = vote_weight

    def link(self, side: SideInformation) -> LinkingResult:
        result = LinkingResult()
        mentions = [("S", p) for p in phrases_of_kind(side, "S")]
        mentions += [("O", p) for p in phrases_of_kind(side, "O")]
        candidate_map = {
            (kind, phrase): _entity_candidates(side, phrase)
            for kind, phrase in mentions
        }
        # Neighbor sets in the KB fact graph for relatedness.
        neighbors: dict[str, set[str]] = defaultdict(set)
        for fact in side.kb.facts:
            neighbors[fact.subject_id].add(fact.object_id)
            neighbors[fact.object_id].add(fact.subject_id)

        def relatedness(first: str, second: str) -> float:
            if second in neighbors[first]:
                return 1.0
            shared = neighbors[first] & neighbors[second]
            union = neighbors[first] | neighbors[second]
            return len(shared) / len(union) if union else 0.0

        for kind, phrase in mentions:
            candidates = candidate_map[(kind, phrase)]
            target = result.entity_links if kind == "S" else result.object_links
            if not candidates:
                target[phrase] = None
                continue
            scores: dict[str, float] = {}
            for candidate in candidates:
                vote = 0.0
                for other_key, other_candidates in candidate_map.items():
                    if other_key == (kind, phrase) or not other_candidates:
                        continue
                    best_other = max(
                        relatedness(candidate.entity_id, oc.entity_id)
                        * side.anchors.popularity(other_key[1], oc.entity_id)
                        for oc in other_candidates
                    )
                    vote += best_other
                vote /= max(1, len(candidate_map) - 1)
                prior = side.anchors.popularity(phrase, candidate.entity_id)
                scores[candidate.entity_id] = (
                    self._vote_weight * vote + (1.0 - self._vote_weight) * prior
                )
            target[phrase] = max(scores.items(), key=lambda kv: (kv[1], kv[0]))[0]
        return result


class FalconBaseline(LinkingBaseline):
    """Morphology rules + joint entity-relation verification."""

    name = "Falcon"
    links_relations = True

    def link(self, side: SideInformation) -> LinkingResult:
        result = LinkingResult()
        # Rule 1: relation linking by normalized lexical match.
        for phrase in phrases_of_kind(side, "P"):
            result.relation_links[phrase] = self._link_relation(side, phrase)
        # Rule 2: entity linking by normalized exact alias match; joint
        # verification against the KB resolves ambiguity.
        relation_of_triple = {
            t.triple_id: result.relation_links.get(t.predicate_norm)
            for t in side.okb.triples
        }
        for kind, target in (("S", result.entity_links), ("O", result.object_links)):
            for phrase in phrases_of_kind(side, kind):
                target[phrase] = self._link_entity(
                    side, phrase, kind, relation_of_triple
                )
        return result

    def _link_relation(self, side: SideInformation, phrase: str) -> str | None:
        normalized = morph_normalize(phrase)
        exact = side.kb.relations_with_lexicalization(normalized)
        if exact:
            return min(exact)
        candidates = _relation_candidates(side, phrase)
        if not candidates:
            return None
        best = max(
            candidates,
            key=lambda c: (
                ngram_jaccard(normalized, _relation_form(side, c.relation_id)),
                c.relation_id,
            ),
        )
        return best.relation_id

    def _link_entity(
        self,
        side: SideInformation,
        phrase: str,
        kind: str,
        relation_of_triple: dict[str, str | None],
    ) -> str | None:
        normalized = morph_normalize(phrase, drop_auxiliaries=False)
        matches = side.kb.entities_with_alias(phrase) or side.kb.entities_with_alias(
            normalized
        )
        if not matches:
            candidates = _entity_candidates(side, phrase)
            return candidates[0].entity_id if candidates else None
        if len(matches) == 1:
            return next(iter(matches))
        # Joint verification: prefer the candidate participating in a KB
        # fact with the linked relation of any triple mentioning the NP.
        counts: Counter[str] = Counter()
        mentions = side.okb.np_mentions(phrase)
        for triple_id, _role in mentions:
            relation_id = relation_of_triple.get(triple_id)
            if relation_id is None:
                continue
            for entity_id in matches:
                for fact in side.kb.facts:
                    if fact.relation_id != relation_id:
                        continue
                    if entity_id in (fact.subject_id, fact.object_id):
                        counts[entity_id] += 1
        if counts:
            # Ties break toward the smallest entity id so the result does
            # not depend on set iteration order (PYTHONHASHSEED).
            return max(sorted(counts), key=counts.__getitem__)
        return max(
            matches,
            key=lambda entity_id: (side.anchors.popularity(phrase, entity_id), entity_id),
        )


class EarlBaseline(LinkingBaseline):
    """Per-triple joint candidate selection (GTSP, solved greedily)."""

    name = "EARL"
    links_relations = True

    def link(self, side: SideInformation) -> LinkingResult:
        votes: dict[tuple[str, str], Counter[str]] = defaultdict(Counter)
        for triple in side.okb.triples:
            subject, predicate, obj = triple.as_tuple()
            s_candidates = _entity_candidates(side, subject, limit=4)
            p_candidates = _relation_candidates(side, predicate, limit=4)
            o_candidates = _entity_candidates(side, obj, limit=4)
            best = self._best_combo(side, s_candidates, p_candidates, o_candidates)
            if best is None:
                continue
            entity_s, relation, entity_o = best
            if entity_s is not None:
                votes[("S", subject)][entity_s] += 1
            if relation is not None:
                votes[("P", predicate)][relation] += 1
            if entity_o is not None:
                votes[("O", obj)][entity_o] += 1
        result = LinkingResult()
        target_of_kind = {
            "S": result.entity_links,
            "P": result.relation_links,
            "O": result.object_links,
        }
        for kind in ("S", "P", "O"):
            for phrase in phrases_of_kind(side, kind):
                counter = votes.get((kind, phrase))
                if counter:
                    target_of_kind[kind][phrase] = counter.most_common(1)[0][0]
                else:
                    target_of_kind[kind][phrase] = None
        return result

    def _best_combo(self, side, s_candidates, p_candidates, o_candidates):
        if not (s_candidates or p_candidates or o_candidates):
            return None
        s_options = [c.entity_id for c in s_candidates] or [None]
        p_options = [c.relation_id for c in p_candidates] or [None]
        o_options = [c.entity_id for c in o_candidates] or [None]
        s_scores = {c.entity_id: c.score for c in s_candidates}
        p_scores = {c.relation_id: c.score for c in p_candidates}
        o_scores = {c.entity_id: c.score for c in o_candidates}
        best = None
        best_score = float("-inf")
        for entity_s, relation, entity_o in itertools.product(
            s_options, p_options, o_options
        ):
            score = (
                s_scores.get(entity_s, 0.0)
                + p_scores.get(relation, 0.0)
                + o_scores.get(entity_o, 0.0)
            )
            # Connection density: a KB edge between the chosen nodes.
            if entity_s and entity_o and relation:
                if side.kb.has_fact(entity_s, relation, entity_o):
                    score += 2.0
                elif side.kb.relations_between(entity_s, entity_o):
                    score += 0.5
            sort_key = (str(entity_s), str(relation), str(entity_o))
            if score > best_score or (
                score == best_score and best is not None and sort_key < best[1]
            ):
                best = ((entity_s, relation, entity_o), sort_key)
                best_score = score
        return best[0] if best else None


class KBPearlBaseline(LinkingBaseline):
    """Document-level joint pipeline with iterative propagation."""

    name = "KBPearl"
    links_relations = True

    def __init__(self, iterations: int = 3, context_weight: float = 0.5) -> None:
        self._iterations = iterations
        self._context_weight = context_weight

    def link(self, side: SideInformation) -> LinkingResult:
        # Initial lexical + prior scores per (kind, phrase, candidate).
        scores: dict[tuple[str, str], dict[str, float]] = {}
        for kind in ("S", "O"):
            for phrase in phrases_of_kind(side, kind):
                candidates = _entity_candidates(side, phrase)
                scores[(kind, phrase)] = {
                    c.entity_id: 0.5 * c.score
                    + 0.5 * side.anchors.popularity(phrase, c.entity_id)
                    for c in candidates
                }
        for phrase in phrases_of_kind(side, "P"):
            candidates = _relation_candidates(side, phrase)
            scores[("P", phrase)] = {c.relation_id: c.score for c in candidates}

        # Iterative propagation: boost candidates whose triple forms a
        # fact with the current best candidates of the other slots.
        for _round in range(self._iterations):
            boosts: dict[tuple[str, str], Counter[str]] = defaultdict(Counter)
            for triple in side.okb.triples:
                subject, predicate, obj = triple.as_tuple()
                best_s = _argmax(scores.get(("S", subject), {}))
                best_p = _argmax(scores.get(("P", predicate), {}))
                best_o = _argmax(scores.get(("O", obj), {}))
                for candidate in scores.get(("S", subject), {}):
                    if best_p and best_o and side.kb.has_fact(candidate, best_p, best_o):
                        boosts[("S", subject)][candidate] += 1
                for candidate in scores.get(("P", predicate), {}):
                    if best_s and best_o and side.kb.has_fact(best_s, candidate, best_o):
                        boosts[("P", predicate)][candidate] += 1
                for candidate in scores.get(("O", obj), {}):
                    if best_s and best_p and side.kb.has_fact(best_s, best_p, candidate):
                        boosts[("O", obj)][candidate] += 1
            if not boosts:
                break
            for key, counter in boosts.items():
                total = sum(counter.values())
                for candidate, count in counter.items():
                    scores[key][candidate] += self._context_weight * count / total

        result = LinkingResult()
        target_of_kind = {
            "S": result.entity_links,
            "P": result.relation_links,
            "O": result.object_links,
        }
        for (kind, phrase), candidate_scores in scores.items():
            target_of_kind[kind][phrase] = _argmax(candidate_scores)
        for kind in ("S", "P", "O"):
            for phrase in phrases_of_kind(side, kind):
                target_of_kind[kind].setdefault(phrase, None)
        return result


class RematchBaseline(LinkingBaseline):
    """Relation matching by lexical and synonym similarity (RP task only)."""

    name = "ReMatch"
    links_relations = True

    def __init__(self, min_score: float = 0.15) -> None:
        self._min_score = min_score

    def link(self, side: SideInformation) -> LinkingResult:
        result = LinkingResult()
        for phrase in phrases_of_kind(side, "P"):
            result.relation_links[phrase] = self._best(side, phrase)
        return result

    def _best(self, side: SideInformation, phrase: str) -> str | None:
        normalized = morph_normalize(phrase)
        best_id: str | None = None
        best_score = self._min_score
        for relation_id, forms in side.relation_surface_forms.items():
            for form in forms:
                if side.ppdb.equivalent(normalized, form):
                    score = 1.0
                else:
                    score = max(
                        ngram_jaccard(normalized, form),
                        normalized_levenshtein_similarity(normalized, form),
                    )
                if score > best_score or (
                    score == best_score and best_id is not None and relation_id < best_id
                ):
                    best_id = relation_id
                    best_score = score
        return best_id


def _argmax(scores: dict[str, float]) -> str | None:
    if not scores:
        return None
    return max(scores.items(), key=lambda kv: (kv[1], kv[0]))[0]


def _relation_form(side: SideInformation, relation_id: str) -> str:
    relation = side.kb.relation(relation_id)
    return relation.name.replace("_", " ").replace(".", " ")
