"""Component-partitioned LBP: segment the graph, infer per component.

LBP messages never cross connected-component boundaries, so marginals
computed per component equal whole-graph marginals — the segmentation
claim the paper closes Section 3.4 with.  Decomposing has a second,
single-threaded payoff: each component stops at *its own* convergence
instead of iterating until the slowest component converges, so the
total number of factor updates is never larger than the whole-graph
run and usually substantially smaller on multi-component OKBs.

The per-component plan is also the substrate two subclasses build on:
:class:`~repro.runtime.parallel.ParallelRuntime` executes it on a
worker pool, and :class:`~repro.runtime.incremental.IncrementalRuntime`
carries converged component results *across* runs, re-running only the
components an ingest dirtied.
"""

from __future__ import annotations

from repro.factorgraph.partition import partition_graph
from repro.runtime.base import (
    ComponentPlan,
    InferencePlan,
    InferenceRuntime,
    InferenceTask,
)


class PartitionedRuntime(InferenceRuntime):
    """Per-component LBP, executed sequentially in the calling thread.

    Decision-for-decision equivalent to whole-graph LBP: identical
    fixed points, identical decoding.  Two sub-tolerance caveats of
    per-component early stopping: marginals can differ below the
    convergence tolerance, and the merged iteration count (slowest
    component's own first crossing) matches the whole-graph count only
    while residuals stay monotone after crossing — both are dwarfed by
    the decoder's decision margins on real workloads and are pinned by
    the seeded equivalence tests.
    """

    name = "partitioned"

    def plan(self, task: InferenceTask) -> InferencePlan:
        """One unit per connected component, largest first."""
        subgraphs = partition_graph(task.graph)
        if not subgraphs:
            # An empty graph has no components; keep one (empty) unit so
            # the run degenerates exactly like SerialRuntime's.
            return InferencePlan(
                task=task, components=(ComponentPlan(graph=task.graph),)
            )
        return InferencePlan(
            task=task,
            components=tuple(
                ComponentPlan(graph=subgraph) for subgraph in subgraphs
            ),
        )
