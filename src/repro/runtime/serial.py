"""The default runtime: one LBP pass over the whole graph.

Exactly the historical ``LoopyBP(graph).run()`` behavior, expressed
through the plan/execute/merge contract so the profile (components,
iterations, wall time) is reported the same way as for the parallel
runtimes.
"""

from __future__ import annotations

from repro.runtime.base import (
    ComponentPlan,
    InferencePlan,
    InferenceRuntime,
    InferenceTask,
)


class SerialRuntime(InferenceRuntime):
    """Whole-graph LBP in the calling thread (the default)."""

    name = "serial"

    def plan(self, task: InferenceTask) -> InferencePlan:
        """The whole graph is one unit; no segmentation."""
        return InferencePlan(
            task=task, components=(ComponentPlan(graph=task.graph),)
        )
