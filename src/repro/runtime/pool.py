"""Shared fan-out helper over ``concurrent.futures`` thread pools.

:class:`~repro.runtime.parallel.ParallelRuntime` fans factor-graph
components out over an executor; :class:`repro.cluster.ShardedEngine`
fans *whole shards* out (per-shard ingest, per-shard joint inference).
Both want the same discipline — results in submission order whatever
the completion order was, no pool overhead for degenerate workloads —
so it lives here once.

Thread pools only: the payloads (engines, factor graphs) are shared
in-process state that would be pointless to pickle.  CPU-bound stages
still overlap because the numeric kernels release the GIL; see the
``backend="process"`` escape hatch on ``ParallelRuntime`` for the
fully CPU-bound single-graph case.

Lifecycle: every pool is scoped to one :func:`scatter` call.  The
``with`` block shuts the executor down on every exit path; on the first
task failure the not-yet-started tasks are cancelled first, so the
shutdown joins only threads already running instead of draining the
whole queue behind a dead request.

The module also carries the :data:`_SCATTER_OBSERVERS` hook: the
concurrency sanitizer (:mod:`repro.diagnostics`) registers a callback
that is invoked *before* a real pool fan-out blocks, letting it flag
locks held across the scatter (``SAN03``).  Inline degenerate runs do
not notify — nothing blocks on a pool there.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor
from typing import TypeVar

T = TypeVar("T")

#: Callbacks ``(n_tasks) -> None`` invoked right before :func:`scatter`
#: blocks on a worker pool.  Test-time diagnostics only — the list is
#: empty in production and the pooled path pays one truthiness check.
_SCATTER_OBSERVERS: list[Callable[[int], None]] = []


def _notify_scatter(n_tasks: int) -> None:
    for observer in list(_SCATTER_OBSERVERS):
        observer(n_tasks)


def scatter(
    tasks: Sequence[Callable[[], T]], max_workers: int | None = None
) -> list[T]:
    """Run zero-argument callables concurrently; results in task order.

    The degenerate cases never start a pool: an empty task list returns
    ``[]``, a single task (or ``max_workers=1``) runs inline in the
    calling thread.  The first task exception (in submission order)
    propagates to the caller; tasks that have not started yet are
    cancelled, and the pool is always shut down before this returns or
    raises.

    Example::

        from repro.runtime.pool import scatter

        squares = scatter([lambda i=i: i * i for i in range(4)])
        assert squares == [0, 1, 4, 9]
    """
    if max_workers is not None and max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    tasks = list(tasks)
    if not tasks:
        return []
    pool_size = len(tasks) if max_workers is None else min(max_workers, len(tasks))
    if pool_size <= 1 or len(tasks) == 1:
        return [task() for task in tasks]
    if _SCATTER_OBSERVERS:
        _notify_scatter(len(tasks))
    with ThreadPoolExecutor(max_workers=pool_size) as executor:
        # Explicit futures instead of executor.map: same submission-order
        # results and first-failure semantics, but a failure lets us
        # cancel the queued remainder instead of running it to
        # completion under the context manager's join.
        futures = [executor.submit(task) for task in tasks]
        try:
            return [future.result() for future in futures]
        except BaseException:
            for future in futures:
                future.cancel()
            raise
