"""Shared fan-out helper over ``concurrent.futures`` thread pools.

:class:`~repro.runtime.parallel.ParallelRuntime` fans factor-graph
components out over an executor; :class:`repro.cluster.ShardedEngine`
fans *whole shards* out (per-shard ingest, per-shard joint inference).
Both want the same discipline — results in submission order whatever
the completion order was, no pool overhead for degenerate workloads —
so it lives here once.

Thread pools only: the payloads (engines, factor graphs) are shared
in-process state that would be pointless to pickle.  CPU-bound stages
still overlap because the numeric kernels release the GIL; see the
``backend="process"`` escape hatch on ``ParallelRuntime`` for the
fully CPU-bound single-graph case.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor
from typing import TypeVar

T = TypeVar("T")


def scatter(
    tasks: Sequence[Callable[[], T]], max_workers: int | None = None
) -> list[T]:
    """Run zero-argument callables concurrently; results in task order.

    The degenerate cases never start a pool: an empty task list returns
    ``[]``, a single task (or ``max_workers=1``) runs inline in the
    calling thread.  The first task exception propagates to the caller
    (remaining tasks may still run to completion on the pool).

    Example::

        from repro.runtime.pool import scatter

        squares = scatter([lambda i=i: i * i for i in range(4)])
        assert squares == [0, 1, 4, 9]
    """
    if max_workers is not None and max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    tasks = list(tasks)
    if not tasks:
        return []
    pool_size = len(tasks) if max_workers is None else min(max_workers, len(tasks))
    if pool_size <= 1 or len(tasks) == 1:
        return [task() for task in tasks]
    with ThreadPoolExecutor(max_workers=pool_size) as executor:
        # executor.map preserves input order, whatever the completion
        # order was — the same merge discipline ParallelRuntime uses.
        return list(executor.map(lambda task: task(), tasks))
