"""The :class:`InferenceRuntime` contract: plan → execute → merge.

A runtime turns one :class:`InferenceTask` (graph + schedule + LBP
settings + optional evidence) into one merged
:class:`~repro.factorgraph.lbp.LBPResult` plus an
:class:`~repro.api.results.ExecutionProfile` describing how the work
was executed (how many components, iterations per component, wall
time, workers).  The three phases are separately overridable:

``plan``
    Decompose the task into independent :class:`ComponentPlan` units
    (the whole graph for :class:`~repro.runtime.serial.SerialRuntime`,
    connected components for the partitioned runtimes).
``execute``
    Run LBP for every unit, returning results in plan order — however
    the work was scheduled underneath.
``merge``
    Deterministically recombine the per-unit results
    (:func:`repro.factorgraph.lbp.merge_results`) and build the profile.

Runtimes hold no per-task state, so one instance can be shared across
engines and calls.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from collections.abc import Hashable, Mapping
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.factorgraph.graph import FactorGraph
from repro.factorgraph.lbp import (
    LBPMessages,
    LBPResult,
    LBPSettings,
    LoopyBP,
    Schedule,
    merge_results,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (api is upstream)
    from repro.api.results import ExecutionProfile


@dataclass(frozen=True)
class InferenceTask:
    """Everything one inference execution needs, independent of *how*.

    Produced by the planning side (e.g. :meth:`repro.core.model.JOCL`
    building a graph) and consumed by :meth:`InferenceRuntime.run`.
    """

    graph: FactorGraph
    schedule: Schedule | None = None
    settings: LBPSettings = field(default_factory=LBPSettings)
    #: Variable name -> clamped state (the ``Y^L`` evidence pass).
    evidence: Mapping[str, Hashable] | None = None


@dataclass(frozen=True)
class ComponentPlan:
    """One independent unit of work inside an :class:`InferencePlan`.

    The tuple order inside :class:`InferencePlan.components` *is* the
    merge order; executors must return results in that same order.
    """

    #: The stand-alone subgraph (the whole graph for serial plans).
    graph: FactorGraph
    #: A previous run's result to splice instead of running LBP — set by
    #: :meth:`InferenceRuntime.warm_start` for provably clean units.
    reused: LBPResult | None = None
    #: Converged message state to seed LBP from (dirty units whose
    #: variables partially survive from a previous run).
    warm_messages: LBPMessages | None = None

    @property
    def n_variables(self) -> int:
        return len(self.graph.variables)


@dataclass(frozen=True)
class InferencePlan:
    """The decomposition of one task into independent units."""

    task: InferenceTask
    components: tuple[ComponentPlan, ...]


@dataclass(frozen=True)
class RuntimeResult:
    """What a runtime hands back: the merged result plus its profile."""

    result: LBPResult
    profile: ExecutionProfile


def run_component(
    graph: FactorGraph,
    schedule: Schedule | None,
    settings: LBPSettings,
    evidence: Mapping[str, Hashable] | None,
    warm_start: LBPMessages | None = None,
    keep_messages: bool = False,
) -> LBPResult:
    """Run LBP over one plan unit (the shared worker body).

    Evidence is filtered down to the unit's own variables, and the
    result's graph back-reference is dropped so the payload stays small
    when it crosses a process boundary; :func:`merge_results` restores
    the whole-graph reference on the merged result.  ``warm_start`` and
    ``keep_messages`` pass straight through to :meth:`LoopyBP.run`.
    """
    local_evidence = None
    if evidence:
        local_evidence = {
            name: state for name, state in evidence.items() if name in graph.variables
        }
    runner = LoopyBP.from_settings(graph, schedule=schedule, settings=settings)
    result = runner.run(
        local_evidence, warm_start=warm_start, keep_messages=keep_messages
    )
    result._graph = None
    return result


class InferenceRuntime(ABC):
    """Abstract execution runtime; see the module docstring."""

    #: Stable identifier recorded in :class:`ExecutionProfile.runtime`.
    name = "abstract"

    #: Whether executors should retain converged message state on their
    #: results.  Off by default (messages are pure warm-start fuel);
    #: state-carrying runtimes like IncrementalRuntime enable it.
    keep_messages = False

    #: Worker count recorded in the profile (1 unless the runtime
    #: actually fans out).
    @property
    def max_workers(self) -> int:
        return 1

    #: Pool backend recorded in the profile (None for in-thread
    #: runtimes; pool-backed runtimes report the backend they actually
    #: execute on, including any degradation).
    @property
    def effective_backend(self) -> str | None:
        return None

    @abstractmethod
    def plan(self, task: InferenceTask) -> InferencePlan:
        """Decompose the task into independent units."""

    def warm_start(self, plan: InferencePlan) -> InferencePlan:
        """Hook: rewrite the plan with state reusable from prior runs.

        Called between :meth:`plan` and :meth:`execute`.  A runtime that
        caches converged state may mark provably clean units as
        ``reused`` (spliced instead of re-run) and attach
        ``warm_messages`` to dirty ones.  The default is a stateless
        no-op — the plan executes cold.
        """
        return plan

    def execute(self, plan: InferencePlan) -> list[LBPResult]:
        """Run every unit; results must come back in plan order.

        Units carrying a ``reused`` result are spliced without running
        LBP.  The default runs the rest sequentially in the calling
        thread; pool-backed runtimes override this.
        """
        task = plan.task
        return [
            unit.reused
            if unit.reused is not None
            else run_component(
                unit.graph,
                task.schedule,
                task.settings,
                task.evidence,
                warm_start=unit.warm_messages,
                keep_messages=self.keep_messages,
            )
            for unit in plan.components
        ]

    def merge(
        self, plan: InferencePlan, parts: list[LBPResult], wall_time_s: float
    ) -> RuntimeResult:
        """Deterministically recombine per-unit results + build profile."""
        from repro.api.results import ExecutionProfile

        merged = merge_results(parts, plan.task.graph)
        reused = sum(1 for unit in plan.components if unit.reused is not None)
        profile = ExecutionProfile(
            runtime=self.name,
            n_components=len(plan.components),
            component_sizes=tuple(unit.n_variables for unit in plan.components),
            component_iterations=tuple(part.iterations for part in parts),
            iterations=merged.iterations,
            converged=merged.converged,
            wall_time_s=wall_time_s,
            max_workers=self.max_workers,
            backend=self.effective_backend,
            reused_components=reused,
            recomputed_components=len(plan.components) - reused,
        )
        return RuntimeResult(result=merged, profile=profile)

    def after_run(
        self, task: InferenceTask, plan: InferencePlan, parts: list[LBPResult]
    ) -> None:
        """Hook: observe a completed run (state-carrying runtimes cache
        the per-unit results here).  The default is a no-op."""

    # ------------------------------------------------------------------
    # Persistence (repro.persist)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """JSON-safe snapshot of the runtime's configuration and state.

        The payload's ``"type"`` discriminator is the runtime's
        :attr:`name`; :func:`repro.runtime.runtime_from_state` uses it to
        dispatch reconstruction.  Stateless runtimes serialize nothing
        beyond their knobs; :class:`~repro.runtime.IncrementalRuntime`
        additionally carries its cached run state so a restored engine
        resumes incremental serving warm.
        """
        return {"type": self.name}

    @classmethod
    def from_state(cls, payload: dict) -> InferenceRuntime:
        """Reconstruct a runtime from :meth:`to_state` output."""
        del payload
        return cls()

    def run(self, task: InferenceTask) -> RuntimeResult:
        """The template method: plan, warm-start, execute, merge — timed."""
        start = time.perf_counter()
        plan = self.warm_start(self.plan(task))
        parts = self.execute(plan)
        wall_time_s = time.perf_counter() - start
        outcome = self.merge(plan, parts, wall_time_s)
        self.after_run(task, plan, parts)
        return outcome
