"""Dirty-component incremental LBP: re-infer only what an ingest touched.

The paper's joint MLN/factor-graph formulation is exactly the setting
where incremental maintenance pays off: adding OIE triples perturbs only
the factor-graph components they touch, and LBP messages never cross
component boundaries.  :class:`IncrementalRuntime` exploits that across
*successive* ``run`` calls on one long-lived engine:

* the plan is the partitioned plan (one unit per connected component);
* :meth:`IncrementalRuntime.warm_start` splices the previous run's
  converged result into every component it can prove **clean** —
  delta-untouched (see :meth:`mark_dirty` and
  :func:`repro.factorgraph.partition.dirty_components`) *and*
  structurally identical to the cached component (same variables,
  domains, factor scopes, feature tables and template weights);
* dirty components re-run LBP, seeded from the previous converged
  messages wherever the variable domains are unchanged.

**Decision-equivalence guarantee.**  A component is only reused when its
subgraph is bit-identical to the one the cached result was computed on;
LBP is deterministic, so re-running it would reproduce the cached result
exactly, and the merged output equals a cold
:class:`~repro.runtime.partitioned.PartitionedRuntime` run.  The
delta-dirty marking is a fast path *around* the structural check, never
a substitute for it — an unannounced change (e.g. new template weights
after ``fit``) is still caught and recomputed.  In the default
configuration dirty components run *cold* (uniform message
initialization), making their results bit-identical to a
:class:`PartitionedRuntime` run too — the merged output equals a cold
batch run byte for byte.

Opt-in message seeding (``warm_start=True``) additionally initializes
dirty components' messages from the previous converged state where
variable domains are unchanged.  Seeding moves where the fixed-point
search starts, not which fixed points exist, so it converges in fewer
iterations — but the stopping rule measures per-sweep change, so a
warm trajectory can halt at a sub-tolerance-different point than a cold
one, and the decoder's confidence ordering may resolve near-ties
differently.  Use it when throughput matters more than bit-stability;
the default keeps the decision-equivalence guarantee unconditional.

Unlike the stateless runtimes, an ``IncrementalRuntime`` instance owns
per-engine mutable state (the previous run's components, results and
messages) — give each engine its own instance and do not share one
across engines or threads.

The reused-vs-recomputed split of every run is reported in
:class:`~repro.api.results.ExecutionProfile` (``reused_components`` /
``recomputed_components``); reused components report the iteration count
of the run that originally computed them.
"""

from __future__ import annotations

from collections.abc import Collection, Mapping
from dataclasses import dataclass, replace

import numpy as np

from repro.factorgraph.graph import FactorGraph
from repro.factorgraph.lbp import LBPMessages, LBPResult, LBPSettings, Schedule
from repro.factorgraph.partition import dirty_components
from repro.factorgraph.serialize import (
    graph_from_state,
    graph_to_state,
    result_from_state,
    result_to_state,
    schedule_from_state,
    schedule_to_state,
    settings_from_state,
    settings_to_state,
)
from repro.runtime.base import InferencePlan, InferenceTask
from repro.runtime.partitioned import PartitionedRuntime


def phrases_of_variable(name: str) -> tuple[tuple[str, str], ...]:
    """``(kind, phrase)`` pairs a JOCL variable name references.

    Understands the two naming schemes of :mod:`repro.core.builder`:
    ``link:<kind>:<phrase>`` and ``canon:<kind>:<first>||<second>``.
    Unknown shapes yield no pairs (they are never delta-dirty and fall
    back to the structural check).
    """
    prefix, _, rest = name.partition(":")
    kind, separator, payload = rest.partition(":")
    if not separator or prefix not in ("link", "canon"):
        return ()
    if prefix == "link":
        return ((kind, payload),)
    first, separator, second = payload.partition("||")
    if separator:
        return ((kind, first), (kind, second))
    return ((kind, payload),)


def component_unchanged(old: FactorGraph, new: FactorGraph) -> bool:
    """Whether two component subgraphs define the same inference problem.

    True iff variables (names, domains, groups), factors (names,
    template, scope order, feature tables) and template weights all
    coincide.  Feature tables are compared by identity first — the
    engine's build cache hands unchanged components the *same* arrays,
    making the check O(component) in the common case.
    """
    if len(old.variables) != len(new.variables):
        return False
    if len(old.factors) != len(new.factors):
        return False
    for name, variable in new.variables.items():
        other = old.variables.get(name)
        if (
            other is None
            or other.domain != variable.domain
            or other.group != variable.group
        ):
            return False
    for name, template in new.templates.items():
        other = old.templates.get(name)
        if other is None or not np.array_equal(other.weights, template.weights):
            return False
    for name, factor in new.factors.items():
        other = old.factors.get(name)
        if other is None or other.template.name != factor.template.name:
            return False
        if tuple(v.name for v in other.variables) != tuple(
            v.name for v in factor.variables
        ):
            return False
        if other.feature_table is not factor.feature_table and not np.array_equal(
            other.feature_table, factor.feature_table
        ):
            return False
    return True


@dataclass
class _CachedComponent:
    """One component of the previous run: its subgraph and result."""

    graph: FactorGraph
    result: LBPResult


@dataclass
class _RunState:
    """Everything the previous run left behind for reuse."""

    settings: LBPSettings
    schedule: Schedule | None
    evidence: dict | None
    #: Component cache keyed by the frozen variable-name set.
    components: dict[frozenset[str], _CachedComponent]
    #: Variable name -> domain across all cached components (validates
    #: warm-start message reuse).
    domains: dict[str, tuple]
    #: Merged converged messages across all cached components.
    f2v: dict[tuple[str, str], np.ndarray]
    v2f: dict[tuple[str, str], np.ndarray]


class IncrementalRuntime(PartitionedRuntime):
    """Partitioned LBP that re-runs only dirty components across calls.

    Parameters
    ----------
    warm_start:
        Seed dirty components' messages from the previous converged
        state where variable domains are unchanged.  Off by default:
        cold re-runs keep the merged output bit-identical to a cold
        batch run; seeding trades that for fewer iterations (see the
        module docstring).

    See the module docstring for the reuse rules and the
    decision-equivalence guarantee.  Instances are stateful: one engine
    (and thread) per instance.
    """

    name = "incremental"
    keep_messages = True

    def __init__(self, warm_start: bool = False) -> None:
        self._warm = warm_start
        self._state: _RunState | None = None
        self._pending_dirty: dict[str, set[str]] | None = None

    @property
    def warm_starts(self) -> bool:
        """Whether dirty components are seeded from previous messages."""
        return self._warm

    # ------------------------------------------------------------------
    # Engine handshake
    # ------------------------------------------------------------------
    def mark_dirty(self, dirty: Mapping[str, Collection[str]]) -> None:
        """Record phrases (per slot kind ``"S"``/``"P"``/``"O"``) an
        ingest touched.

        Called by :meth:`repro.api.JOCLEngine.ingest` (through its delta
        bookkeeping); accumulates until the next :meth:`run` consumes
        it.  Components containing a variable of a marked phrase skip
        the reuse check and recompute; everything else must still pass
        the structural check, so an incomplete marking can cost time but
        never correctness.
        """
        if self._pending_dirty is None:
            self._pending_dirty = {}
        for kind, phrases in dirty.items():
            self._pending_dirty.setdefault(kind, set()).update(phrases)

    def reset(self) -> None:
        """Drop all cached state; the next run executes fully cold."""
        self._state = None
        self._pending_dirty = None

    # ------------------------------------------------------------------
    # Persistence (repro.persist)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """JSON-safe snapshot: knobs, pending dirty marks, run state.

        The run state serializes each cached component's subgraph
        (feature tables and all), converged result and message tables —
        exactly what :meth:`warm_start` consults — so an engine restored
        from a checkpoint splices clean components on its very first
        post-restore inference instead of recomputing the world.
        Payloads round-trip exactly; the structural reuse check compares
        restored tables value-for-value (``np.array_equal``) and still
        holds.
        """
        payload: dict = {"type": self.name, "warm_start": self._warm}
        if self._pending_dirty:
            payload["pending_dirty"] = {
                kind: sorted(phrases)
                for kind, phrases in sorted(self._pending_dirty.items())
            }
        state = self._state
        if state is not None:
            payload["run_state"] = {
                "settings": settings_to_state(state.settings),
                "schedule": (
                    schedule_to_state(state.schedule)
                    if state.schedule is not None
                    else None
                ),
                "evidence": dict(state.evidence) if state.evidence else None,
                "components": [
                    {
                        "graph": graph_to_state(cached.graph),
                        "result": result_to_state(cached.result),
                    }
                    for cached in state.components.values()
                ],
            }
        return payload

    @classmethod
    def from_state(cls, payload: dict) -> IncrementalRuntime:
        """Inverse of :meth:`to_state`; see :class:`_RunState`."""
        runtime = cls(warm_start=bool(payload.get("warm_start", False)))
        pending = payload.get("pending_dirty")
        if pending:
            runtime._pending_dirty = {
                kind: set(phrases) for kind, phrases in pending.items()
            }
        run_state = payload.get("run_state")
        if run_state is None:
            return runtime
        components: dict[frozenset[str], _CachedComponent] = {}
        domains: dict[str, tuple] = {}
        f2v: dict[tuple[str, str], np.ndarray] = {}
        v2f: dict[tuple[str, str], np.ndarray] = {}
        for entry in run_state["components"]:
            graph = graph_from_state(entry["graph"])
            result = result_from_state(entry["result"])
            components[frozenset(graph.variables)] = _CachedComponent(
                graph=graph, result=result
            )
            for variable_name, variable in graph.variables.items():
                domains[variable_name] = variable.domain
            if result.messages is not None:
                f2v.update(result.messages.f2v)
                v2f.update(result.messages.v2f)
        raw_schedule = run_state.get("schedule")
        raw_evidence = run_state.get("evidence")
        runtime._state = _RunState(
            settings=settings_from_state(run_state["settings"]),
            schedule=(
                schedule_from_state(raw_schedule)
                if raw_schedule is not None
                else None
            ),
            evidence=dict(raw_evidence) if raw_evidence else None,
            components=components,
            domains=domains,
            f2v=f2v,
            v2f=v2f,
        )
        return runtime

    # ------------------------------------------------------------------
    # The warm-start hook
    # ------------------------------------------------------------------
    def warm_start(self, plan: InferencePlan) -> InferencePlan:
        """Splice clean components; seed dirty ones (module docstring)."""
        state = self._state
        pending, self._pending_dirty = self._pending_dirty, None
        if state is None or not self._compatible(state, plan.task):
            return plan
        delta_dirty: frozenset[int] = frozenset()
        if pending:
            dirty_variables = [
                variable_name
                for variable_name in plan.task.graph.variables
                if any(
                    phrase in pending.get(kind, ())
                    for kind, phrase in phrases_of_variable(variable_name)
                )
            ]
            delta_dirty = dirty_components(
                [frozenset(unit.graph.variables) for unit in plan.components],
                dirty_variables,
            )
        units = []
        for position, unit in enumerate(plan.components):
            cached = state.components.get(frozenset(unit.graph.variables))
            if (
                cached is not None
                and position not in delta_dirty
                and component_unchanged(cached.graph, unit.graph)
            ):
                units.append(replace(unit, reused=cached.result))
                continue
            warm = self._collect_warm(unit.graph, state) if self._warm else None
            units.append(replace(unit, warm_messages=warm))
        return InferencePlan(task=plan.task, components=tuple(units))

    @staticmethod
    def _compatible(state: _RunState, task: InferenceTask) -> bool:
        """Whether cached results were computed under the same run knobs."""
        evidence = dict(task.evidence) if task.evidence else None
        return (
            state.settings == task.settings
            and state.schedule == task.schedule
            and state.evidence == evidence
        )

    def _collect_warm(
        self, graph: FactorGraph, state: _RunState
    ) -> LBPMessages | None:
        """Previous messages valid for ``graph``: key exists and the
        variable's domain is unchanged (the warm-start precondition)."""

        def valid(variable_name: str) -> bool:
            variable = graph.variables.get(variable_name)
            return (
                variable is not None
                and state.domains.get(variable_name) == variable.domain
            )

        f2v = {
            key: message
            for key, message in state.f2v.items()
            if key[0] in graph.factors and valid(key[1])
        }
        v2f = {
            key: message
            for key, message in state.v2f.items()
            if key[1] in graph.factors and valid(key[0])
        }
        if not f2v and not v2f:
            return None
        return LBPMessages(f2v=f2v, v2f=v2f)

    # ------------------------------------------------------------------
    # State capture
    # ------------------------------------------------------------------
    def after_run(
        self, task: InferenceTask, plan: InferencePlan, parts: list[LBPResult]
    ) -> None:
        """Remember the completed run for the next warm start."""
        components: dict[frozenset[str], _CachedComponent] = {}
        domains: dict[str, tuple] = {}
        f2v: dict[tuple[str, str], np.ndarray] = {}
        v2f: dict[tuple[str, str], np.ndarray] = {}
        for unit, part in zip(plan.components, parts, strict=True):
            components[frozenset(unit.graph.variables)] = _CachedComponent(
                graph=unit.graph, result=part
            )
            for variable_name, variable in unit.graph.variables.items():
                domains[variable_name] = variable.domain
            if part.messages is not None:
                f2v.update(part.messages.f2v)
                v2f.update(part.messages.v2f)
        self._state = _RunState(
            settings=task.settings,
            schedule=task.schedule,
            evidence=dict(task.evidence) if task.evidence else None,
            components=components,
            domains=domains,
            f2v=f2v,
            v2f=v2f,
        )
