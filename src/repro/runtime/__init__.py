"""Pluggable execution runtimes for JOCL inference.

The paper closes Section 3.4 noting inference "can be extended to a
distributed version with a graph segmentation algorithm"; this package
is that seam.  An :class:`InferenceRuntime` turns an
:class:`InferenceTask` (factor graph + schedule + LBP settings) into a
merged :class:`~repro.factorgraph.lbp.LBPResult` plus an
:class:`~repro.api.results.ExecutionProfile`, via three overridable
phases — **plan** (decompose), **execute** (run LBP per unit), and
**merge** (deterministic recombination).

Shipped runtimes:

* :class:`SerialRuntime` — whole-graph LBP, the historical behavior
  and the default everywhere;
* :class:`PartitionedRuntime` — per-connected-component LBP (the
  segmentation primitive of :mod:`repro.factorgraph.partition`),
  decision-for-decision equivalent to whole-graph LBP and usually
  faster: each component stops at its own convergence;
* :class:`ParallelRuntime` — the partitioned plan on a
  ``concurrent.futures`` pool (thread or process backend) with a
  worker-count knob and a deterministic merge order;
* :class:`IncrementalRuntime` — the partitioned plan with cross-call
  state: components untouched since the previous run are spliced from
  the cached converged result (with a structural identity check as the
  correctness backstop), dirty components re-run LBP — cold by default
  (keeping the merged output bit-identical to a cold batch run), or
  seeded from the previous messages via ``warm_start=True``.  Stateful
  — one engine per instance; the natural pairing for
  :meth:`repro.api.JOCLEngine.ingest`.

Select one per engine via
``JOCLEngine.builder().with_runtime(IncrementalRuntime())``,
or pass it straight to :meth:`repro.core.model.JOCL.infer`.
"""

from repro.runtime.base import (
    ComponentPlan,
    InferencePlan,
    InferenceRuntime,
    InferenceTask,
    RuntimeResult,
    run_component,
)
from repro.runtime.incremental import IncrementalRuntime
from repro.runtime.parallel import ParallelRuntime
from repro.runtime.partitioned import PartitionedRuntime
from repro.runtime.pool import scatter
from repro.runtime.serial import SerialRuntime

#: ``to_state()["type"]`` discriminator -> runtime class, for
#: :func:`runtime_from_state`.
_RUNTIME_TYPES: dict[str, type[InferenceRuntime]] = {
    SerialRuntime.name: SerialRuntime,
    PartitionedRuntime.name: PartitionedRuntime,
    ParallelRuntime.name: ParallelRuntime,
    IncrementalRuntime.name: IncrementalRuntime,
}


def runtime_from_state(payload: dict) -> InferenceRuntime:
    """Reconstruct a runtime from an :meth:`InferenceRuntime.to_state`
    payload, dispatching on its ``"type"`` discriminator.

    Raises :class:`ValueError` for unknown types (e.g. a third-party
    runtime whose class is not importable here); checkpoint callers let
    users override the runtime explicitly in that case.
    """
    runtime_type = payload.get("type")
    runtime_cls = _RUNTIME_TYPES.get(runtime_type)
    if runtime_cls is None:
        raise ValueError(
            f"unknown runtime type {runtime_type!r}; expected one of "
            f"{sorted(_RUNTIME_TYPES)} (pass an explicit runtime to "
            f"restore a checkpoint saved with a custom runtime)"
        )
    return runtime_cls.from_state(payload)


__all__ = [
    "ComponentPlan",
    "IncrementalRuntime",
    "InferencePlan",
    "InferenceRuntime",
    "InferenceTask",
    "ParallelRuntime",
    "PartitionedRuntime",
    "RuntimeResult",
    "SerialRuntime",
    "run_component",
    "runtime_from_state",
    "scatter",
]
