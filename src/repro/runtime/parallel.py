"""The partitioned plan executed on a ``concurrent.futures`` pool.

Work units are the connected components of the factor graph (shared
with :class:`~repro.runtime.partitioned.PartitionedRuntime`); execution
fans them out over a worker pool and the merge recombines results in
plan order, so the output is bit-for-bit independent of which worker
finished first.

Two backends:

``"thread"`` (default)
    Zero-copy dispatch in one process.  Keeps the partitioned
    runtime's early-stopping win, adds concurrency where the work
    releases the GIL, and never pays graph pickling — the right choice
    for typical OKB sizes.
``"process"``
    A ``ProcessPoolExecutor`` for CPU-bound multi-core serving.
    Components and results cross the process boundary pickled, so this
    pays off once components are large; if the host cannot spawn
    processes (sandboxes without semaphore support), execution degrades
    to the thread backend rather than failing the request.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor

from repro.factorgraph.lbp import LBPResult
from repro.runtime.base import InferencePlan, run_component
from repro.runtime.partitioned import PartitionedRuntime

_BACKENDS = ("thread", "process")


def _run_unit(payload: tuple) -> LBPResult:
    """Module-level worker body, picklable for the process backend."""
    graph, schedule, settings, evidence, warm_start, keep_messages = payload
    return run_component(
        graph,
        schedule,
        settings,
        evidence,
        warm_start=warm_start,
        keep_messages=keep_messages,
    )


class ParallelRuntime(PartitionedRuntime):
    """Partitioned LBP on a worker pool with a deterministic merge.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to ``os.cpu_count()``.  The effective size
        never exceeds the number of components.
    backend:
        ``"thread"`` (default) or ``"process"``; see the module
        docstring.
    """

    name = "parallel"

    def __init__(self, max_workers: int | None = None, backend: str = "thread") -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if backend not in _BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {_BACKENDS}"
            )
        self._max_workers = max_workers or os.cpu_count() or 1
        self._backend = backend
        # Resolved on first pool creation; "process" degrades to
        # "thread" (with a RuntimeWarning) when the host cannot spawn
        # processes.  Cached so degradation is probed once, not per run.
        self._resolved_backend: str | None = None

    @property
    def max_workers(self) -> int:
        return self._max_workers

    @property
    def backend(self) -> str:
        """The configured backend (see :attr:`effective_backend`)."""
        return self._backend

    @property
    def effective_backend(self) -> str:
        """The backend pool fan-out uses.

        Equals the configured backend until a pool has been started;
        after that, degradation is reflected ("process" that could not
        spawn reports "thread").  Single-unit plans bypass the pool
        entirely — the profile's ``n_components`` tells that story.
        """
        return self._resolved_backend or self._backend

    # ------------------------------------------------------------------
    # Persistence (repro.persist)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """Serialize the *configured* knobs (degradation is re-probed)."""
        return {
            "type": self.name,
            "max_workers": self._max_workers,
            "backend": self._backend,
        }

    @classmethod
    def from_state(cls, payload: dict) -> ParallelRuntime:
        return cls(
            max_workers=int(payload["max_workers"]),
            backend=str(payload["backend"]),
        )

    def _make_executor(self, pool_size: int) -> Executor:
        if self._backend == "process" and self._resolved_backend != "thread":
            executor = None
            try:
                executor = ProcessPoolExecutor(max_workers=pool_size)
                # Surface pool-creation failures (missing semaphore
                # support, fork restrictions) now, not at result time.
                executor.submit(int).result()
                self._resolved_backend = "process"
                return executor
            except (OSError, PermissionError, RuntimeError) as error:
                if executor is not None:
                    executor.shutdown(wait=False)
                self._resolved_backend = "thread"
                warnings.warn(
                    f"ParallelRuntime cannot start a process pool "
                    f"({error}); degrading to the thread backend",
                    RuntimeWarning,
                    stacklevel=2,
                )
        return ThreadPoolExecutor(max_workers=pool_size)

    def execute(self, plan: InferencePlan) -> list[LBPResult]:
        task = plan.task
        # Reused units are spliced in place; only the rest hit the pool.
        results: list[LBPResult | None] = [
            unit.reused for unit in plan.components
        ]
        pending = [
            (position, unit)
            for position, unit in enumerate(plan.components)
            if unit.reused is None
        ]
        payloads = [
            (
                unit.graph,
                task.schedule,
                task.settings,
                task.evidence,
                unit.warm_messages,
                self.keep_messages,
            )
            for _position, unit in pending
        ]
        pool_size = min(self._max_workers, len(payloads))
        if pool_size <= 1 or len(payloads) == 1:
            computed = [_run_unit(payload) for payload in payloads]
        else:
            with self._make_executor(pool_size) as executor:
                # Futures in submission order: merge order == plan order,
                # whatever the completion order was.  On the first unit
                # failure the queued remainder is cancelled, so the
                # context manager's join waits only for units already
                # running — the pool never outlives the error.
                futures = [
                    executor.submit(_run_unit, payload) for payload in payloads
                ]
                try:
                    computed = [future.result() for future in futures]
                except BaseException:
                    for future in futures:
                        future.cancel()
                    raise
        for (position, _unit), part in zip(pending, computed, strict=True):
            results[position] = part
        return results
