"""State stores: where :class:`~repro.persist.state.EngineState` lives.

The :class:`StateStore` contract is append-only snapshots plus a notion
of "current": every ``save_state`` creates a new immutable snapshot and
repoints the store at it, ``load_state()`` reads the current one (or any
older snapshot by id — the substrate of
:meth:`repro.serving.JOCLService.rollback`), and ``snapshots()`` lists
what is retained.  An optional ``history`` cap prunes the oldest
snapshots after each save so a long-running service does not accumulate
checkpoints without bound.

Both shipped backends guarantee that a crash mid-save never corrupts
the last good snapshot:

* :class:`FileStateStore` writes the new snapshot directory under a
  temporary name, fsyncs the section files, atomically renames the
  directory into place, and atomically replaces the ``CURRENT`` pointer
  file last;
* :class:`SQLiteStateStore` writes the snapshot and all sections in one
  transaction.

Both also implement the optional **namespace** and **document**
capabilities (:meth:`StateStore.namespace`,
:meth:`StateStore.save_document`): isolated sub-stores with their own
snapshot sequences plus small named JSON documents, the substrate of
cluster checkpoints (:meth:`repro.cluster.ShardedEngine.save`).
"""

from __future__ import annotations

import json
import os
import re
import shutil
import sqlite3
import time
from abc import ABC, abstractmethod
from collections.abc import Callable
from contextlib import closing
from pathlib import Path

from repro.api.errors import CheckpointError, SchemaError
from repro.persist.state import EngineState

#: Name of the pointer file of :class:`FileStateStore`.
_CURRENT = "CURRENT"

_SNAPSHOT_PREFIX = "snapshot-"

#: Shape of valid namespace and document names: path-safe, never
#: colliding with snapshot directories or the ``CURRENT`` pointer.
_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

#: On-disk suffix of :meth:`FileStateStore.save_document` files;
#: reserved in :func:`_validate_name` so namespaces cannot collide.
_DOCUMENT_SUFFIX = ".doc.json"


def _snapshot_name(sequence: int) -> str:
    return f"{_SNAPSHOT_PREFIX}{sequence:06d}"


def _snapshot_sequence(name: str) -> int | None:
    if not name.startswith(_SNAPSHOT_PREFIX):
        return None
    suffix = name[len(_SNAPSHOT_PREFIX) :]
    if not (suffix.isdigit() and suffix.isascii()):
        return None
    return int(suffix)


def _validate_name(name: str, what: str) -> str:
    """Validate a namespace / document name (path-safe, no collisions).

    Rejects, besides unsafe characters: snapshot-directory names, the
    ``CURRENT`` pointer, and anything ending in the reserved document
    suffix — a *namespace* named ``x.doc.json`` would otherwise collide
    on disk with *document* ``x`` and leak raw OS errors.
    """
    if (
        not isinstance(name, str)
        or not _NAME_PATTERN.fullmatch(name)
        or name.startswith(_SNAPSHOT_PREFIX)
        or name == _CURRENT
        or name.endswith(_DOCUMENT_SUFFIX)
        or ".." in name
    ):
        raise CheckpointError(
            f"invalid {what} name {name!r}: expected a path-safe "
            f"identifier ([A-Za-z0-9._-], not starting with "
            f"{_SNAPSHOT_PREFIX!r}, not named {_CURRENT!r}, not ending "
            f"in {_DOCUMENT_SUFFIX!r})"
        )
    return name


def _validate_snapshot_id(snapshot: object, where: object) -> str:
    """Reject malformed snapshot ids with a :class:`SchemaError`.

    Snapshot ids are opaque strings minted by ``save_state``
    (``snapshot-000001``-shaped); *unknown but well-formed* ids raise
    the not-found :class:`CheckpointError` downstream, while
    structurally invalid ids — wrong type, embedded NUL, path
    separators — are schema violations and must not leak the backend's
    raw ``ValueError`` / ``TypeError`` / driver error.  ``where`` is the
    store path, carried into the message.
    """
    if not isinstance(snapshot, str):
        raise SchemaError(
            f"malformed snapshot id for state store {where}: expected a "
            f"string, got {type(snapshot).__name__}"
        )
    if (
        "\x00" in snapshot
        or "/" in snapshot
        or "\\" in snapshot
        or snapshot in (".", "..")
    ):
        raise SchemaError(
            f"malformed snapshot id {snapshot!r} for state store {where}: "
            f"snapshot ids never contain path separators, NUL bytes or "
            f"dot-directories"
        )
    return snapshot


class StateStore(ABC):
    """The persistence contract engines save to and load from."""

    @abstractmethod
    def save_state(self, state: EngineState) -> str:
        """Persist a new snapshot; returns its id (e.g. ``snapshot-000002``).

        The snapshot becomes the store's *current* one.  Must be atomic:
        a failure mid-save leaves the previously current snapshot intact
        and current.
        """

    @abstractmethod
    def load_state(self, snapshot: str | None = None) -> EngineState:
        """Read a snapshot (default: the current one).

        Raises :class:`~repro.api.errors.CheckpointError` when the store
        is empty or the snapshot id is unknown, and
        :class:`~repro.api.errors.SchemaError` /
        :class:`~repro.api.errors.SchemaVersionError` when the stored
        payload is structurally invalid for this build.
        """

    @abstractmethod
    def snapshots(self) -> list[str]:
        """Retained snapshot ids, oldest first."""

    @abstractmethod
    def current(self) -> str | None:
        """Id of the snapshot ``load_state(None)`` would read, or
        ``None`` when the store holds no checkpoint.

        Not necessarily ``snapshots()[-1]``: a save that failed after
        materializing its snapshot but before committing it as current
        (e.g. :class:`FileStateStore` crashing between the directory
        rename and the ``CURRENT`` swap) leaves a newer snapshot on disk
        that is *not* the current one.
        """

    # ------------------------------------------------------------------
    # Namespaces and documents (the multi-engine substrate)
    # ------------------------------------------------------------------
    def namespace(self, name: str) -> StateStore:
        """A sub-store scoped under ``name``, with its own snapshot
        sequence, current pointer and documents.

        The substrate of cluster checkpoints
        (:meth:`repro.cluster.ShardedEngine.save`): each shard saves
        into its own namespace of one shared store.  Names must be
        path-safe identifiers (``[A-Za-z0-9._-]``).  Both shipped
        backends implement this; the default raises
        :class:`CheckpointError` so minimal third-party stores keep
        working for single-engine checkpoints.

        Example::

            shard_store = store.namespace("shard-00")
            snapshot = engine.save(shard_store)
        """
        raise CheckpointError(
            f"{type(self).__name__} does not support namespaces"
        )

    def save_document(self, name: str, payload: dict) -> None:
        """Atomically write a small named JSON document (last write wins).

        Documents live beside the snapshot sequence — the home of
        cluster manifests and similar coordination metadata that is not
        an :class:`EngineState`.  Like :meth:`namespace`, optional for
        third-party stores (the default raises :class:`CheckpointError`).

        Example::

            store.save_document("cluster", {"n_shards": 4})
        """
        raise CheckpointError(
            f"{type(self).__name__} does not support documents"
        )

    def load_document(self, name: str) -> dict:
        """Read a document written by :meth:`save_document`.

        Raises :class:`CheckpointError` when the document does not
        exist, :class:`~repro.api.errors.SchemaError` when its payload
        is not valid JSON.

        Example::

            manifest = store.load_document("cluster")
        """
        raise CheckpointError(
            f"{type(self).__name__} does not support documents"
        )

    def drop_snapshot(self, snapshot: str) -> None:
        """Delete one retained snapshot (garbage collection).

        The explicit sibling of the ``history`` cap, for callers that
        know which snapshots are unreachable — e.g.
        :meth:`repro.cluster.ShardedEngine.save` dropping shard
        snapshots no cluster manifest references anymore, *after* the
        new manifest committed.  Refuses to drop the store's *current*
        snapshot (:class:`CheckpointError`); dropping an unknown id is
        a no-op.  Optional for third-party stores (the default raises
        :class:`CheckpointError`).

        Example::

            for old in store.snapshots()[:-1]:
                store.drop_snapshot(old)
        """
        raise CheckpointError(
            f"{type(self).__name__} does not support dropping snapshots"
        )


def _prune(
    store: StateStore, history: int | None, drop: Callable[[str], None]
) -> None:
    """Shared history-cap enforcement: drop oldest beyond ``history``."""
    if history is None:
        return
    names = store.snapshots()
    for name in names[: max(0, len(names) - history)]:
        drop(name)


class FileStateStore(StateStore):
    """Snapshot-per-directory layout with an atomic ``CURRENT`` pointer.

    Layout::

        root/
          CURRENT              # contains e.g. "snapshot-000002"
          snapshot-000001/
            manifest.json
            config.json  okb.json  side.json  runtime.json  [...]
          snapshot-000002/
            ...

    Parameters
    ----------
    root:
        Store directory; created (with parents) if absent.
    history:
        Keep at most this many snapshots, pruning oldest after each
        save.  ``None`` (default) retains everything.
    """

    def __init__(self, root: str | Path, history: int | None = None) -> None:
        if history is not None and history < 1:
            raise ValueError(f"history must be >= 1, got {history}")
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._history = history

    @property
    def root(self) -> Path:
        """The store directory."""
        return self._root

    # ------------------------------------------------------------------
    # Namespaces and documents
    # ------------------------------------------------------------------
    def namespace(self, name: str) -> FileStateStore:
        """A sub-store in the subdirectory ``root/<name>``.

        Namespaces do *not* inherit the root store's ``history`` cap:
        a namespace owner (the cluster) decides retention explicitly —
        an inherited cap could prune a snapshot the cluster manifest
        still references before the next manifest commits.

        Example::

            sub = FileStateStore("checkpoints").namespace("shard-00")
            assert sub.root.name == "shard-00"
        """
        return FileStateStore(self._root / _validate_name(name, "namespace"))

    def drop_snapshot(self, snapshot: str) -> None:
        """Delete one snapshot directory (refusing the current one)."""
        snapshot = _validate_snapshot_id(snapshot, self._root)
        if snapshot == self.current():
            raise CheckpointError(
                f"refusing to drop the current snapshot {snapshot!r} of "
                f"state store {self._root}"
            )
        shutil.rmtree(self._root / snapshot, ignore_errors=True)

    def _document_path(self, name: str) -> Path:
        return self._root / (
            _validate_name(name, "document") + _DOCUMENT_SUFFIX
        )

    def save_document(self, name: str, payload: dict) -> None:
        """Write ``root/<name>.doc.json`` via temp file + atomic rename."""
        path = self._document_path(name)
        staging = self._root / f".tmp-{path.name}-{os.getpid()}"
        self._write_json(staging, payload)
        os.replace(staging, path)

    def load_document(self, name: str) -> dict:
        path = self._document_path(name)
        if not path.exists():
            raise CheckpointError(
                f"state store {self._root} holds no document {name!r}"
            )
        return self._read_json(path)

    # ------------------------------------------------------------------
    def snapshots(self) -> list[str]:
        found = [
            (sequence, entry.name)
            for entry in self._root.iterdir()
            if entry.is_dir()
            and (sequence := _snapshot_sequence(entry.name)) is not None
        ]
        return [name for _sequence, name in sorted(found)]

    def _write_json(self, path: Path, payload: dict) -> None:
        with path.open("w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())

    def save_state(self, state: EngineState) -> str:
        manifest, sections = state.to_sections()
        existing = self.snapshots()
        sequence = (
            _snapshot_sequence(existing[-1]) + 1 if existing else 1
        )
        name = _snapshot_name(sequence)
        staging = self._root / f".tmp-{name}-{os.getpid()}"
        if staging.exists():  # a previous crashed attempt; start clean
            shutil.rmtree(staging)
        staging.mkdir()
        try:
            for section_name, payload in sections.items():
                self._write_json(staging / f"{section_name}.json", payload)
            self._write_json(staging / "manifest.json", manifest)
            os.replace(staging, self._root / name)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        # Repoint CURRENT last, atomically: readers either see the old
        # snapshot or the new one, never a torn state.
        pointer = self._root / f".tmp-{_CURRENT}-{os.getpid()}"
        with pointer.open("w", encoding="utf-8") as handle:
            handle.write(name + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(pointer, self._root / _CURRENT)
        _prune(
            self,
            self._history,
            lambda old: shutil.rmtree(self._root / old, ignore_errors=True),
        )
        return name

    def current(self) -> str | None:
        pointer = self._root / _CURRENT
        if not pointer.exists():
            return None
        return pointer.read_text(encoding="utf-8").strip()

    # ------------------------------------------------------------------
    def _resolve(self, snapshot: str | None) -> Path:
        if snapshot is None:
            snapshot = self.current()
            if snapshot is None:
                raise CheckpointError(
                    f"state store {self._root} holds no checkpoint yet"
                )
        else:
            snapshot = _validate_snapshot_id(snapshot, self._root)
        directory = self._root / snapshot
        if not directory.is_dir():
            raise CheckpointError(
                f"state store {self._root} has no snapshot {snapshot!r}; "
                f"available: {self.snapshots()}"
            )
        return directory

    def _read_json(self, path: Path) -> dict:
        if not path.exists():
            raise CheckpointError(f"checkpoint file {path} is missing")
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise SchemaError(
                f"checkpoint file {path} is not valid JSON: {error}"
            ) from error

    def load_state(self, snapshot: str | None = None) -> EngineState:
        directory = self._resolve(snapshot)
        manifest = self._read_json(directory / "manifest.json")
        return EngineState.from_sections(
            manifest,
            lambda section: self._read_json(directory / f"{section}.json"),
        )


class SQLiteStateStore(StateStore):
    """Snapshots as rows in one SQLite database (one transaction per save).

    Example::

        store = SQLiteStateStore("checkpoints.db", history=5)
        snapshot = engine.save(store)
        restored = JOCLEngine.load(store, snapshot)

    Parameters
    ----------
    path:
        Database file; created (with parent directories) if absent.
    history:
        Keep at most this many snapshots; ``None`` retains everything.
    namespace:
        Sub-store scope (normally reached via :meth:`namespace`, not
        directly).  ``""`` — the default — is the root store, stored in
        the original ``snapshots``/``sections`` tables so databases
        written by earlier builds keep loading; namespaced snapshots
        live in the ``ns_snapshots``/``ns_sections`` tables, keyed by
        namespace, each namespace with its own sequence.
    """

    def __init__(
        self,
        path: str | Path,
        history: int | None = None,
        namespace: str = "",
    ) -> None:
        if history is not None and history < 1:
            raise ValueError(f"history must be >= 1, got {history}")
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._history = history
        self._namespace = namespace
        with closing(self._connect()) as connection, connection:
            connection.executescript(
                """
                CREATE TABLE IF NOT EXISTS snapshots (
                    sequence   INTEGER PRIMARY KEY,
                    name       TEXT UNIQUE NOT NULL,
                    created_at REAL NOT NULL,
                    manifest   TEXT NOT NULL
                );
                CREATE TABLE IF NOT EXISTS sections (
                    sequence INTEGER NOT NULL
                        REFERENCES snapshots(sequence) ON DELETE CASCADE,
                    name     TEXT NOT NULL,
                    payload  TEXT NOT NULL,
                    PRIMARY KEY (sequence, name)
                );
                CREATE TABLE IF NOT EXISTS ns_snapshots (
                    namespace  TEXT NOT NULL,
                    sequence   INTEGER NOT NULL,
                    name       TEXT NOT NULL,
                    created_at REAL NOT NULL,
                    manifest   TEXT NOT NULL,
                    PRIMARY KEY (namespace, sequence),
                    UNIQUE (namespace, name)
                );
                CREATE TABLE IF NOT EXISTS ns_sections (
                    namespace TEXT NOT NULL,
                    sequence  INTEGER NOT NULL,
                    name      TEXT NOT NULL,
                    payload   TEXT NOT NULL,
                    PRIMARY KEY (namespace, sequence, name),
                    FOREIGN KEY (namespace, sequence)
                        REFERENCES ns_snapshots(namespace, sequence)
                        ON DELETE CASCADE
                );
                CREATE TABLE IF NOT EXISTS documents (
                    name       TEXT PRIMARY KEY,
                    payload    TEXT NOT NULL,
                    updated_at REAL NOT NULL
                );
                """
            )

    @property
    def path(self) -> Path:
        """The database file."""
        return self._path

    def _connect(self) -> sqlite3.Connection:
        # One short-lived connection per operation: no cross-thread
        # sharing constraints, which the serving layer relies on.
        connection = sqlite3.connect(self._path)
        connection.execute("PRAGMA foreign_keys = ON")
        return connection

    def _where(self) -> str:
        """Store path plus namespace, for error messages."""
        if self._namespace:
            return f"{self._path} (namespace {self._namespace!r})"
        return str(self._path)

    # ------------------------------------------------------------------
    # Namespaces and documents
    # ------------------------------------------------------------------
    def namespace(self, name: str) -> SQLiteStateStore:
        """A sub-store inside the *same* database file.

        Like :meth:`FileStateStore.namespace`, deliberately does not
        inherit the root store's ``history`` cap.

        Example::

            sub = SQLiteStateStore("checkpoints.db").namespace("shard-00")
            assert sub.path == Path("checkpoints.db")
        """
        _validate_name(name, "namespace")
        scoped = f"{self._namespace}/{name}" if self._namespace else name
        return SQLiteStateStore(self._path, namespace=scoped)

    def drop_snapshot(self, snapshot: str) -> None:
        """Delete one snapshot row (refusing the current one)."""
        snapshot = _validate_snapshot_id(snapshot, self._where())
        if snapshot == self.current():
            raise CheckpointError(
                f"refusing to drop the current snapshot {snapshot!r} of "
                f"state store {self._where()}"
            )
        self._drop(snapshot)

    def _document_key(self, name: str) -> str:
        _validate_name(name, "document")
        return f"{self._namespace}/{name}" if self._namespace else name

    def save_document(self, name: str, payload: dict) -> None:
        """Upsert one row of the ``documents`` table (transactional)."""
        key = self._document_key(name)
        with closing(self._connect()) as connection, connection:
            connection.execute(
                "INSERT INTO documents (name, payload, updated_at) "
                "VALUES (?, ?, ?) ON CONFLICT(name) DO UPDATE SET "
                "payload = excluded.payload, updated_at = excluded.updated_at",
                (key, json.dumps(payload, sort_keys=True), time.time()),
            )

    def load_document(self, name: str) -> dict:
        key = self._document_key(name)
        with closing(self._connect()) as connection, connection:
            row = connection.execute(
                "SELECT payload FROM documents WHERE name = ?", (key,)
            ).fetchone()
        if row is None:
            raise CheckpointError(
                f"state store {self._where()} holds no document {name!r}"
            )
        try:
            return json.loads(row[0])
        except json.JSONDecodeError as error:
            raise SchemaError(
                f"document {name!r} in {self._where()} is not valid JSON: "
                f"{error}"
            ) from error

    # ------------------------------------------------------------------
    def snapshots(self) -> list[str]:
        with closing(self._connect()) as connection, connection:
            if self._namespace:
                rows = connection.execute(
                    "SELECT name FROM ns_snapshots WHERE namespace = ? "
                    "ORDER BY sequence",
                    (self._namespace,),
                ).fetchall()
            else:
                rows = connection.execute(
                    "SELECT name FROM snapshots ORDER BY sequence"
                ).fetchall()
        return [row[0] for row in rows]

    def save_state(self, state: EngineState) -> str:
        manifest, sections = state.to_sections()
        raw_manifest = json.dumps(manifest, sort_keys=True)
        raw_sections = [
            (section_name, json.dumps(payload, sort_keys=True))
            for section_name, payload in sections.items()
        ]
        with closing(self._connect()) as connection, connection:
            if self._namespace:
                row = connection.execute(
                    "SELECT COALESCE(MAX(sequence), 0) + 1 FROM ns_snapshots "
                    "WHERE namespace = ?",
                    (self._namespace,),
                ).fetchone()
                sequence = int(row[0])
                name = _snapshot_name(sequence)
                connection.execute(
                    "INSERT INTO ns_snapshots "
                    "(namespace, sequence, name, created_at, manifest) "
                    "VALUES (?, ?, ?, ?, ?)",
                    (self._namespace, sequence, name, time.time(), raw_manifest),
                )
                connection.executemany(
                    "INSERT INTO ns_sections "
                    "(namespace, sequence, name, payload) VALUES (?, ?, ?, ?)",
                    [
                        (self._namespace, sequence, section_name, payload)
                        for section_name, payload in raw_sections
                    ],
                )
            else:
                row = connection.execute(
                    "SELECT COALESCE(MAX(sequence), 0) + 1 FROM snapshots"
                ).fetchone()
                sequence = int(row[0])
                name = _snapshot_name(sequence)
                connection.execute(
                    "INSERT INTO snapshots "
                    "(sequence, name, created_at, manifest) VALUES (?, ?, ?, ?)",
                    (sequence, name, time.time(), raw_manifest),
                )
                connection.executemany(
                    "INSERT INTO sections (sequence, name, payload) "
                    "VALUES (?, ?, ?)",
                    [
                        (sequence, section_name, payload)
                        for section_name, payload in raw_sections
                    ],
                )
        _prune(self, self._history, self._drop)
        return name

    def _drop(self, name: str) -> None:
        with closing(self._connect()) as connection, connection:
            if self._namespace:
                connection.execute(
                    "DELETE FROM ns_snapshots WHERE namespace = ? AND name = ?",
                    (self._namespace, name),
                )
            else:
                connection.execute(
                    "DELETE FROM snapshots WHERE name = ?", (name,)
                )

    def current(self) -> str | None:
        with closing(self._connect()) as connection, connection:
            if self._namespace:
                row = connection.execute(
                    "SELECT name FROM ns_snapshots WHERE namespace = ? "
                    "ORDER BY sequence DESC LIMIT 1",
                    (self._namespace,),
                ).fetchone()
            else:
                row = connection.execute(
                    "SELECT name FROM snapshots ORDER BY sequence DESC LIMIT 1"
                ).fetchone()
        return row[0] if row is not None else None

    # ------------------------------------------------------------------
    def _snapshot_row(
        self, connection: sqlite3.Connection, snapshot: str | None
    ) -> tuple[int, str] | None:
        """(sequence, manifest) of the requested (or newest) snapshot."""
        if self._namespace:
            if snapshot is None:
                return connection.execute(
                    "SELECT sequence, manifest FROM ns_snapshots "
                    "WHERE namespace = ? ORDER BY sequence DESC LIMIT 1",
                    (self._namespace,),
                ).fetchone()
            return connection.execute(
                "SELECT sequence, manifest FROM ns_snapshots "
                "WHERE namespace = ? AND name = ?",
                (self._namespace, snapshot),
            ).fetchone()
        if snapshot is None:
            return connection.execute(
                "SELECT sequence, manifest FROM snapshots "
                "ORDER BY sequence DESC LIMIT 1"
            ).fetchone()
        return connection.execute(
            "SELECT sequence, manifest FROM snapshots WHERE name = ?",
            (snapshot,),
        ).fetchone()

    def _section_rows(
        self, connection: sqlite3.Connection, sequence: int
    ) -> sqlite3.Cursor:
        if self._namespace:
            return connection.execute(
                "SELECT name, payload FROM ns_sections "
                "WHERE namespace = ? AND sequence = ?",
                (self._namespace, sequence),
            )
        return connection.execute(
            "SELECT name, payload FROM sections WHERE sequence = ?",
            (sequence,),
        )

    def load_state(self, snapshot: str | None = None) -> EngineState:
        if snapshot is not None:
            snapshot = _validate_snapshot_id(snapshot, self._where())
        with closing(self._connect()) as connection, connection:
            row = self._snapshot_row(connection, snapshot)
            if row is None:
                if snapshot is None:
                    raise CheckpointError(
                        f"state store {self._where()} holds no checkpoint yet"
                    )
                raise CheckpointError(
                    f"state store {self._where()} has no snapshot "
                    f"{snapshot!r}; available: {self.snapshots()}"
                )
            sequence, raw_manifest = int(row[0]), row[1]
            payloads = {
                name: payload
                for name, payload in self._section_rows(connection, sequence)
            }
        try:
            manifest = json.loads(raw_manifest)
        except json.JSONDecodeError as error:
            raise SchemaError(
                f"checkpoint manifest in {self._path} is not valid JSON: "
                f"{error}"
            ) from error

        def read_section(section: str) -> dict:
            if section not in payloads:
                raise CheckpointError(
                    f"checkpoint section {section!r} is missing from "
                    f"{self._path}"
                )
            try:
                return json.loads(payloads[section])
            except json.JSONDecodeError as error:
                raise SchemaError(
                    f"checkpoint section {section!r} in {self._path} is "
                    f"not valid JSON: {error}"
                ) from error

        return EngineState.from_sections(manifest, read_section)
