"""State stores: where :class:`~repro.persist.state.EngineState` lives.

The :class:`StateStore` contract is append-only snapshots plus a notion
of "current": every ``save_state`` creates a new immutable snapshot and
repoints the store at it, ``load_state()`` reads the current one (or any
older snapshot by id — the substrate of
:meth:`repro.serving.JOCLService.rollback`), and ``snapshots()`` lists
what is retained.  An optional ``history`` cap prunes the oldest
snapshots after each save so a long-running service does not accumulate
checkpoints without bound.

Both shipped backends guarantee that a crash mid-save never corrupts
the last good snapshot:

* :class:`FileStateStore` writes the new snapshot directory under a
  temporary name, fsyncs the section files, atomically renames the
  directory into place, and atomically replaces the ``CURRENT`` pointer
  file last;
* :class:`SQLiteStateStore` writes the snapshot and all sections in one
  transaction.
"""

from __future__ import annotations

import json
import os
import shutil
import sqlite3
import time
from abc import ABC, abstractmethod
from contextlib import closing
from pathlib import Path

from repro.api.errors import CheckpointError, SchemaError
from repro.persist.state import EngineState

#: Name of the pointer file of :class:`FileStateStore`.
_CURRENT = "CURRENT"

_SNAPSHOT_PREFIX = "snapshot-"


def _snapshot_name(sequence: int) -> str:
    return f"{_SNAPSHOT_PREFIX}{sequence:06d}"


def _snapshot_sequence(name: str) -> int | None:
    if not name.startswith(_SNAPSHOT_PREFIX):
        return None
    suffix = name[len(_SNAPSHOT_PREFIX) :]
    return int(suffix) if suffix.isdigit() else None


class StateStore(ABC):
    """The persistence contract engines save to and load from."""

    @abstractmethod
    def save_state(self, state: EngineState) -> str:
        """Persist a new snapshot; returns its id (e.g. ``snapshot-000002``).

        The snapshot becomes the store's *current* one.  Must be atomic:
        a failure mid-save leaves the previously current snapshot intact
        and current.
        """

    @abstractmethod
    def load_state(self, snapshot: str | None = None) -> EngineState:
        """Read a snapshot (default: the current one).

        Raises :class:`~repro.api.errors.CheckpointError` when the store
        is empty or the snapshot id is unknown, and
        :class:`~repro.api.errors.SchemaError` /
        :class:`~repro.api.errors.SchemaVersionError` when the stored
        payload is structurally invalid for this build.
        """

    @abstractmethod
    def snapshots(self) -> list[str]:
        """Retained snapshot ids, oldest first."""

    @abstractmethod
    def current(self) -> str | None:
        """Id of the snapshot ``load_state(None)`` would read, or
        ``None`` when the store holds no checkpoint.

        Not necessarily ``snapshots()[-1]``: a save that failed after
        materializing its snapshot but before committing it as current
        (e.g. :class:`FileStateStore` crashing between the directory
        rename and the ``CURRENT`` swap) leaves a newer snapshot on disk
        that is *not* the current one.
        """


def _prune(store: "StateStore", history: int | None, drop) -> None:
    """Shared history-cap enforcement: drop oldest beyond ``history``."""
    if history is None:
        return
    names = store.snapshots()
    for name in names[: max(0, len(names) - history)]:
        drop(name)


class FileStateStore(StateStore):
    """Snapshot-per-directory layout with an atomic ``CURRENT`` pointer.

    Layout::

        root/
          CURRENT              # contains e.g. "snapshot-000002"
          snapshot-000001/
            manifest.json
            config.json  okb.json  side.json  runtime.json  [...]
          snapshot-000002/
            ...

    Parameters
    ----------
    root:
        Store directory; created (with parents) if absent.
    history:
        Keep at most this many snapshots, pruning oldest after each
        save.  ``None`` (default) retains everything.
    """

    def __init__(self, root: str | Path, history: int | None = None) -> None:
        if history is not None and history < 1:
            raise ValueError(f"history must be >= 1, got {history}")
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._history = history

    @property
    def root(self) -> Path:
        """The store directory."""
        return self._root

    # ------------------------------------------------------------------
    def snapshots(self) -> list[str]:
        found = [
            (sequence, entry.name)
            for entry in self._root.iterdir()
            if entry.is_dir()
            and (sequence := _snapshot_sequence(entry.name)) is not None
        ]
        return [name for _sequence, name in sorted(found)]

    def _write_json(self, path: Path, payload: dict) -> None:
        with path.open("w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())

    def save_state(self, state: EngineState) -> str:
        manifest, sections = state.to_sections()
        existing = self.snapshots()
        sequence = (
            _snapshot_sequence(existing[-1]) + 1 if existing else 1
        )
        name = _snapshot_name(sequence)
        staging = self._root / f".tmp-{name}-{os.getpid()}"
        if staging.exists():  # a previous crashed attempt; start clean
            shutil.rmtree(staging)
        staging.mkdir()
        try:
            for section_name, payload in sections.items():
                self._write_json(staging / f"{section_name}.json", payload)
            self._write_json(staging / "manifest.json", manifest)
            os.replace(staging, self._root / name)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        # Repoint CURRENT last, atomically: readers either see the old
        # snapshot or the new one, never a torn state.
        pointer = self._root / f".tmp-{_CURRENT}-{os.getpid()}"
        with pointer.open("w", encoding="utf-8") as handle:
            handle.write(name + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(pointer, self._root / _CURRENT)
        _prune(
            self,
            self._history,
            lambda old: shutil.rmtree(self._root / old, ignore_errors=True),
        )
        return name

    def current(self) -> str | None:
        pointer = self._root / _CURRENT
        if not pointer.exists():
            return None
        return pointer.read_text(encoding="utf-8").strip()

    # ------------------------------------------------------------------
    def _resolve(self, snapshot: str | None) -> Path:
        if snapshot is None:
            snapshot = self.current()
            if snapshot is None:
                raise CheckpointError(
                    f"state store {self._root} holds no checkpoint yet"
                )
        directory = self._root / snapshot
        if not directory.is_dir():
            raise CheckpointError(
                f"state store {self._root} has no snapshot {snapshot!r}; "
                f"available: {self.snapshots()}"
            )
        return directory

    def _read_json(self, path: Path) -> dict:
        if not path.exists():
            raise CheckpointError(f"checkpoint file {path} is missing")
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise SchemaError(
                f"checkpoint file {path} is not valid JSON: {error}"
            ) from error

    def load_state(self, snapshot: str | None = None) -> EngineState:
        directory = self._resolve(snapshot)
        manifest = self._read_json(directory / "manifest.json")
        return EngineState.from_sections(
            manifest,
            lambda section: self._read_json(directory / f"{section}.json"),
        )


class SQLiteStateStore(StateStore):
    """Snapshots as rows in one SQLite database (one transaction per save).

    Parameters
    ----------
    path:
        Database file; created (with parent directories) if absent.
    history:
        Keep at most this many snapshots; ``None`` retains everything.
    """

    def __init__(self, path: str | Path, history: int | None = None) -> None:
        if history is not None and history < 1:
            raise ValueError(f"history must be >= 1, got {history}")
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._history = history
        with closing(self._connect()) as connection, connection:
            connection.executescript(
                """
                CREATE TABLE IF NOT EXISTS snapshots (
                    sequence   INTEGER PRIMARY KEY,
                    name       TEXT UNIQUE NOT NULL,
                    created_at REAL NOT NULL,
                    manifest   TEXT NOT NULL
                );
                CREATE TABLE IF NOT EXISTS sections (
                    sequence INTEGER NOT NULL
                        REFERENCES snapshots(sequence) ON DELETE CASCADE,
                    name     TEXT NOT NULL,
                    payload  TEXT NOT NULL,
                    PRIMARY KEY (sequence, name)
                );
                """
            )

    @property
    def path(self) -> Path:
        """The database file."""
        return self._path

    def _connect(self) -> sqlite3.Connection:
        # One short-lived connection per operation: no cross-thread
        # sharing constraints, which the serving layer relies on.
        connection = sqlite3.connect(self._path)
        connection.execute("PRAGMA foreign_keys = ON")
        return connection

    # ------------------------------------------------------------------
    def snapshots(self) -> list[str]:
        with closing(self._connect()) as connection, connection:
            rows = connection.execute(
                "SELECT name FROM snapshots ORDER BY sequence"
            ).fetchall()
        return [row[0] for row in rows]

    def save_state(self, state: EngineState) -> str:
        manifest, sections = state.to_sections()
        with closing(self._connect()) as connection, connection:
            row = connection.execute(
                "SELECT COALESCE(MAX(sequence), 0) + 1 FROM snapshots"
            ).fetchone()
            sequence = int(row[0])
            name = _snapshot_name(sequence)
            connection.execute(
                "INSERT INTO snapshots (sequence, name, created_at, manifest) "
                "VALUES (?, ?, ?, ?)",
                (sequence, name, time.time(), json.dumps(manifest, sort_keys=True)),
            )
            connection.executemany(
                "INSERT INTO sections (sequence, name, payload) VALUES (?, ?, ?)",
                [
                    (sequence, section_name, json.dumps(payload, sort_keys=True))
                    for section_name, payload in sections.items()
                ],
            )
        _prune(self, self._history, self._drop)
        return name

    def _drop(self, name: str) -> None:
        with closing(self._connect()) as connection, connection:
            connection.execute("DELETE FROM snapshots WHERE name = ?", (name,))

    def current(self) -> str | None:
        with closing(self._connect()) as connection, connection:
            row = connection.execute(
                "SELECT name FROM snapshots ORDER BY sequence DESC LIMIT 1"
            ).fetchone()
        return row[0] if row is not None else None

    # ------------------------------------------------------------------
    def load_state(self, snapshot: str | None = None) -> EngineState:
        with closing(self._connect()) as connection, connection:
            if snapshot is None:
                row = connection.execute(
                    "SELECT sequence, manifest FROM snapshots "
                    "ORDER BY sequence DESC LIMIT 1"
                ).fetchone()
                if row is None:
                    raise CheckpointError(
                        f"state store {self._path} holds no checkpoint yet"
                    )
            else:
                row = connection.execute(
                    "SELECT sequence, manifest FROM snapshots WHERE name = ?",
                    (snapshot,),
                ).fetchone()
                if row is None:
                    raise CheckpointError(
                        f"state store {self._path} has no snapshot "
                        f"{snapshot!r}; available: {self.snapshots()}"
                    )
            sequence, raw_manifest = int(row[0]), row[1]
            payloads = {
                name: payload
                for name, payload in connection.execute(
                    "SELECT name, payload FROM sections WHERE sequence = ?",
                    (sequence,),
                )
            }
        try:
            manifest = json.loads(raw_manifest)
        except json.JSONDecodeError as error:
            raise SchemaError(
                f"checkpoint manifest in {self._path} is not valid JSON: "
                f"{error}"
            ) from error

        def read_section(section: str) -> dict:
            if section not in payloads:
                raise CheckpointError(
                    f"checkpoint section {section!r} is missing from "
                    f"{self._path}"
                )
            try:
                return json.loads(payloads[section])
            except json.JSONDecodeError as error:
                raise SchemaError(
                    f"checkpoint section {section!r} in {self._path} is "
                    f"not valid JSON: {error}"
                ) from error

        return EngineState.from_sections(manifest, read_section)
