"""The :class:`EngineState` snapshot and its schema-versioned envelope.

An :class:`EngineState` carries the JSON-safe payloads of every durable
piece of a :class:`repro.api.JOCLEngine` in named *sections*.  Stores
(:mod:`repro.persist.store`) persist each section separately under a
manifest, so backends can lay state out naturally (one file per section,
one row per section) and future schema versions can add sections without
rewriting readers.

Required sections: ``config``, ``okb``, ``side``, ``runtime``.
Optional sections (forward-filled with their defaults when absent):
``weights`` (untrained engines), ``build_cache`` (engines running with
custom signal registries have none).

The manifest carries :data:`PERSIST_SCHEMA_VERSION`; readers reject
unknown or missing versions with
:class:`~repro.api.errors.SchemaVersionError` and structurally invalid
envelopes with :class:`~repro.api.errors.SchemaError`, mirroring the
:mod:`repro.api.results` wire-format discipline.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass

from repro.api.errors import SchemaError, SchemaVersionError
from repro.core.config import FactorToggles, FeatureVariant, JOCLConfig

#: Version of the checkpoint layout.  Bump on any change a version-1
#: reader could not forward-fill.
PERSIST_SCHEMA_VERSION = 1

#: The manifest's ``type`` discriminator.
_STATE_TYPE = "engine_state"

#: Sections a valid checkpoint must provide.
_REQUIRED_SECTIONS = ("config", "okb", "side", "runtime")


# ----------------------------------------------------------------------
# Config payloads
# ----------------------------------------------------------------------
def config_to_state(config: JOCLConfig) -> dict:
    """Render a :class:`JOCLConfig` to a JSON-safe payload (exact)."""
    return {
        "pair_threshold": config.pair_threshold,
        "max_candidates": config.max_candidates,
        "max_triangles": config.max_triangles,
        "toggles": {
            "canonicalization": config.toggles.canonicalization,
            "transitivity": config.toggles.transitivity,
            "linking": config.toggles.linking,
            "fact_inclusion": config.toggles.fact_inclusion,
            "consistency": config.toggles.consistency,
        },
        "variant": config.variant.value,
        "transitive_high": config.transitive_high,
        "transitive_middle": config.transitive_middle,
        "transitive_low": config.transitive_low,
        "fact_high": config.fact_high,
        "fact_low": config.fact_low,
        "consistency_high": config.consistency_high,
        "consistency_low": config.consistency_low,
        "learning_rate": config.learning_rate,
        "learn_iterations": config.learn_iterations,
        "l2": config.l2,
        "lbp_iterations": config.lbp_iterations,
        "lbp_tolerance": config.lbp_tolerance,
        "lbp_damping": config.lbp_damping,
        "conflict_resolution": config.conflict_resolution,
        "conflict_confidence": config.conflict_confidence,
    }


def config_from_state(payload: Mapping) -> JOCLConfig:
    """Inverse of :func:`config_to_state`."""
    toggles = payload["toggles"]
    return JOCLConfig(
        pair_threshold=float(payload["pair_threshold"]),
        max_candidates=int(payload["max_candidates"]),
        max_triangles=int(payload["max_triangles"]),
        toggles=FactorToggles(
            canonicalization=bool(toggles["canonicalization"]),
            transitivity=bool(toggles["transitivity"]),
            linking=bool(toggles["linking"]),
            fact_inclusion=bool(toggles["fact_inclusion"]),
            consistency=bool(toggles["consistency"]),
        ),
        variant=FeatureVariant(payload["variant"]),
        transitive_high=float(payload["transitive_high"]),
        transitive_middle=float(payload["transitive_middle"]),
        transitive_low=float(payload["transitive_low"]),
        fact_high=float(payload["fact_high"]),
        fact_low=float(payload["fact_low"]),
        consistency_high=float(payload["consistency_high"]),
        consistency_low=float(payload["consistency_low"]),
        learning_rate=float(payload["learning_rate"]),
        learn_iterations=int(payload["learn_iterations"]),
        l2=float(payload["l2"]),
        lbp_iterations=int(payload["lbp_iterations"]),
        lbp_tolerance=float(payload["lbp_tolerance"]),
        lbp_damping=float(payload["lbp_damping"]),
        conflict_resolution=bool(payload["conflict_resolution"]),
        conflict_confidence=float(payload["conflict_confidence"]),
    )


# ----------------------------------------------------------------------
# The snapshot
# ----------------------------------------------------------------------
@dataclass
class EngineState:
    """One engine's durable state, as JSON-safe section payloads.

    Produced by :meth:`repro.api.engine.JOCLEngine.save` and consumed by
    :meth:`repro.api.engine.JOCLEngine.load`; stores shuttle it through
    :meth:`to_sections` / :meth:`from_sections`.
    """

    #: :func:`config_to_state` payload.
    config: dict
    #: :meth:`repro.okb.store.OpenKB.to_state` payload.
    okb: dict
    #: :meth:`repro.core.side_info.SideInformation.to_state` payload.
    side: dict
    #: :meth:`repro.runtime.InferenceRuntime.to_state` payload.
    runtime: dict
    #: Learned template weights (``export_weights`` shape), or ``None``.
    weights: dict[str, list[float]] | None = None
    #: :meth:`repro.core.builder.BuildCache.to_state` payload, or ``None``.
    build_cache: dict | None = None
    #: Number of ingest batches the engine had absorbed.
    n_ingests: int = 0

    def to_sections(self) -> tuple[dict, dict[str, dict]]:
        """The manifest plus the named section payloads."""
        sections: dict[str, dict] = {
            "config": self.config,
            "okb": self.okb,
            "side": self.side,
            "runtime": self.runtime,
        }
        if self.weights is not None:
            sections["weights"] = {"weights": self.weights}
        if self.build_cache is not None:
            sections["build_cache"] = self.build_cache
        manifest = {
            "schema_version": PERSIST_SCHEMA_VERSION,
            "type": _STATE_TYPE,
            "sections": sorted(sections),
            "n_ingests": self.n_ingests,
        }
        return manifest, sections

    @classmethod
    def from_sections(
        cls, manifest: object, read_section: Callable[[str], dict]
    ) -> EngineState:
        """Rebuild from a manifest and a section reader.

        ``read_section`` is the store's accessor (file read, row fetch);
        it is only called for sections the manifest lists.  Raises
        :class:`SchemaVersionError` / :class:`SchemaError` for invalid
        envelopes; optional sections absent from the manifest
        forward-fill to their defaults.
        """
        if not isinstance(manifest, Mapping):
            raise SchemaError(
                f"checkpoint manifest must be a mapping, got "
                f"{type(manifest).__name__}"
            )
        version = manifest.get("schema_version")
        if version != PERSIST_SCHEMA_VERSION:
            raise SchemaVersionError(version, PERSIST_SCHEMA_VERSION)
        found_type = manifest.get("type")
        if found_type != _STATE_TYPE:
            raise SchemaError(
                f"checkpoint manifest type {found_type!r} does not match "
                f"expected {_STATE_TYPE!r}"
            )
        listed = manifest.get("sections")
        if not isinstance(listed, (list, tuple)):
            raise SchemaError("checkpoint manifest is missing its section list")
        missing = [name for name in _REQUIRED_SECTIONS if name not in listed]
        if missing:
            raise SchemaError(
                f"checkpoint manifest is missing required section(s) {missing}"
            )
        weights = None
        if "weights" in listed:
            weights_section = read_section("weights")
            try:
                weights = weights_section["weights"]
            except (KeyError, TypeError) as error:
                raise SchemaError(
                    f"malformed weights section: {error}"
                ) from error
        return cls(
            config=read_section("config"),
            okb=read_section("okb"),
            side=read_section("side"),
            runtime=read_section("runtime"),
            weights=weights,
            build_cache=(
                read_section("build_cache") if "build_cache" in listed else None
            ),
            n_ingests=int(manifest.get("n_ingests", 0)),
        )
