"""Durable engine state: versioned checkpoints and pluggable stores.

The engine API (:mod:`repro.api`) made JOCL a long-lived service; this
package makes that service *durable*.  An :class:`EngineState` is a
schema-versioned snapshot of everything a :class:`repro.api.JOCLEngine`
accumulates — OKB triples, OKB- and CKB-derived side information (AMIE
rule evidence, KBP votes, anchors, IDF statistics), learned template
weights, configuration, the feature-table build cache and the
:class:`repro.runtime.IncrementalRuntime`'s cached run state — rendered
to JSON-safe sections whose floats round-trip exactly, so a restored
engine is decision-identical and resumes incremental serving warm.

A :class:`StateStore` persists snapshots.  Two backends ship:

* :class:`FileStateStore` — one directory per snapshot (a manifest plus
  one JSON file per section), written to a temporary directory and
  atomically renamed into place, with an atomically swapped ``CURRENT``
  pointer file — a crash mid-save never corrupts the last good
  snapshot;
* :class:`SQLiteStateStore` — snapshots and sections as rows in a
  single SQLite database, one transaction per save.

Use through the engine::

    store = FileStateStore("/var/lib/jocl/checkpoints")
    engine.save(store)                # snapshot id, e.g. "snapshot-000001"
    ...                               # process restart
    engine = JOCLEngine.load(store)   # warm: decisions identical,
                                      # incremental run state live

or through :class:`repro.serving.JOCLService`'s ``checkpoint()`` /
``rollback()`` session methods.

Both backends also support **namespaces** (``store.namespace("shard-00")``
— an isolated sub-store with its own snapshot sequence) and small named
**documents** (``store.save_document("cluster", manifest)``), the
substrate of cluster checkpoints: :meth:`repro.cluster.ShardedEngine.save`
writes one namespaced snapshot per shard plus a manifest document.
"""

from repro.persist.state import (
    PERSIST_SCHEMA_VERSION,
    EngineState,
    config_from_state,
    config_to_state,
)
from repro.persist.store import FileStateStore, SQLiteStateStore, StateStore

__all__ = [
    "PERSIST_SCHEMA_VERSION",
    "EngineState",
    "FileStateStore",
    "SQLiteStateStore",
    "StateStore",
    "config_from_state",
    "config_to_state",
]
