"""The :class:`WordEmbedding` protocol and shared phrase/cosine helpers."""

from __future__ import annotations

import abc

import numpy as np

from repro.strings.tokenize import tokenize


def cosine_similarity(first: np.ndarray, second: np.ndarray) -> float:
    """Cosine similarity clipped to ``[0, 1]``.

    The paper's feature functions require ``Sim_emb`` in ``[0, 1]``
    (``f_emb`` uses ``1 - Sim_emb`` for the negative state), so negative
    cosines are clipped to 0.
    """
    norm_a = float(np.linalg.norm(first))
    norm_b = float(np.linalg.norm(second))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    cosine = float(np.dot(first, second) / (norm_a * norm_b))
    return min(1.0, max(0.0, cosine))


class WordEmbedding(abc.ABC):
    """Common interface of all embedding backends."""

    @property
    @abc.abstractmethod
    def dimension(self) -> int:
        """Vector dimensionality."""

    @abc.abstractmethod
    def vector(self, word: str) -> np.ndarray:
        """Embedding of a single word (never raises; OOV handling is
        backend-specific)."""

    def phrase_vector(self, phrase: str) -> np.ndarray:
        """Average of the word vectors of ``phrase`` (Section 3.1.3:
        "we average the vectors of all the single words in the phrase").

        An empty / untokenizable phrase yields the zero vector.
        """
        tokens = tokenize(phrase)
        if not tokens:
            return np.zeros(self.dimension)
        vectors = [self.vector(token) for token in tokens]
        return np.mean(vectors, axis=0)

    def similarity(self, first: str, second: str) -> float:
        """``Sim_emb``: cosine similarity of two phrase embeddings."""
        return cosine_similarity(self.phrase_vector(first), self.phrase_vector(second))
