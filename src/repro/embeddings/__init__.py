"""Word/phrase embedding substrate (the paper's fastText role).

The ``f_emb`` signal (Section 3.1.3) averages word vectors over a phrase
and compares phrases by cosine similarity.  The paper uses fastText
vectors trained on Common Crawl; offline we provide two interchangeable
implementations of the :class:`WordEmbedding` protocol:

* :class:`HashedCharNgramEmbedding` — deterministic fastText-style
  subword hashing: a word's vector is the normalized sum of
  pseudo-random (hash-seeded) vectors of its character n-grams.  This
  reproduces fastText's key property for canonicalization: morphologic
  variants and shared-substring words land close in cosine space.
* :class:`SkipGramModel` — a small numpy skip-gram-with-negative-
  sampling trainer; the dataset generator can emit a corpus to train it
  on, adding distributional (co-occurrence) structure on top.

Both expose ``vector(word)``, ``phrase_vector(phrase)`` and
``similarity(a, b)``.
"""

from repro.embeddings.base import WordEmbedding, cosine_similarity
from repro.embeddings.hashed import HashedCharNgramEmbedding
from repro.embeddings.sgns import SkipGramConfig, SkipGramModel

__all__ = [
    "HashedCharNgramEmbedding",
    "SkipGramConfig",
    "SkipGramModel",
    "WordEmbedding",
    "cosine_similarity",
]
