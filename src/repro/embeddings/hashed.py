"""Deterministic fastText-style character-n-gram hash embeddings.

fastText represents a word as the sum of vectors of its character
n-grams (Bojanowski et al. 2017).  Offline we keep the architecture but
replace *learned* n-gram vectors with *hash-seeded pseudo-random* ones:
each n-gram deterministically maps to a unit Gaussian vector via a
seeded RNG keyed by a stable hash of the n-gram.

The resulting space preserves the property the ``f_emb`` signal needs —
strings sharing many character n-grams (morphological variants,
abbreviation expansions, shared headwords) have high cosine similarity —
while being fully reproducible with no model file.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.embeddings.base import WordEmbedding


def _stable_hash(text: str) -> int:
    """64-bit stable hash (Python's builtin ``hash`` is salted per run)."""
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class HashedCharNgramEmbedding(WordEmbedding):
    """Character-n-gram hash embedding.

    Parameters
    ----------
    dimension:
        Vector dimensionality.
    min_n / max_n:
        Range of character n-gram lengths, applied to the word padded
        with boundary markers ``<`` and ``>`` (as fastText does).
    seed:
        Global seed mixed into every n-gram hash, so two embeddings with
        different seeds define different spaces.
    use_word_gram:
        Also include the full padded word as one gram (fastText's word
        vector component).
    """

    def __init__(
        self,
        dimension: int = 64,
        min_n: int = 3,
        max_n: int = 5,
        seed: int = 0,
        use_word_gram: bool = True,
    ) -> None:
        if dimension < 1:
            raise ValueError(f"dimension must be >= 1, got {dimension}")
        if not 1 <= min_n <= max_n:
            raise ValueError(f"need 1 <= min_n <= max_n, got {min_n}..{max_n}")
        self._dimension = dimension
        self._min_n = min_n
        self._max_n = max_n
        self._seed = seed
        self._use_word_gram = use_word_gram
        self._cache: dict[str, np.ndarray] = {}

    @property
    def dimension(self) -> int:
        return self._dimension

    # ------------------------------------------------------------------
    # Persistence (repro.persist)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """JSON-safe snapshot: the constructor parameters.

        The embedding is a pure function of its parameters (vectors are
        hash-seeded, no learned weights), so reconstructing from them
        yields bit-identical vectors.
        """
        return {
            "type": "hashed_char_ngram",
            "dimension": self._dimension,
            "min_n": self._min_n,
            "max_n": self._max_n,
            "seed": self._seed,
            "use_word_gram": self._use_word_gram,
        }

    @classmethod
    def from_state(cls, payload: dict) -> HashedCharNgramEmbedding:
        """Inverse of :meth:`to_state`."""
        return cls(
            dimension=int(payload["dimension"]),
            min_n=int(payload["min_n"]),
            max_n=int(payload["max_n"]),
            seed=int(payload["seed"]),
            use_word_gram=bool(payload["use_word_gram"]),
        )

    def _ngrams(self, word: str) -> list[str]:
        padded = f"<{word}>"
        grams: list[str] = []
        for n in range(self._min_n, self._max_n + 1):
            if n > len(padded):
                break
            grams.extend(padded[i : i + n] for i in range(len(padded) - n + 1))
        if self._use_word_gram or not grams:
            grams.append(padded)
        return grams

    def _gram_vector(self, gram: str) -> np.ndarray:
        rng = np.random.default_rng(_stable_hash(gram) ^ self._seed)
        return rng.standard_normal(self._dimension)

    def vector(self, word: str) -> np.ndarray:
        """Normalized sum of the word's n-gram vectors (cached)."""
        key = word.lower()
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        total = np.zeros(self._dimension)
        for gram in self._ngrams(key):
            total += self._gram_vector(gram)
        norm = float(np.linalg.norm(total))
        if norm > 0.0:
            total /= norm
        self._cache[key] = total
        return total
