"""Skip-gram with negative sampling (SGNS), in numpy.

A compact reimplementation of word2vec's SGNS objective (Mikolov et al.
2013) sufficient to train distributional vectors on the synthetic corpus
the dataset generator emits.  It exists so the ``f_emb`` signal can also
be driven by *co-occurrence* semantics (the "distributional semantics"
rationale in Section 3.1.3), not only by subword shape.

Out-of-vocabulary words fall back to a hashed char-n-gram vector so the
model still covers phrases containing unseen tokens.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.embeddings.base import WordEmbedding
from repro.embeddings.hashed import HashedCharNgramEmbedding


@dataclass(frozen=True)
class SkipGramConfig:
    """Hyper-parameters for :class:`SkipGramModel`.

    Attributes
    ----------
    dimension:
        Embedding dimensionality.
    window:
        Max distance between center and context word.
    negatives:
        Negative samples per positive pair.
    epochs:
        Passes over the corpus.
    learning_rate:
        Initial SGD step size (linearly decayed to 10%).
    min_count:
        Words rarer than this are dropped from the vocabulary.
    subsample:
        Frequent-word subsampling threshold (0 disables).
    seed:
        RNG seed for init, sampling, and OOV fallback.
    """

    dimension: int = 32
    window: int = 3
    negatives: int = 4
    epochs: int = 3
    learning_rate: float = 0.05
    min_count: int = 1
    subsample: float = 0.0
    seed: int = 0


def _sigmoid(x: np.ndarray | float) -> np.ndarray | float:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


class SkipGramModel(WordEmbedding):
    """Trainable SGNS word embeddings.

    Usage::

        model = SkipGramModel(SkipGramConfig(dimension=32, epochs=2))
        model.train(sentences)           # sentences: list[list[str]]
        model.similarity("umd", "university")
    """

    def __init__(self, config: SkipGramConfig | None = None) -> None:
        self._config = config or SkipGramConfig()
        self._vocab: dict[str, int] = {}
        self._counts: Counter[str] = Counter()
        self._in_vectors: np.ndarray | None = None
        self._out_vectors: np.ndarray | None = None
        self._fallback = HashedCharNgramEmbedding(
            dimension=self._config.dimension, seed=self._config.seed
        )
        self._rng = np.random.default_rng(self._config.seed)
        self._negative_table: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Vocabulary
    # ------------------------------------------------------------------
    def _build_vocab(self, sentences: Sequence[Sequence[str]]) -> None:
        self._counts = Counter(
            word.lower() for sentence in sentences for word in sentence
        )
        kept = sorted(
            word
            for word, count in self._counts.items()
            if count >= self._config.min_count
        )
        self._vocab = {word: index for index, word in enumerate(kept)}
        size = len(self._vocab)
        dim = self._config.dimension
        self._in_vectors = (self._rng.random((size, dim)) - 0.5) / dim
        self._out_vectors = np.zeros((size, dim))
        # Unigram^0.75 negative-sampling table, as in word2vec.
        if size:
            frequencies = np.array(
                [self._counts[word] for word in kept], dtype=float
            ) ** 0.75
            probabilities = frequencies / frequencies.sum()
            table_size = max(1000, 20 * size)
            self._negative_table = self._rng.choice(
                size, size=table_size, p=probabilities
            )

    @property
    def vocabulary(self) -> frozenset[str]:
        """Words with trained vectors."""
        return frozenset(self._vocab)

    @property
    def dimension(self) -> int:
        return self._config.dimension

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def train(self, sentences: Iterable[Sequence[str]]) -> SkipGramModel:
        """Train on tokenized sentences; returns ``self`` for chaining."""
        corpus = [
            [word.lower() for word in sentence] for sentence in sentences if sentence
        ]
        self._build_vocab(corpus)
        if not self._vocab:
            return self
        assert self._in_vectors is not None and self._out_vectors is not None
        assert self._negative_table is not None

        encoded = [
            [self._vocab[word] for word in sentence if word in self._vocab]
            for sentence in corpus
        ]
        encoded = [sentence for sentence in encoded if len(sentence) > 1]
        total_steps = max(1, self._config.epochs * sum(len(s) for s in encoded))
        step = 0
        for _epoch in range(self._config.epochs):
            for sentence in encoded:
                sentence = self._subsample(sentence)
                for position, center in enumerate(sentence):
                    lr = self._config.learning_rate * max(
                        0.1, 1.0 - step / total_steps
                    )
                    step += 1
                    window = int(self._rng.integers(1, self._config.window + 1))
                    start = max(0, position - window)
                    stop = min(len(sentence), position + window + 1)
                    for context_pos in range(start, stop):
                        if context_pos == position:
                            continue
                        self._train_pair(center, sentence[context_pos], lr)
        return self

    def _subsample(self, sentence: list[int]) -> list[int]:
        threshold = self._config.subsample
        if threshold <= 0.0:
            return sentence
        total = sum(self._counts.values())
        kept: list[int] = []
        words = list(self._vocab)
        for index in sentence:
            frequency = self._counts[words[index]] / total
            keep_probability = min(1.0, (threshold / frequency) ** 0.5)
            if self._rng.random() < keep_probability:
                kept.append(index)
        return kept

    def _train_pair(self, center: int, context: int, lr: float) -> None:
        assert self._in_vectors is not None and self._out_vectors is not None
        assert self._negative_table is not None
        center_vec = self._in_vectors[center]
        gradient_center = np.zeros_like(center_vec)
        targets = [(context, 1.0)]
        negatives = self._rng.choice(self._negative_table, self._config.negatives)
        targets.extend((int(neg), 0.0) for neg in negatives if int(neg) != context)
        for target, label in targets:
            out_vec = self._out_vectors[target]
            score = _sigmoid(float(np.dot(center_vec, out_vec)))
            gradient = (label - score) * lr
            gradient_center += gradient * out_vec
            self._out_vectors[target] += gradient * center_vec
        self._in_vectors[center] += gradient_center

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def vector(self, word: str) -> np.ndarray:
        """Trained vector, or the hashed fallback when out-of-vocabulary."""
        index = self._vocab.get(word.lower())
        if index is None or self._in_vectors is None:
            return self._fallback.vector(word)
        return self._in_vectors[index]

    def __contains__(self, word: str) -> bool:
        return word.lower() in self._vocab
