"""Factor-graph construction (Sections 3.1-3.3).

The builder turns an OKB + side information into the JOCL factor graph:

* one *linking variable* per distinct (surface string, slot) node —
  ``link:S:<np>``, ``link:P:<rp>``, ``link:O:<np>`` — whose domain is
  the candidate list (plus a NIL state when no candidate exists);
* one *canonicalization variable* per admissible same-slot phrase pair
  — ``canon:S:<a>||<b>`` etc. — admitted when IDF token overlap reaches
  ``config.pair_threshold`` (Section 4.1, threshold 0.5);
* factor instances: F1/F2/F3 per canonicalization variable, U1/U2/U3
  per pair-variable triangle, F4/F5/F6 per linking variable, U4 per
  OIE triple, U5/U6/U7 per (pair, its two linking variables).

Identical-string mentions share one node (their pairwise
canonicalization variable would be trivially 1); see DESIGN.md §3.
"""

from __future__ import annotations

from collections.abc import Callable, Collection, Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import JOCLConfig
from repro.core.side_info import SideInformation
from repro.core.signals.base import SignalRegistry
from repro.core.signals.interaction import (
    consistency_table,
    fact_inclusion_table,
    transitivity_table,
)
from repro.core.signals.registry import default_registry
from repro.factorgraph.graph import FactorGraph, FactorTemplate, Variable
from repro.factorgraph.lbp import Schedule
from repro.strings.idf import IdfStatistics, idf_token_overlap
from repro.strings.tokenize import word_set

#: Domain label for "no candidate in the CKB".
NIL = "~NIL"

#: Slot kinds: subject, predicate, object.
KINDS = ("S", "P", "O")

#: Variable-group tags used by the LBP schedule.
CANON_GROUP = "canonicalization"
LINK_GROUP = "linking"


def link_var(kind: str, phrase: str) -> str:
    """Name of the linking variable of a (kind, phrase) node."""
    return f"link:{kind}:{phrase}"


def canon_var(kind: str, first: str, second: str) -> str:
    """Name of the canonicalization variable of a same-kind pair."""
    a, b = sorted((first, second))
    return f"canon:{kind}:{a}||{b}"


@dataclass
class GraphIndex:
    """Everything the decoder needs to interpret a built graph."""

    #: Distinct phrases per kind ("S" / "P" / "O"), sorted.
    nodes: dict[str, list[str]] = field(default_factory=dict)
    #: Candidate domains per (kind, phrase), in variable-domain order.
    candidates: dict[tuple[str, str], tuple[str, ...]] = field(default_factory=dict)
    #: Admitted canonicalization pairs per kind (sorted tuples).
    pairs: dict[str, list[tuple[str, str]]] = field(default_factory=dict)
    #: Triangles wired with transitivity factors, per kind.
    triangles: dict[str, list[tuple[str, str, str]]] = field(default_factory=dict)
    #: Triple ids that received a fact-inclusion factor.
    fact_factors: list[str] = field(default_factory=list)
    #: Whether linking / canonicalization variables exist.
    has_linking: bool = True
    has_canonicalization: bool = True

    def kind_nodes(self, kind: str) -> list[str]:
        """Phrases of one kind (empty when the kind is absent)."""
        return self.nodes.get(kind, [])


class BuildCache:
    """Memoized factor feature tables across successive graph builds.

    Rebuilding the factor graph after an ingest recomputes every signal
    for every factor — O(whole KB) work even when the batch touched a
    handful of phrases.  A :class:`BuildCache` (owned by a long-lived
    caller such as :class:`repro.api.JOCLEngine`) memoizes the computed
    tables keyed by the phrases they were computed from, so an unchanged
    factor costs a dictionary hit and hands back the *same* array object
    (which also makes downstream identity checks, e.g.
    :func:`repro.runtime.incremental.component_unchanged`, O(1)).

    Correct use requires the owner to call :meth:`invalidate` with every
    phrase whose signal inputs may have changed before the next build —
    any cached table naming a dirty phrase is dropped.  The cache is
    only sound for the default signal registry, whose per-table inputs
    are exactly the phrases in the key plus engine-lifetime-constant
    resources (CKB, anchors, embedding, PPDB, config); custom registries
    may close over arbitrary state and must build uncached.
    """

    def __init__(self) -> None:
        self._tables: dict[tuple, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self._tables)

    def get_or_compute(
        self, key: tuple, compute: Callable[[], np.ndarray]
    ) -> np.ndarray:
        """The cached table for ``key``, computing and storing on miss."""
        table = self._tables.get(key)
        if table is None:
            table = compute()
            self._tables[key] = table
        return table

    def invalidate(self, dirty: Mapping[str, Collection[str]]) -> int:
        """Drop every cached table that names a dirty phrase.

        ``dirty`` maps slot kinds (``"S"``/``"P"``/``"O"``) to the
        phrases whose signal inputs changed.  Returns the number of
        tables dropped.
        """
        dirty_sets = {kind: set(phrases) for kind, phrases in dirty.items() if phrases}
        if not dirty_sets:
            return 0
        empty: frozenset[str] = frozenset()

        def stale(key: tuple) -> bool:
            family = key[0]
            if family == "link":
                return key[2] in dirty_sets.get(key[1], empty)
            if family in ("pair", "consistency"):
                kind_dirty = dirty_sets.get(key[1], empty)
                return key[2] in kind_dirty or key[3] in kind_dirty
            if family == "fact":
                _family, _triple_id, subject, predicate, obj = key
                return (
                    subject in dirty_sets.get("S", empty)
                    or predicate in dirty_sets.get("P", empty)
                    or obj in dirty_sets.get("O", empty)
                )
            return True  # unknown family: never keep stale state
        stale_keys = [key for key in self._tables if stale(key)]
        for key in stale_keys:
            del self._tables[key]
        return len(stale_keys)

    # ------------------------------------------------------------------
    # Persistence (repro.persist)
    # ------------------------------------------------------------------
    @staticmethod
    def _key_to_json(key) -> list:
        return [
            BuildCache._key_to_json(part) if isinstance(part, tuple) else part
            for part in key
        ]

    @staticmethod
    def _key_from_json(key) -> tuple:
        return tuple(
            BuildCache._key_from_json(part) if isinstance(part, list) else part
            for part in key
        )

    def to_state(self) -> dict:
        """JSON-safe snapshot: every memoized table with its key.

        Cache keys are (nested) tuples of JSON scalars; tables round-trip
        exactly, so a restored cache hands the graph builder tables that
        are ``np.array_equal`` to freshly computed ones — letting a
        restored engine skip feature computation entirely on its first
        build.
        """
        return {
            "tables": [
                [self._key_to_json(key), table.tolist()]
                for key, table in self._tables.items()
            ]
        }

    @classmethod
    def from_state(cls, payload: dict) -> BuildCache:
        """Inverse of :meth:`to_state`."""
        cache = cls()
        for key, table in payload["tables"]:
            cache._tables[cls._key_from_json(key)] = np.asarray(table, dtype=float)
        return cache


class GraphBuilder:
    """Builds the JOCL factor graph for one OKB.

    Parameters
    ----------
    side:
        Substrate bundle (OKB, CKB, signals' resources).
    config:
        Hyper-parameters; ``config.toggles`` picks the factor families,
        ``config.variant`` the feature subsets.
    registry:
        Signal registry; defaults to the paper's signals filtered by
        ``config.variant``.
    cache:
        Optional :class:`BuildCache` memoizing feature tables across
        builds (the incremental-ingest fast path).  The caller owns
        invalidation; pass ``None`` (default) for a fully cold build.
    """

    def __init__(
        self,
        side: SideInformation,
        config: JOCLConfig | None = None,
        registry: SignalRegistry | None = None,
        cache: BuildCache | None = None,
    ) -> None:
        self._side = side
        self._config = config or JOCLConfig()
        self._registry = registry or default_registry(side, self._config.variant)
        self._cache = cache

    def _table(self, key: tuple, compute: Callable[[], np.ndarray]) -> np.ndarray:
        if self._cache is None:
            return compute()
        return self._cache.get_or_compute(key, compute)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def build(self) -> tuple[FactorGraph, GraphIndex]:
        """Construct the graph and its index."""
        graph = FactorGraph()
        index = GraphIndex()
        toggles = self._config.toggles
        index.has_linking = toggles.linking
        index.has_canonicalization = toggles.canonicalization

        okb = self._side.okb
        subjects = sorted({t.subject_norm for t in okb.triples})
        predicates = sorted({t.predicate_norm for t in okb.triples})
        objects = sorted({t.object_norm for t in okb.triples})
        index.nodes = {"S": subjects, "P": predicates, "O": objects}

        templates = self._make_templates(graph)

        if toggles.linking:
            self._add_linking_variables(graph, index, templates)
            if toggles.fact_inclusion:
                self._add_fact_inclusion(graph, index, templates)

        if toggles.canonicalization:
            self._add_canonicalization(graph, index, templates)
            if toggles.transitivity:
                self._add_transitivity(graph, index, templates)

        if toggles.consistency:
            self._add_consistency(graph, index, templates)

        return graph, index

    def schedule(self) -> Schedule:
        """The paper's message-passing order (Section 3.4), restricted to
        the factor families enabled by the toggles."""
        toggles = self._config.toggles
        factor_groups: list[list[str]] = []
        variable_groups: list[list[str]] = []
        if toggles.canonicalization:
            factor_groups.append(["F1", "F2", "F3"])
            if toggles.transitivity:
                factor_groups.append(["U1", "U2", "U3"])
        if toggles.linking:
            factor_groups.append(["F4", "F5", "F6"])
            if toggles.fact_inclusion:
                factor_groups.append(["U4"])
        if toggles.consistency:
            factor_groups.append(["U5", "U6", "U7"])
        if toggles.canonicalization:
            variable_groups.append([CANON_GROUP])
        if toggles.linking:
            variable_groups.append([LINK_GROUP])
        return Schedule.grouped(factor_groups, variable_groups)

    # ------------------------------------------------------------------
    # Templates
    # ------------------------------------------------------------------
    def _make_templates(self, graph: FactorGraph) -> dict[str, FactorTemplate]:
        registry = self._registry
        templates = {
            "F1": FactorTemplate("F1", registry.names(registry.np_pair)),
            "F2": FactorTemplate("F2", registry.names(registry.rp_pair)),
            "F3": FactorTemplate("F3", registry.names(registry.np_pair)),
            "F4": FactorTemplate("F4", registry.names(registry.entity_link)),
            "F5": FactorTemplate("F5", registry.names(registry.relation_link)),
            "F6": FactorTemplate("F6", registry.names(registry.entity_link)),
            "U1": FactorTemplate("U1", ["u"]),
            "U2": FactorTemplate("U2", ["u"]),
            "U3": FactorTemplate("U3", ["u"]),
            "U4": FactorTemplate("U4", ["u_fact", "u_pair"]),
            "U5": FactorTemplate("U5", ["u"]),
            "U6": FactorTemplate("U6", ["u"]),
            "U7": FactorTemplate("U7", ["u"]),
        }
        for template in templates.values():
            graph.add_template(template)
        return templates

    # ------------------------------------------------------------------
    # Linking side
    # ------------------------------------------------------------------
    def _add_linking_variables(
        self,
        graph: FactorGraph,
        index: GraphIndex,
        templates: dict[str, FactorTemplate],
    ) -> None:
        registry = self._registry
        generator = self._side.candidates
        factor_of_kind = {"S": "F4", "P": "F5", "O": "F6"}
        signals_of_kind = {
            "S": registry.entity_link,
            "P": registry.relation_link,
            "O": registry.entity_link,
        }
        for kind in KINDS:
            for phrase in index.kind_nodes(kind):
                if kind == "P":
                    ranked = generator.relation_candidates(phrase)
                    domain = tuple(c.relation_id for c in ranked)
                else:
                    ranked = generator.entity_candidates(phrase)
                    domain = tuple(c.entity_id for c in ranked)
                if not domain:
                    domain = (NIL,)
                index.candidates[(kind, phrase)] = domain
                graph.add_variable(
                    Variable(link_var(kind, phrase), domain, group=LINK_GROUP)
                )
                signals = signals_of_kind[kind]
                table = self._table(
                    ("link", kind, phrase, domain),
                    lambda: registry.link_feature_table(signals, phrase, domain),
                )
                graph.add_factor(
                    f"{factor_of_kind[kind]}:{phrase}",
                    templates[factor_of_kind[kind]],
                    [link_var(kind, phrase)],
                    table,
                )

    def _add_fact_inclusion(
        self,
        graph: FactorGraph,
        index: GraphIndex,
        templates: dict[str, FactorTemplate],
    ) -> None:
        kb = self._side.kb
        for triple in self._side.okb.triples:
            subject, predicate, obj = triple.as_tuple()
            scope = [
                link_var("S", subject),
                link_var("P", predicate),
                link_var("O", obj),
            ]
            if len(set(scope)) != 3:
                continue  # degenerate triple (subject == object string)
            table = self._table(
                ("fact", triple.triple_id, subject, predicate, obj),
                lambda: fact_inclusion_table(
                    self._config,
                    index.candidates[("S", subject)],
                    index.candidates[("P", predicate)],
                    index.candidates[("O", obj)],
                    kb.has_fact,
                    kb.relations_between,
                ),
            )
            graph.add_factor(
                f"U4:{triple.triple_id}", templates["U4"], scope, table
            )
            index.fact_factors.append(triple.triple_id)

    # ------------------------------------------------------------------
    # Canonicalization side
    # ------------------------------------------------------------------
    def _add_canonicalization(
        self,
        graph: FactorGraph,
        index: GraphIndex,
        templates: dict[str, FactorTemplate],
    ) -> None:
        registry = self._registry
        okb = self._side.okb
        idf_of_kind = {"S": okb.np_idf, "P": okb.rp_idf, "O": okb.np_idf}
        factor_of_kind = {"S": "F1", "P": "F2", "O": "F3"}
        signals_of_kind = {
            "S": registry.np_pair,
            "P": registry.rp_pair,
            "O": registry.np_pair,
        }
        for kind in KINDS:
            pairs = _admissible_pairs(
                index.kind_nodes(kind),
                idf_of_kind[kind],
                self._config.pair_threshold,
            )
            index.pairs[kind] = pairs
            for first, second in pairs:
                name = canon_var(kind, first, second)
                graph.add_variable(Variable(name, (0, 1), group=CANON_GROUP))
                signals = signals_of_kind[kind]
                table = self._table(
                    ("pair", kind, first, second),
                    lambda: registry.pair_feature_table(signals, first, second),
                )
                graph.add_factor(
                    f"{factor_of_kind[kind]}:{first}||{second}",
                    templates[factor_of_kind[kind]],
                    [name],
                    table,
                )

    def _add_transitivity(
        self,
        graph: FactorGraph,
        index: GraphIndex,
        templates: dict[str, FactorTemplate],
    ) -> None:
        table = transitivity_table(self._config)
        template_of_kind = {"S": "U1", "P": "U2", "O": "U3"}
        for kind in KINDS:
            triangles = _triangles(
                index.pairs.get(kind, []), self._config.max_triangles
            )
            index.triangles[kind] = triangles
            for a, b, c in triangles:
                scope = [
                    canon_var(kind, a, b),
                    canon_var(kind, b, c),
                    canon_var(kind, a, c),
                ]
                graph.add_factor(
                    f"{template_of_kind[kind]}:{a}|{b}|{c}",
                    templates[template_of_kind[kind]],
                    scope,
                    table,
                )

    # ------------------------------------------------------------------
    # Interaction (Section 3.3)
    # ------------------------------------------------------------------
    def _add_consistency(
        self,
        graph: FactorGraph,
        index: GraphIndex,
        templates: dict[str, FactorTemplate],
    ) -> None:
        template_of_kind = {"S": "U5", "P": "U6", "O": "U7"}
        nil_labels = frozenset((NIL,))
        for kind in KINDS:
            for first, second in index.pairs.get(kind, []):
                table = self._table(
                    ("consistency", kind, first, second),
                    lambda: consistency_table(
                        self._config,
                        index.candidates[(kind, first)],
                        index.candidates[(kind, second)],
                        nil_labels,
                    ),
                )
                scope = [
                    link_var(kind, first),
                    link_var(kind, second),
                    canon_var(kind, first, second),
                ]
                graph.add_factor(
                    f"{template_of_kind[kind]}:{first}||{second}",
                    templates[template_of_kind[kind]],
                    scope,
                    table,
                )


# ----------------------------------------------------------------------
# Pair and triangle enumeration
# ----------------------------------------------------------------------
def _admissible_pairs(
    phrases: Sequence[str],
    idf_stats: IdfStatistics,
    threshold: float,
    max_bucket: int = 1000,
) -> list[tuple[str, str]]:
    """Same-kind phrase pairs with IDF token overlap >= ``threshold``.

    Uses a token inverted index so only pairs sharing at least one token
    are scored (disjoint token sets have overlap 0).  Buckets larger
    than ``max_bucket`` (ultra-frequent tokens) are skipped: pairs whose
    only shared tokens are that frequent cannot reach a meaningful
    threshold.
    """
    token_index: dict[str, list[str]] = {}
    for phrase in phrases:
        for token in word_set(phrase):
            token_index.setdefault(token, []).append(phrase)
    seen: set[tuple[str, str]] = set()
    pairs: list[tuple[str, str]] = []
    for bucket in token_index.values():
        if len(bucket) > max_bucket:
            continue
        members = sorted(set(bucket))
        for i, first in enumerate(members):
            for second in members[i + 1 :]:
                key = (first, second)
                if key in seen:
                    continue
                seen.add(key)
                if idf_token_overlap(first, second, idf_stats) >= threshold:
                    pairs.append(key)
    pairs.sort()
    return pairs


def _triangles(
    pairs: Sequence[tuple[str, str]], max_triangles: int
) -> list[tuple[str, str, str]]:
    """Triangles in the pair graph: all three edges must be admitted.

    Deterministic (sorted) and capped at ``max_triangles``.
    """
    adjacency: dict[str, set[str]] = {}
    for first, second in pairs:
        adjacency.setdefault(first, set()).add(second)
        adjacency.setdefault(second, set()).add(first)
    triangles: list[tuple[str, str, str]] = []
    for first, second in pairs:
        # Common neighbors guarantee all three edges exist; requiring
        # third > second emits each triangle exactly once, sorted.
        for third in sorted(adjacency[first] & adjacency[second]):
            if third <= second:
                continue
            triangles.append((first, second, third))
            if len(triangles) >= max_triangles:
                return triangles
    return triangles
