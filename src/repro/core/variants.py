"""Named JOCL variants used in the paper's ablations (Tables 4 and 5).

* :func:`jocl_single_config` / :func:`jocl_double_config` /
  :func:`jocl_all_config` — the Table 5 feature combinations behind
  Figure 4.
* :func:`jocl_cano_config` — JOCL_cano: canonicalization factors only
  (no linking, no interaction), Table 4.
* :func:`jocl_link_config` — JOCL_link: linking factors only, Table 4.
* :func:`jocl_no_interaction_config` — both sides present but the
  consistency factors removed (the "unable to interact" condition the
  Table 4 caption describes).
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.config import FactorToggles, FeatureVariant, JOCLConfig


def jocl_all_config(base: JOCLConfig | None = None) -> JOCLConfig:
    """Full JOCL: all signals, all factor families."""
    return replace(base or JOCLConfig(), variant=FeatureVariant.ALL)


def jocl_single_config(base: JOCLConfig | None = None) -> JOCLConfig:
    """JOCL-single: one feature per factor (Table 5, row 1)."""
    return replace(base or JOCLConfig(), variant=FeatureVariant.SINGLE)


def jocl_double_config(base: JOCLConfig | None = None) -> JOCLConfig:
    """JOCL-double: two features per factor (Table 5, row 2)."""
    return replace(base or JOCLConfig(), variant=FeatureVariant.DOUBLE)


def jocl_cano_config(base: JOCLConfig | None = None) -> JOCLConfig:
    """JOCL_cano: the canonicalization task alone (Table 4, row 1)."""
    toggles = FactorToggles(
        canonicalization=True,
        transitivity=True,
        linking=False,
        fact_inclusion=False,
        consistency=False,
    )
    return replace(base or JOCLConfig(), toggles=toggles)


def jocl_link_config(base: JOCLConfig | None = None) -> JOCLConfig:
    """JOCL_link: the linking task alone (Table 4, row 2)."""
    toggles = FactorToggles(
        canonicalization=False,
        transitivity=False,
        linking=True,
        fact_inclusion=True,
        consistency=False,
    )
    return replace(base or JOCLConfig(), toggles=toggles)


def jocl_no_interaction_config(base: JOCLConfig | None = None) -> JOCLConfig:
    """Both tasks in one graph but without consistency factors."""
    toggles = FactorToggles(
        canonicalization=True,
        transitivity=True,
        linking=True,
        fact_inclusion=True,
        consistency=False,
    )
    return replace(base or JOCLConfig(), toggles=toggles)
