"""Decoding and conflict resolution (Section 3.5).

After LBP, every variable takes the state with the highest marginal
probability.  The canonicalization and linking decisions can still
disagree; the paper's conflict-elimination rule is:

    "If a pair of NPs are located in two different groups according to
    the linking result and the corresponding canonicalization variable
    of this pair has a value of 1, we select the label of the larger
    group as the final label for both NPs."

:func:`decode` implements that: nodes start with their linked target as
group label (a unique NIL label when unlinked), positive
canonicalization pairs are visited in decreasing marginal confidence,
and each conflicting pair is resolved toward the larger group.  Final
clusters are the label groups; final links are the (possibly
reassigned) labels.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.clustering.clusters import Clustering
from repro.core.builder import NIL, GraphIndex, canon_var, link_var
from repro.core.config import JOCLConfig
from repro.factorgraph.lbp import LBPResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (api is upstream)
    from repro.api.results import ExecutionProfile


@dataclass
class JOCLOutput:
    """Joint canonicalization + linking result.

    Canonicalization clusters and links are reported per node kind:
    subjects ("S"), predicates ("P"), objects ("O").  ``links`` values
    are CKB identifiers or ``None`` for NIL.  ``profile`` records how
    the inference executed when a runtime ran it (see
    :mod:`repro.runtime`); it never influences equality or decisions.
    """

    clusters: dict[str, Clustering] = field(default_factory=dict)
    links: dict[str, dict[str, str | None]] = field(default_factory=dict)
    iterations: int = 0
    converged: bool = False
    profile: ExecutionProfile | None = field(default=None, compare=False)

    # Convenience accessors matching the paper's task names ------------
    @property
    def np_clusters(self) -> Clustering:
        """Subject-NP canonicalization groups (the Table 1 task)."""
        return self.clusters["S"]

    @property
    def rp_clusters(self) -> Clustering:
        """RP canonicalization groups (the Table 2 task)."""
        return self.clusters["P"]

    @property
    def entity_links(self) -> dict[str, str | None]:
        """Subject NP -> entity id (the Table 3 task)."""
        return self.links["S"]

    @property
    def relation_links(self) -> dict[str, str | None]:
        """RP -> relation id (the Figure 3 task)."""
        return self.links["P"]

    @property
    def object_links(self) -> dict[str, str | None]:
        """Object NP -> entity id."""
        return self.links["O"]


def decode(
    result: LBPResult,
    index: GraphIndex,
    config: JOCLConfig,
    profile: ExecutionProfile | None = None,
) -> JOCLOutput:
    """Marginal-max decoding plus conflict resolution for all kinds."""
    output = JOCLOutput(
        iterations=result.iterations, converged=result.converged, profile=profile
    )
    for kind in ("S", "P", "O"):
        clusters, links = _decode_kind(result, index, config, kind)
        output.clusters[kind] = clusters
        output.links[kind] = links
    return output


def _decode_kind(
    result: LBPResult,
    index: GraphIndex,
    config: JOCLConfig,
    kind: str,
) -> tuple[Clustering, dict[str, str | None]]:
    nodes = index.kind_nodes(kind)
    if not nodes:
        return Clustering([]), {}

    # --- linked targets (marginal-max) --------------------------------
    linked: dict[str, str | None] = {}
    if index.has_linking:
        for phrase in nodes:
            state = result.map_state(link_var(kind, phrase))
            linked[phrase] = None if state == NIL else str(state)
    else:
        linked = {phrase: None for phrase in nodes}

    # --- positive canonicalization pairs, most confident first --------
    positive_pairs: list[tuple[float, str, str]] = []
    if index.has_canonicalization:
        for first, second in index.pairs.get(kind, []):
            name = canon_var(kind, first, second)
            if result.map_state(name) == 1:
                positive_pairs.append(
                    (result.map_probability(name), first, second)
                )
        positive_pairs.sort(key=lambda item: (-item[0], item[1], item[2]))

    if not index.has_linking:
        # Canonicalization-only variant: clusters are the connected
        # components of positive pairs.
        merged = [(first, second) for _confidence, first, second in positive_pairs]
        return Clustering.from_pairs(nodes, merged), linked

    # --- conflict resolution (Section 3.5) -----------------------------
    labels: dict[str, str] = {}
    for phrase in nodes:
        target = linked[phrase]
        labels[phrase] = target if target is not None else f"~nil:{phrase}"
    sizes: Counter[str] = Counter(labels.values())

    if config.conflict_resolution:
        for confidence, first, second in positive_pairs:
            if confidence < config.conflict_confidence:
                continue
            label_a = labels[first]
            label_b = labels[second]
            if label_a == label_b:
                continue
            # The larger linked group wins; ties break lexicographically
            # for determinism.
            if (sizes[label_a], label_b) > (sizes[label_b], label_a):
                winner, loser_phrase = label_a, second
            else:
                winner, loser_phrase = label_b, first
            old = labels[loser_phrase]
            labels[loser_phrase] = winner
            sizes[old] -= 1
            sizes[winner] += 1

    clusters = Clustering.from_assignment(labels)
    links: dict[str, str | None] = {}
    for phrase in nodes:
        label = labels[phrase]
        links[phrase] = None if label.startswith("~nil:") else label
    return clusters, links
