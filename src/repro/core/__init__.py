"""JOCL: the paper's primary contribution (Section 3).

Public API:

* :class:`~repro.core.config.JOCLConfig` — every knob from the paper
  (pair-pruning threshold 0.5, learning rate 0.05, heuristic scores for
  the ``u`` feature functions, feature variants).
* :class:`~repro.core.side_info.SideInformation` — the bundle of
  substrates the signals consume (OKB, CKB, anchors, embeddings, PPDB,
  AMIE, KBP, candidate generator).
* :class:`~repro.core.model.JOCL` — the framework facade:
  ``fit(validation)`` learns template weights, ``infer()`` runs LBP and
  decoding, returning a :class:`~repro.core.inference.JOCLOutput`.
* :mod:`~repro.core.variants` — JOCL-single / JOCL-double / JOCL-all
  and the JOCL_cano / JOCL_link ablations (Tables 4 and 5).
"""

from repro.core.builder import GraphBuilder, GraphIndex
from repro.core.config import FactorToggles, FeatureVariant, JOCLConfig
from repro.core.inference import JOCLOutput, decode
from repro.core.learning import build_evidence
from repro.core.model import JOCL
from repro.core.side_info import SideInformation
from repro.core.variants import (
    jocl_all_config,
    jocl_cano_config,
    jocl_double_config,
    jocl_link_config,
    jocl_single_config,
)

__all__ = [
    "FactorToggles",
    "FeatureVariant",
    "GraphBuilder",
    "GraphIndex",
    "JOCL",
    "JOCLConfig",
    "JOCLOutput",
    "SideInformation",
    "build_evidence",
    "decode",
    "jocl_all_config",
    "jocl_cano_config",
    "jocl_double_config",
    "jocl_link_config",
    "jocl_single_config",
]
