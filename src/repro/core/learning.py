"""Gold annotations and evidence construction for learning (Section 3.4).

The paper trains on a labeled configuration ``Y^L`` derived from the
validation split (triples of 20% of the Freebase entities of ReVerb45K).
:class:`GoldAnnotations` carries phrase-level gold labels;
:func:`build_evidence` turns them into the variable clamping the
:class:`~repro.factorgraph.learner.TemplateLearner` consumes:

* linking variables clamp to the gold entity/relation (when it is in
  the candidate domain — a gold target outside the domain cannot be
  expressed and the variable stays free);
* canonicalization variables clamp to 1 when both phrases' gold targets
  coincide, 0 when both are annotated and differ.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from dataclasses import dataclass, field

from repro.core.builder import GraphIndex, canon_var, link_var
from repro.okb.triples import OIETriple


@dataclass
class GoldAnnotations:
    """Phrase-level gold labels against the CKB.

    Keys are normalized surface strings (the graph's node names).
    """

    subject_entity: dict[str, str] = field(default_factory=dict)
    object_entity: dict[str, str] = field(default_factory=dict)
    relation: dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_triples(cls, triples: Iterable[OIETriple]) -> GoldAnnotations:
        """Collect gold labels from annotated triples.

        Conflicting annotations for one string keep the first seen (the
        generators never emit conflicts; real data could, and first-wins
        is deterministic).
        """
        gold = cls()
        for triple in triples:
            if triple.gold is None:
                continue
            if triple.gold.subject_entity is not None:
                gold.subject_entity.setdefault(
                    triple.subject_norm, triple.gold.subject_entity
                )
            if triple.gold.object_entity is not None:
                gold.object_entity.setdefault(
                    triple.object_norm, triple.gold.object_entity
                )
            if triple.gold.relation is not None:
                gold.relation.setdefault(triple.predicate_norm, triple.gold.relation)
        return gold

    def of_kind(self, kind: str) -> dict[str, str]:
        """Gold map for a node kind ("S" / "P" / "O")."""
        if kind == "S":
            return self.subject_entity
        if kind == "P":
            return self.relation
        if kind == "O":
            return self.object_entity
        raise ValueError(f"unknown kind {kind!r}")


def build_evidence(
    index: GraphIndex, gold: GoldAnnotations
) -> dict[str, Hashable]:
    """The labeled configuration ``Y^L`` for a built graph.

    Returns variable name -> clamped state label, covering linking
    variables (gold target, when in-domain) and canonicalization
    variables (pair label from gold target equality).
    """
    evidence: dict[str, Hashable] = {}
    for kind in ("S", "P", "O"):
        kind_gold = gold.of_kind(kind)
        if index.has_linking:
            for phrase in index.kind_nodes(kind):
                target = kind_gold.get(phrase)
                if target is None:
                    continue
                domain = index.candidates.get((kind, phrase), ())
                if target in domain:
                    evidence[link_var(kind, phrase)] = target
        if index.has_canonicalization:
            for first, second in index.pairs.get(kind, []):
                target_a = kind_gold.get(first)
                target_b = kind_gold.get(second)
                if target_a is None or target_b is None:
                    continue
                evidence[canon_var(kind, first, second)] = int(target_a == target_b)
    return evidence
