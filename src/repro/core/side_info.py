"""The :class:`SideInformation` bundle: everything JOCL's signals consume.

One object carries the OKB being canonicalized, the CKB being linked
against, and all auxiliary resources (anchor statistics, embeddings,
paraphrase DB, AMIE miner, KBP categorizer, candidate generator).  The
:meth:`SideInformation.build` constructor wires defaults for anything
not supplied, mirroring how the paper assembles its signals.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from functools import cached_property

from repro.ckb.anchors import AnchorStatistics
from repro.ckb.candidates import CandidateGenerator
from repro.ckb.kb import CuratedKB
from repro.embeddings.base import WordEmbedding
from repro.embeddings.hashed import HashedCharNgramEmbedding
from repro.kbp.categorizer import RelationCategorizer
from repro.okb.store import OpenKB
from repro.okb.triples import OIETriple
from repro.paraphrase.ppdb import ParaphraseDB
from repro.rules.amie import AmieConfig, AmieMiner


@dataclass
class SideInformation:
    """All substrates required by the JOCL feature functions."""

    okb: OpenKB
    kb: CuratedKB
    anchors: AnchorStatistics
    candidates: CandidateGenerator
    embedding: WordEmbedding
    ppdb: ParaphraseDB
    amie: AmieMiner
    kbp: RelationCategorizer

    @classmethod
    def build(
        cls,
        okb: OpenKB,
        kb: CuratedKB,
        anchors: AnchorStatistics | None = None,
        candidates: CandidateGenerator | None = None,
        embedding: WordEmbedding | None = None,
        ppdb: ParaphraseDB | None = None,
        amie: AmieMiner | None = None,
        kbp: RelationCategorizer | None = None,
        max_candidates: int = 8,
    ) -> SideInformation:
        """Assemble side information, defaulting any missing resource.

        Defaults: empty anchor table, hashed char-n-gram embeddings,
        empty PPDB, AMIE mined from the OKB itself, KBP categorizer
        distantly supervised by the CKB.
        """
        anchors = anchors or AnchorStatistics()
        candidates = candidates or CandidateGenerator(
            kb, anchors=anchors, max_candidates=max_candidates
        )
        embedding = embedding or HashedCharNgramEmbedding(dimension=64)
        ppdb = ppdb or ParaphraseDB()
        amie = amie or AmieMiner(okb.triples, AmieConfig())
        kbp = kbp or RelationCategorizer(kb, okb.triples)
        return cls(
            okb=okb,
            kb=kb,
            anchors=anchors,
            candidates=candidates,
            embedding=embedding,
            ppdb=ppdb,
            amie=amie,
            kbp=kbp,
        )

    def extend_okb_derived(
        self,
        new_triples: Iterable[OIETriple],
        amie: bool = True,
        kbp: bool = True,
    ) -> None:
        """Incrementally absorb freshly ingested triples.

        The cheap sibling of :meth:`refresh_okb_derived`: instead of
        re-deriving the AMIE miner and the KBP categorizer from the full
        OKB, both update their evidence in place via their ``extend``
        hooks — provably equivalent to a rebuild from the union (their
        statistics are additive per triple) at O(batch) cost.  Pass
        ``amie=False`` / ``kbp=False`` to keep a user-pinned resource
        untouched.  ``new_triples`` must be exactly the triples that
        were appended to :attr:`okb` since the resources last saw it.
        """
        batch = list(new_triples)
        if not batch:
            return
        if amie:
            self.amie.extend(batch)
        if kbp:
            self.kbp.extend(batch)

    def refresh_okb_derived(self, amie: bool = True, kbp: bool = True) -> None:
        """Re-derive OKB-dependent resources after in-place OKB growth.

        The incremental-ingest hook used by :class:`repro.api.JOCLEngine`:
        after :meth:`repro.okb.store.OpenKB.extend` added triples, the two
        resources distilled *from* the OKB (the AMIE rule miner and the
        distantly supervised KBP categorizer) are stale and rebuilt here.
        Everything derived from the CKB alone (candidate generator, anchor
        statistics, surface-form caches, embeddings, PPDB) is untouched.
        Pass ``amie=False`` / ``kbp=False`` to keep a user-pinned resource
        (and skip its rebuild cost entirely).  Rebuilds reuse the current
        resources' configuration (mining thresholds, vote minimums), so
        an ingest-then-infer run matches a batch run over the union even
        under non-default settings.
        """
        if amie:
            self.amie = AmieMiner(self.okb.triples, self.amie.config)
        if kbp:
            self.kbp = RelationCategorizer(
                self.kb, self.okb.triples, min_votes=self.kbp.min_votes
            )

    # ------------------------------------------------------------------
    # Persistence (repro.persist)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """JSON-safe snapshot of every resource *except* the OKB.

        The OKB travels as its own checkpoint section (it is the
        engine's primary state, not side information); pass the restored
        store to :meth:`from_state`.  The candidate generator is not
        serialized — it is a pure function of the CKB, the anchors and
        its two knobs, and is rebuilt on restore.

        Raises :class:`ValueError` for resources that cannot be
        reconstructed from a payload (an embedding type without a
        ``to_state`` hook); checkpoint callers translate that into
        :class:`repro.api.errors.CheckpointError`.
        """
        embedding_state = getattr(self.embedding, "to_state", None)
        if embedding_state is None:
            raise ValueError(
                f"embedding {type(self.embedding).__name__} has no "
                f"to_state hook and cannot be checkpointed; use "
                f"HashedCharNgramEmbedding or restore with an explicit "
                f"embedding override"
            )
        return {
            "kb": self.kb.to_state(),
            "anchors": self.anchors.to_state(),
            "ppdb": self.ppdb.to_state(),
            "embedding": embedding_state(),
            "amie": self.amie.to_state(),
            "kbp": self.kbp.to_state(),
            "candidates": self.candidates.to_state(),
        }

    @classmethod
    def from_state(
        cls,
        payload: dict,
        okb: OpenKB,
        embedding: WordEmbedding | None = None,
    ) -> SideInformation:
        """Inverse of :meth:`to_state`.

        ``okb`` is the restored triple store the bundle wraps.
        ``embedding`` overrides the serialized embedding spec (the
        escape hatch for engines checkpointed before swapping in a
        custom embedding is *not* supported — specs and overrides must
        describe the same space for decisions to reproduce).
        """
        kb = CuratedKB.from_state(payload["kb"])
        anchors = AnchorStatistics.from_state(payload["anchors"])
        if embedding is None:
            embedding_spec = payload["embedding"]
            if embedding_spec.get("type") != "hashed_char_ngram":
                raise ValueError(
                    f"unknown embedding spec type "
                    f"{embedding_spec.get('type')!r}; pass an explicit "
                    f"embedding to restore this checkpoint"
                )
            embedding = HashedCharNgramEmbedding.from_state(embedding_spec)
        return cls(
            okb=okb,
            kb=kb,
            anchors=anchors,
            candidates=CandidateGenerator.from_state(
                kb, anchors, payload["candidates"]
            ),
            embedding=embedding,
            ppdb=ParaphraseDB.from_state(payload["ppdb"]),
            amie=AmieMiner.from_state(payload["amie"]),
            kbp=RelationCategorizer.from_state(kb, payload["kbp"]),
        )

    @cached_property
    def entity_surface_forms(self) -> dict[str, frozenset[str]]:
        """Entity id -> normalized surface forms (name + aliases)."""
        return {
            entity_id: entity.all_surface_forms()
            for entity_id, entity in self.kb.entities.items()
        }

    @cached_property
    def relation_surface_forms(self) -> dict[str, frozenset[str]]:
        """Relation id -> normalized surface forms (name + lexicalizations)."""
        return {
            relation_id: relation.all_surface_forms()
            for relation_id, relation in self.kb.relations.items()
        }
