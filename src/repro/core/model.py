"""The JOCL facade: build, learn, infer.

Typical use (the paper's protocol, Section 4.1)::

    model = JOCL(config)
    model.fit(validation_side, validation_gold)   # learn ω* (lr 0.05)
    output = model.infer(test_side)               # LBP + decoding

``fit`` builds the factor graph of the validation OKB, clamps the gold
configuration ``Y^L``, and runs the clamped/free gradient learner; the
learned template weights are stored on the model and installed into
every subsequently built graph.  ``infer`` builds the graph of the
target OKB, runs LBP with the paper's message schedule, and decodes
with conflict resolution.
"""

from __future__ import annotations

import numpy as np

from repro.core.builder import BuildCache, GraphBuilder, GraphIndex
from repro.core.config import JOCLConfig
from repro.core.inference import JOCLOutput, decode
from repro.core.learning import GoldAnnotations, build_evidence
from repro.core.side_info import SideInformation
from repro.core.signals.base import SignalRegistry
from repro.factorgraph.graph import FactorGraph
from repro.factorgraph.lbp import LBPResult, LBPSettings, LoopyBP
from repro.factorgraph.learner import LearningHistory, TemplateLearner
from repro.runtime.base import InferenceRuntime, InferenceTask
from repro.runtime.serial import SerialRuntime

#: Shared default: whole-graph LBP in the calling thread (stateless,
#: so one instance serves every model).
_DEFAULT_RUNTIME = SerialRuntime()


class JOCL:
    """Joint OKB canonicalization and linking.

    Parameters
    ----------
    config:
        Hyper-parameters; defaults reproduce the paper's constants.
    registry_factory:
        Optional ``(side, variant) -> SignalRegistry`` override for
        plugging in new signals (the framework's extensibility claim);
        defaults to the paper's signal set.
    """

    def __init__(
        self,
        config: JOCLConfig | None = None,
        registry_factory=None,
    ) -> None:
        self.config = config or JOCLConfig()
        self._registry_factory = registry_factory
        self.weights: dict[str, np.ndarray] | None = None
        self.history: LearningHistory | None = None

    # ------------------------------------------------------------------
    # Graph plumbing
    # ------------------------------------------------------------------
    def _registry(self, side: SideInformation) -> SignalRegistry | None:
        if self._registry_factory is None:
            return None
        return self._registry_factory(side, self.config.variant)

    @property
    def uses_default_signals(self) -> bool:
        """Whether the model runs on the paper's default signal set.

        The engine's incremental build cache is only sound for the
        default registry (whose table inputs are known exactly); custom
        registries force cold builds.
        """
        return self._registry_factory is None

    def build_graph(
        self,
        side: SideInformation,
        cache: BuildCache | None = None,
    ) -> tuple[FactorGraph, GraphIndex, GraphBuilder]:
        """Build the factor graph for an OKB, installing learned weights.

        ``cache`` optionally memoizes feature tables across builds (see
        :class:`repro.core.builder.BuildCache`); the caller owns its
        invalidation.
        """
        builder = GraphBuilder(side, self.config, self._registry(side), cache=cache)
        graph, index = builder.build()
        if self.weights is not None:
            for name, weights in self.weights.items():
                if name in graph.templates:
                    graph.templates[name].set_weights(weights.copy())
        return graph, index, builder

    # ------------------------------------------------------------------
    # Learning (Section 3.4)
    # ------------------------------------------------------------------
    def fit(
        self, side: SideInformation, gold: GoldAnnotations
    ) -> LearningHistory:
        """Learn template weights on a labeled (validation) OKB."""
        builder = GraphBuilder(side, self.config, self._registry(side))
        graph, index = builder.build()
        evidence = build_evidence(index, gold)
        if not evidence:
            raise ValueError(
                "no gold label maps onto the validation graph; check that "
                "gold targets appear in the candidate domains"
            )
        learner = TemplateLearner(
            graph,
            schedule=builder.schedule(),
            learning_rate=self.config.learning_rate,
            max_iterations=self.config.learn_iterations,
            lbp_iterations=self.config.lbp_iterations,
            lbp_damping=self.config.lbp_damping,
            l2=self.config.l2,
        )
        self.history = learner.fit(evidence)
        self.weights = {
            name: template.weights.copy()
            for name, template in graph.templates.items()
        }
        return self.history

    # ------------------------------------------------------------------
    # Inference (Sections 3.4-3.5): plan (build task) / execute (runtime)
    # ------------------------------------------------------------------
    def plan_inference(
        self, graph: FactorGraph, builder: GraphBuilder
    ) -> InferenceTask:
        """The execution-agnostic inference plan for a built graph."""
        return InferenceTask(
            graph=graph,
            schedule=builder.schedule(),
            settings=LBPSettings(
                max_iterations=self.config.lbp_iterations,
                tolerance=self.config.lbp_tolerance,
                damping=self.config.lbp_damping,
            ),
        )

    def infer(
        self, side: SideInformation, runtime: InferenceRuntime | None = None
    ) -> JOCLOutput:
        """Run LBP and decoding on an OKB; weights from :meth:`fit` if set."""
        graph, index, builder = self.build_graph(side)
        return self.infer_built(graph, index, builder, runtime=runtime)

    def infer_built(
        self,
        graph: FactorGraph,
        index: GraphIndex,
        builder: GraphBuilder,
        runtime: InferenceRuntime | None = None,
    ) -> JOCLOutput:
        """Run LBP and decoding on a graph from :meth:`build_graph`.

        Lets callers (e.g. the engine API) inspect or validate the built
        graph before paying for message passing.  ``runtime`` selects
        how the plan executes (default: :class:`SerialRuntime`); the
        resulting :class:`JOCLOutput` carries the runtime's
        :class:`~repro.api.results.ExecutionProfile`.
        """
        executed = (runtime or _DEFAULT_RUNTIME).run(
            self.plan_inference(graph, builder)
        )
        return decode(executed.result, index, self.config, profile=executed.profile)

    def infer_raw(
        self, side: SideInformation
    ) -> tuple[LBPResult, GraphIndex]:
        """Like :meth:`infer` but returns raw marginals (for diagnostics)."""
        graph, index, builder = self.build_graph(side)
        return self._run_lbp(graph, builder), index

    def _run_lbp(self, graph: FactorGraph, builder: GraphBuilder) -> LBPResult:
        engine = LoopyBP(
            graph,
            schedule=builder.schedule(),
            max_iterations=self.config.lbp_iterations,
            tolerance=self.config.lbp_tolerance,
            damping=self.config.lbp_damping,
        )
        return engine.run()
