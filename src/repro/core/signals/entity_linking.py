"""OKB entity linking signals (Section 3.2.3): f_pop, f'_emb, f'_PPDB.

``f'_emb`` and ``f'_PPDB`` compare the NP with the *surface forms* of
the candidate entity; we take the best score over the entity's known
surface forms (name plus aliases), which is how a practical linker uses
an alias table.
"""

from __future__ import annotations

from repro.core.side_info import SideInformation
from repro.core.signals.base import LinkSignal


def entity_link_signals(side: SideInformation) -> list[LinkSignal]:
    """The feature vector ``f_4 = <f_pop, f'_emb, f'_PPDB>`` for F4/F6."""
    anchors = side.anchors
    embedding = side.embedding
    ppdb = side.ppdb
    surface_forms = side.entity_surface_forms

    def popularity(phrase: str, entity_id: str) -> float:
        return anchors.popularity(phrase, entity_id)

    def embedding_similarity(phrase: str, entity_id: str) -> float:
        forms = surface_forms.get(entity_id)
        if not forms:
            return 0.0
        return max(embedding.similarity(phrase, form) for form in forms)

    def ppdb_similarity(phrase: str, entity_id: str) -> float:
        forms = surface_forms.get(entity_id)
        if not forms:
            return 0.0
        return max(ppdb.similarity(phrase, form) for form in forms)

    return [
        LinkSignal(name="f_pop", score=popularity),
        LinkSignal(name="f_emb'", score=embedding_similarity),
        LinkSignal(name="f_ppdb'", score=ppdb_similarity),
    ]
