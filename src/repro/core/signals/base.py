"""Signal abstractions and the per-template registry.

A :class:`PairSignal` scores two phrases (canonicalization factors);
a :class:`LinkSignal` scores a phrase against a CKB candidate id
(linking factors).  A :class:`SignalRegistry` holds the signal lists
for the six feature-bearing templates F1..F6 and builds the factor
feature tables the graph builder installs.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class PairSignal:
    """A named similarity between two phrases, in ``[0, 1]``."""

    name: str
    score: Callable[[str, str], float]

    def __call__(self, first: str, second: str) -> float:
        value = float(self.score(first, second))
        return min(1.0, max(0.0, value))


@dataclass(frozen=True)
class LinkSignal:
    """A named similarity between a phrase and a CKB candidate id."""

    name: str
    score: Callable[[str, str], float]

    def __call__(self, phrase: str, candidate_id: str) -> float:
        value = float(self.score(phrase, candidate_id))
        return min(1.0, max(0.0, value))


@dataclass
class SignalRegistry:
    """Signal lists per feature-bearing factor template.

    ``F1``/``F3`` share the NP canonicalization signals (the paper
    defines F3 "based on the NP canonicalization signals above as
    well"), but each template still learns its own weights.
    """

    np_pair: list[PairSignal] = field(default_factory=list)
    rp_pair: list[PairSignal] = field(default_factory=list)
    entity_link: list[LinkSignal] = field(default_factory=list)
    relation_link: list[LinkSignal] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Feature-table builders
    # ------------------------------------------------------------------
    def pair_feature_table(
        self, signals: Sequence[PairSignal], first: str, second: str
    ) -> np.ndarray:
        """Table for a canonicalization factor: rows = states (0, 1).

        Row for state 1 holds the similarities ``Sim(s_i, s_j)``; row
        for state 0 holds ``1 − Sim`` (the paper's two-case feature
        functions, e.g. ``f_idf`` in Section 3.1.3).
        """
        scores = np.array([signal(first, second) for signal in signals])
        return np.vstack([1.0 - scores, scores])

    def link_feature_table(
        self, signals: Sequence[LinkSignal], phrase: str, candidates: Sequence[str]
    ) -> np.ndarray:
        """Table for a linking factor: one row per candidate state."""
        return np.array(
            [[signal(phrase, candidate) for signal in signals] for candidate in candidates]
        )

    def names(self, signals: Sequence[PairSignal] | Sequence[LinkSignal]) -> list[str]:
        """Feature names of a signal list (template feature names)."""
        return [signal.name for signal in signals]
