"""NP canonicalization signals (Section 3.1.3): f_idf, f_emb, f_PPDB."""

from __future__ import annotations

from repro.core.side_info import SideInformation
from repro.core.signals.base import PairSignal
from repro.strings.idf import idf_token_overlap


def np_pair_signals(side: SideInformation) -> list[PairSignal]:
    """The feature vector ``f_1 = <f_idf, f_emb, f_PPDB>`` for F1/F3."""
    np_idf = side.okb.np_idf
    embedding = side.embedding
    ppdb = side.ppdb
    return [
        PairSignal(
            name="f_idf",
            score=lambda a, b: idf_token_overlap(a, b, np_idf),
        ),
        PairSignal(name="f_emb", score=embedding.similarity),
        PairSignal(name="f_ppdb", score=ppdb.similarity),
    ]
