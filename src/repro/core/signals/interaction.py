"""Heuristic factor tables: transitivity (U1-U3), fact inclusion (U4),
consistency (U5-U7).

Each factor has a single feature — the heuristic score ``u`` — whose
weight ``β`` is learned.  The tables enumerate the factor scope in
C-order (the same order :class:`repro.factorgraph.graph.Factor`
expects).
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence

import numpy as np

from repro.core.config import JOCLConfig


def transitivity_table(config: JOCLConfig) -> np.ndarray:
    """``u1`` over three binary canonicalization variables (Section 3.1.5).

    * all three equal 1 — transitivity satisfied: high score (0.9);
    * exactly one equals 0 — violation (a=b, b=c, but a≠c): low (0.1);
    * otherwise — no constraint active: middle (0.5).
    """
    rows = []
    for states in itertools.product((0, 1), repeat=3):
        ones = sum(states)
        if ones == 3:
            score = config.transitive_high
        elif ones == 2:
            score = config.transitive_low
        else:
            score = config.transitive_middle
        rows.append([score])
    return np.array(rows)


def fact_inclusion_table(
    config: JOCLConfig,
    subject_candidates: Sequence[str],
    relation_candidates: Sequence[str],
    object_candidates: Sequence[str],
    has_fact,
    relations_between=None,
) -> np.ndarray:
    """``u4`` over a triple's three linking variables (Section 3.2.5).

    Two features per assignment:

    * ``u_fact`` — the paper's signal: ``has_fact(e_s, r, e_o)`` scores
      high (0.9) when the assignment composes a known CKB fact, low
      (0.1) otherwise.
    * ``u_pair`` — an extension signal (the "fit any new signals" hook
      of Section 1, documented in DESIGN.md): the chosen subject and
      object entities are connected by *some* CKB fact, regardless of
      the relation.  This keeps entity disambiguation informed even
      when the gold relation is missing from the candidate domain.

    ``relations_between(e_s, e_o)`` may be ``None``, in which case
    ``u_pair`` is constantly low.
    """
    rows = []
    pair_connected: dict[tuple[str, str], bool] = {}
    for subject_id, relation_id, object_id in itertools.product(
        subject_candidates, relation_candidates, object_candidates
    ):
        included = has_fact(subject_id, relation_id, object_id)
        key = (subject_id, object_id)
        if key not in pair_connected:
            pair_connected[key] = bool(
                relations_between is not None and relations_between(*key)
            )
        rows.append(
            [
                config.fact_high if included else config.fact_low,
                config.fact_high if pair_connected[key] else config.fact_low,
            ]
        )
    return np.array(rows)


def consistency_table(
    config: JOCLConfig,
    candidates_a: Sequence[str],
    candidates_b: Sequence[str],
    nil_labels: frozenset[str] = frozenset(),
) -> np.ndarray:
    """``u5``/``u6``/``u7`` over (link_a, link_b, canon_ab) (Section 3.3).

    Consistent assignments — same target & canon=1, or different target
    & canon=0 — score high (0.7); inconsistent ones score low (0.3).
    NIL states never count as "the same target": two unlinkable phrases
    give no evidence of co-reference.
    """
    rows = []
    for candidate_a, candidate_b, canon in itertools.product(
        candidates_a, candidates_b, (0, 1)
    ):
        same = (
            candidate_a == candidate_b
            and candidate_a not in nil_labels
            and candidate_b not in nil_labels
        )
        consistent = (same and canon == 1) or (not same and canon == 0)
        rows.append([config.consistency_high if consistent else config.consistency_low])
    return np.array(rows)
