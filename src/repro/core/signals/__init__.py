"""JOCL feature functions (the "signals" of Sections 3.1-3.3).

Each signal is a named similarity in ``[0, 1]``:

* pair signals (for canonicalization factors F1/F2/F3) compare two
  phrases: ``f_idf``, ``f_emb``, ``f_PPDB``, and for RPs additionally
  ``f_AMIE`` and ``f_KBP``;
* link signals (for linking factors F4/F5/F6) compare a phrase with a
  CKB candidate: ``f_pop``, ``f'_emb``, ``f'_PPDB``, ``f_ngram``,
  ``f_LD``;
* interaction scores ``u1``-``u7`` for the heuristic factors U1-U7.

The registry (:func:`default_registry`) maps factor templates to signal
lists; JOCL's extensibility claim ("able to extend to fit any new
signals") is exercised by registering additional signals — see
``examples/custom_signal.py``.
"""

from repro.core.signals.base import LinkSignal, PairSignal, SignalRegistry
from repro.core.signals.entity_linking import entity_link_signals
from repro.core.signals.interaction import (
    consistency_table,
    fact_inclusion_table,
    transitivity_table,
)
from repro.core.signals.np_signals import np_pair_signals
from repro.core.signals.registry import default_registry
from repro.core.signals.relation_linking import relation_link_signals
from repro.core.signals.rp_signals import rp_pair_signals

__all__ = [
    "LinkSignal",
    "PairSignal",
    "SignalRegistry",
    "consistency_table",
    "default_registry",
    "entity_link_signals",
    "fact_inclusion_table",
    "np_pair_signals",
    "relation_link_signals",
    "rp_pair_signals",
    "transitivity_table",
]
