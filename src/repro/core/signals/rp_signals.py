"""RP canonicalization signals (Section 3.1.4).

The RP feature vector extends the NP one with the AMIE rule-mining
signal and the KBP category signal:
``f_2 = <f_idf, f_emb, f_PPDB, f_AMIE, f_KBP>``.
"""

from __future__ import annotations

from repro.core.side_info import SideInformation
from repro.core.signals.base import PairSignal
from repro.strings.idf import idf_token_overlap


def rp_pair_signals(side: SideInformation) -> list[PairSignal]:
    """The feature vector for the predicate canonicalization factor F2."""
    rp_idf = side.okb.rp_idf
    embedding = side.embedding
    ppdb = side.ppdb
    amie = side.amie
    kbp = side.kbp
    return [
        PairSignal(
            name="f_idf",
            score=lambda a, b: idf_token_overlap(a, b, rp_idf),
        ),
        PairSignal(name="f_emb", score=embedding.similarity),
        PairSignal(name="f_ppdb", score=ppdb.similarity),
        PairSignal(name="f_amie", score=amie.similarity),
        PairSignal(name="f_kbp", score=kbp.similarity),
    ]
