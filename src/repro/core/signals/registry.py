"""Default signal registry and the Table 5 feature-variant subsets."""

from __future__ import annotations

from repro.core.config import FeatureVariant
from repro.core.side_info import SideInformation
from repro.core.signals.base import SignalRegistry
from repro.core.signals.entity_linking import entity_link_signals
from repro.core.signals.np_signals import np_pair_signals
from repro.core.signals.relation_linking import relation_link_signals
from repro.core.signals.rp_signals import rp_pair_signals

#: Feature subsets per variant (Table 5 of the paper).
_VARIANT_FEATURES = {
    FeatureVariant.SINGLE: {
        "np_pair": ("f_idf",),
        "rp_pair": ("f_idf",),
        "entity_link": ("f_pop",),
        "relation_link": ("f_ngram",),
    },
    FeatureVariant.DOUBLE: {
        "np_pair": ("f_idf", "f_emb"),
        "rp_pair": ("f_idf", "f_emb"),
        "entity_link": ("f_pop", "f_emb'"),
        "relation_link": ("f_ngram", "f_emb'"),
    },
}


def default_registry(
    side: SideInformation, variant: FeatureVariant = FeatureVariant.ALL
) -> SignalRegistry:
    """Build the signal registry for a feature variant.

    ``ALL`` returns the full Section 3 feature vectors; ``SINGLE`` and
    ``DOUBLE`` are the Table 5 subsets used in the Figure 4 ablation.
    """
    registry = SignalRegistry(
        np_pair=np_pair_signals(side),
        rp_pair=rp_pair_signals(side),
        entity_link=entity_link_signals(side),
        relation_link=relation_link_signals(side),
    )
    if variant is FeatureVariant.ALL:
        return registry
    wanted = _VARIANT_FEATURES[variant]
    return SignalRegistry(
        np_pair=[s for s in registry.np_pair if s.name in wanted["np_pair"]],
        rp_pair=[s for s in registry.rp_pair if s.name in wanted["rp_pair"]],
        entity_link=[
            s for s in registry.entity_link if s.name in wanted["entity_link"]
        ],
        relation_link=[
            s for s in registry.relation_link if s.name in wanted["relation_link"]
        ],
    )
