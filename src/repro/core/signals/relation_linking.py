"""OKB relation linking signals (Section 3.2.4).

``f_5 = <f_ngram, f_LD, f'_emb, f'_PPDB>``: character-n-gram Jaccard,
normalized Levenshtein similarity, embedding similarity and PPDB
equivalence between the RP and the candidate relation's surface forms.
RPs are morphologically normalized before string comparison so "be an
early member of" matches "member of"-style lexicalizations.
"""

from __future__ import annotations

from repro.core.side_info import SideInformation
from repro.core.signals.base import LinkSignal
from repro.okb.normalize import morph_normalize
from repro.strings.similarity import ngram_jaccard, normalized_levenshtein_similarity


def relation_link_signals(side: SideInformation) -> list[LinkSignal]:
    """The feature vector for the predicate linking factor F5."""
    embedding = side.embedding
    ppdb = side.ppdb
    surface_forms = side.relation_surface_forms

    def best_over_forms(phrase: str, relation_id: str, score) -> float:
        forms = surface_forms.get(relation_id)
        if not forms:
            return 0.0
        normalized = morph_normalize(phrase)
        return max(score(normalized, form) for form in forms)

    def ngram_similarity(phrase: str, relation_id: str) -> float:
        return best_over_forms(phrase, relation_id, ngram_jaccard)

    def levenshtein_similarity(phrase: str, relation_id: str) -> float:
        return best_over_forms(phrase, relation_id, normalized_levenshtein_similarity)

    def embedding_similarity(phrase: str, relation_id: str) -> float:
        return best_over_forms(phrase, relation_id, embedding.similarity)

    def ppdb_similarity(phrase: str, relation_id: str) -> float:
        return best_over_forms(phrase, relation_id, ppdb.similarity)

    return [
        LinkSignal(name="f_ngram", score=ngram_similarity),
        LinkSignal(name="f_ld", score=levenshtein_similarity),
        LinkSignal(name="f_emb'", score=embedding_similarity),
        LinkSignal(name="f_ppdb'", score=ppdb_similarity),
    ]
