"""JOCL configuration: every constant the paper specifies, in one place.

Paper constants reproduced as defaults:

* canonicalization-pair pruning threshold 0.5 on IDF token overlap
  (Section 4.1);
* learning rate 0.05, convergence within ~20 iterations (Sections 3.4,
  4.1);
* transitive-relation scores high/middle/low = 0.9 / 0.5 / 0.1
  (Section 3.1.5);
* fact-inclusion scores high/low = 0.9 / 0.1 (Section 3.2.5);
* consistency scores high/low = 0.7 / 0.3 (Section 3.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class FeatureVariant(enum.Enum):
    """Feature-combination variants of Table 5.

    * ``SINGLE`` — F1/F3: f_idf; F2: f_idf; F4/F6: f_pop; F5: f_ngram.
    * ``DOUBLE`` — adds f_emb (f'_emb for linking) to each factor.
    * ``ALL`` — the full feature vectors of Section 3.
    """

    SINGLE = "single"
    DOUBLE = "double"
    ALL = "all"


@dataclass(frozen=True)
class FactorToggles:
    """Which factor families participate in the graph.

    The Table 4 ablation: ``JOCL_cano`` keeps only the canonicalization
    side, ``JOCL_link`` only the linking side, and removing
    ``consistency`` disables the interaction between the two tasks.
    """

    canonicalization: bool = True  # F1, F2, F3
    transitivity: bool = True  # U1, U2, U3
    linking: bool = True  # F4, F5, F6
    fact_inclusion: bool = True  # U4
    consistency: bool = True  # U5, U6, U7

    def __post_init__(self) -> None:
        if self.consistency and not (self.canonicalization and self.linking):
            raise ValueError(
                "consistency factors couple canonicalization and linking "
                "variables; enable both sides or disable consistency"
            )
        if self.transitivity and not self.canonicalization:
            raise ValueError("transitivity factors need canonicalization variables")
        if self.fact_inclusion and not self.linking:
            raise ValueError("fact-inclusion factors need linking variables")


@dataclass(frozen=True)
class JOCLConfig:
    """All hyper-parameters of the JOCL framework."""

    # --- graph construction -------------------------------------------
    #: IDF-token-overlap threshold for generating canonicalization
    #: variables (Section 4.1: "whose threshold is set to 0.5").
    pair_threshold: float = 0.5
    #: Cap on candidate entities/relations per linking variable.
    max_candidates: int = 8
    #: Cap on transitive-relation triangles per variable kind (keeps
    #: dense OKBs tractable; triangles are selected deterministically).
    max_triangles: int = 20000
    #: Which factor families to instantiate.
    toggles: FactorToggles = field(default_factory=FactorToggles)
    #: Feature combination (Table 5).
    variant: FeatureVariant = FeatureVariant.ALL

    # --- heuristic factor scores (Sections 3.1.5, 3.2.5, 3.3) ---------
    transitive_high: float = 0.9
    transitive_middle: float = 0.5
    transitive_low: float = 0.1
    fact_high: float = 0.9
    fact_low: float = 0.1
    consistency_high: float = 0.7
    consistency_low: float = 0.3

    # --- learning (Sections 3.4, 4.1) ----------------------------------
    learning_rate: float = 0.05
    learn_iterations: int = 20
    l2: float = 0.0

    # --- inference ------------------------------------------------------
    lbp_iterations: int = 30
    lbp_tolerance: float = 1e-4
    lbp_damping: float = 0.0
    #: Apply the conflict-resolution step of Section 3.5.
    conflict_resolution: bool = True
    #: Minimum marginal probability of ``x_ij = 1`` for a pair to drive
    #: conflict resolution (0.5 reproduces the paper's plain MAP rule;
    #: higher values only act on confident merges).
    conflict_confidence: float = 0.7

    def __post_init__(self) -> None:
        if not 0.0 <= self.pair_threshold <= 1.0:
            raise ValueError(f"pair_threshold must be in [0,1], got {self.pair_threshold}")
        if self.max_candidates < 1:
            raise ValueError(f"max_candidates must be >= 1, got {self.max_candidates}")
        for name in (
            "transitive_high",
            "transitive_middle",
            "transitive_low",
            "fact_high",
            "fact_low",
            "consistency_high",
            "consistency_low",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0,1], got {value}")
