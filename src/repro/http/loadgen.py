"""Closed- and open-loop load generation against the HTTP front-end.

The in-process benchmarks never created the traffic shape the
micro-batching machinery was built for: synchronous callers issue one
request, wait, issue the next — so nothing piles up and the leader
drains batches of one.  This module produces *concurrent arrivals*:

* **closed loop** — ``concurrency`` workers each drive a persistent
  connection as fast as responses come back (throughput is bounded by
  latency: the classic saturation probe);
* **open loop** — requests are dispatched on a Poisson-ish schedule at
  ``arrival_rate_per_s`` regardless of completions (the latency-under-
  load probe: queueing delay shows up in the percentiles instead of
  throttling the generator).  Latency is measured from the *scheduled*
  arrival, so coordinated omission does not flatter the tail.

Traffic is a deterministic mix rendered up front by
:func:`build_request_plan` from a seeded RNG: reads (``resolve`` with a
configurable hot-key skew — hot keys are what in-batch deduplication
coalesces) and writes (``ingest`` batches supplied by the caller,
spread evenly through the stream).  Per-request latency, status and
kind are recorded; :class:`LoadReport` aggregates throughput,
error counts and p50/p95/p99 percentiles (same nearest-rank convention
as :class:`repro.serving.ServingStats`) into a schema-versioned
payload ``BENCH_http.json`` embeds.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
from collections.abc import Sequence
from dataclasses import dataclass

from repro.api.errors import InvalidRequestError
from repro.http.envelopes import (
    HTTP_SCHEMA_VERSION,
    IngestRequest,
    ResolveRequest,
    check_envelope,
    _parsing,
    _require,
)
from repro.okb.triples import OIETriple
from repro.serving.service import latency_percentile


@dataclass(frozen=True)
class PlannedRequest:
    """One pre-rendered request of a load plan."""

    #: ``"read"`` or ``"write"`` — what the aggregates bucket by.
    kind: str
    method: str
    path: str
    #: Pre-serialized JSON body (rendering stays out of the timed loop).
    body: bytes


@dataclass(frozen=True)
class LoadGenConfig:
    """Knobs of one load run.

    ``concurrency`` drives the closed loop (ignored open-loop except as
    the dispatch pool size); ``arrival_rate_per_s`` drives the open
    loop.  ``write_fraction`` of the plan are ingest requests (needs
    ``write_batches``); reads draw a mention from the hot set with
    probability ``hot_fraction``.
    """

    mode: str = "closed"
    n_requests: int = 200
    concurrency: int = 8
    arrival_rate_per_s: float = 200.0
    write_fraction: float = 0.0
    hot_fraction: float = 0.8
    hot_keys: int = 4
    seed: int = 0
    timeout_s: float = 30.0

    def validated(self) -> LoadGenConfig:
        """Return self after range-checking every knob."""
        if self.mode not in ("closed", "open"):
            raise InvalidRequestError(
                f"mode must be 'closed' or 'open', got {self.mode!r}"
            )
        if self.n_requests < 1:
            raise InvalidRequestError(
                f"n_requests must be >= 1, got {self.n_requests}"
            )
        if self.concurrency < 1:
            raise InvalidRequestError(
                f"concurrency must be >= 1, got {self.concurrency}"
            )
        if self.mode == "open" and self.arrival_rate_per_s <= 0:
            raise InvalidRequestError(
                f"arrival_rate_per_s must be > 0, got {self.arrival_rate_per_s}"
            )
        if not 0.0 <= self.write_fraction <= 1.0:
            raise InvalidRequestError(
                f"write_fraction must be within [0, 1], got {self.write_fraction}"
            )
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise InvalidRequestError(
                f"hot_fraction must be within [0, 1], got {self.hot_fraction}"
            )
        if self.hot_keys < 1:
            raise InvalidRequestError(
                f"hot_keys must be >= 1, got {self.hot_keys}"
            )
        return self


@dataclass(frozen=True)
class LoadReport:
    """Aggregates of one load run, embedded in ``BENCH_http.json``."""

    TYPE = "load_report"

    mode: str
    n_requests: int
    wall_s: float
    req_per_s: float
    ok: int
    reads: int
    writes: int
    #: status code -> count for every non-2xx response.
    errors: dict[int, int]
    p50_ms: float
    p95_ms: float
    p99_ms: float

    def to_dict(self) -> dict:
        """Schema-versioned payload (the ``BENCH_http.json`` shape)."""
        payload = {"schema_version": HTTP_SCHEMA_VERSION, "type": self.TYPE}
        payload.update(
            mode=self.mode,
            n_requests=self.n_requests,
            wall_s=self.wall_s,
            req_per_s=self.req_per_s,
            ok=self.ok,
            reads=self.reads,
            writes=self.writes,
            errors={str(status): count for status, count in self.errors.items()},
            p50_ms=self.p50_ms,
            p95_ms=self.p95_ms,
            p99_ms=self.p99_ms,
        )
        return payload

    @classmethod
    def from_dict(cls, payload: object) -> LoadReport:
        """Parse a :meth:`to_dict` payload; :class:`SchemaError` on
        malformed input."""
        payload = check_envelope(payload, cls.TYPE)
        with _parsing(cls.TYPE):
            return cls(
                mode=str(_require(payload, "mode", cls.TYPE)),
                n_requests=int(_require(payload, "n_requests", cls.TYPE)),
                wall_s=float(_require(payload, "wall_s", cls.TYPE)),
                req_per_s=float(_require(payload, "req_per_s", cls.TYPE)),
                ok=int(_require(payload, "ok", cls.TYPE)),
                reads=int(_require(payload, "reads", cls.TYPE)),
                writes=int(_require(payload, "writes", cls.TYPE)),
                errors={
                    int(status): int(count)
                    for status, count in _require(
                        payload, "errors", cls.TYPE
                    ).items()
                },
                p50_ms=float(_require(payload, "p50_ms", cls.TYPE)),
                p95_ms=float(_require(payload, "p95_ms", cls.TYPE)),
                p99_ms=float(_require(payload, "p99_ms", cls.TYPE)),
            )


def build_request_plan(
    mentions: Sequence[tuple[str, str | None]],
    config: LoadGenConfig,
    write_batches: Sequence[Sequence[OIETriple]] = (),
) -> list[PlannedRequest]:
    """Render the deterministic request stream of one load run.

    ``mentions`` are the resolvable ``(mention, kind)`` pairs; the
    first ``config.hot_keys`` of them form the hot set a read targets
    with probability ``config.hot_fraction`` (the rest draw uniformly
    from the full list).  Writes consume ``write_batches`` in order,
    spread evenly across the stream; the plan holds exactly
    ``min(round(n_requests * write_fraction), len(write_batches))``
    of them.  Same arguments, same plan — byte for byte.
    """
    config = config.validated()
    if not mentions:
        raise InvalidRequestError("mentions must not be empty")
    rng = random.Random(config.seed)
    n_writes = min(
        round(config.n_requests * config.write_fraction), len(write_batches)
    )
    write_positions = {
        (index + 1) * config.n_requests // (n_writes + 1)
        for index in range(n_writes)
    }
    hot = list(mentions[: config.hot_keys])
    plan: list[PlannedRequest] = []
    next_write = 0
    for position in range(config.n_requests):
        if position in write_positions:
            body = json.dumps(
                IngestRequest(
                    triples=tuple(write_batches[next_write])
                ).to_dict()
            ).encode("utf-8")
            plan.append(PlannedRequest("write", "POST", "/v1/ingest", body))
            next_write += 1
            continue
        if rng.random() < config.hot_fraction:
            mention, kind = hot[rng.randrange(len(hot))]
        else:
            mention, kind = mentions[rng.randrange(len(mentions))]
        body = json.dumps(ResolveRequest(mention, kind).to_dict()).encode(
            "utf-8"
        )
        plan.append(PlannedRequest("read", "POST", "/v1/resolve", body))
    return plan


class _WorkerLog:
    """Per-worker request log; merged after the join (no shared state,
    no locks, deterministic aggregates)."""

    __slots__ = ("latencies_ms", "statuses", "kinds", "error")

    def __init__(self) -> None:
        self.latencies_ms: list[float] = []
        self.statuses: list[int] = []
        self.kinds: list[str] = []
        self.error: BaseException | None = None


def _send_one(
    connection: http.client.HTTPConnection, request: PlannedRequest
) -> int:
    connection.request(
        request.method,
        request.path,
        body=request.body,
        headers={"Content-Type": "application/json"},
    )
    response = connection.getresponse()
    response.read()  # drain so the connection can be reused
    return response.status


def _closed_loop(
    host: str, port: int, plan: Sequence[PlannedRequest], config: LoadGenConfig
) -> tuple[list[_WorkerLog], float]:
    logs = [_WorkerLog() for _ in range(config.concurrency)]
    barrier = threading.Barrier(config.concurrency + 1)

    def worker(offset: int) -> None:
        log = logs[offset]
        connection = http.client.HTTPConnection(
            host, port, timeout=config.timeout_s
        )
        try:
            barrier.wait()
            for index in range(offset, len(plan), config.concurrency):
                request = plan[index]
                start = time.perf_counter()
                status = _send_one(connection, request)
                log.latencies_ms.append((time.perf_counter() - start) * 1000.0)
                log.statuses.append(status)
                log.kinds.append(request.kind)
        except BaseException as error:  # surfaced by run_load
            log.error = error
        finally:
            connection.close()

    threads = [
        threading.Thread(target=worker, args=(offset,), daemon=True)
        for offset in range(config.concurrency)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    return logs, time.perf_counter() - start


def _open_loop(
    host: str, port: int, plan: Sequence[PlannedRequest], config: LoadGenConfig
) -> tuple[list[_WorkerLog], float]:
    """Dispatch on a fixed-rate schedule; latency from scheduled start."""
    logs = [_WorkerLog() for _ in range(len(plan))]
    interval = 1.0 / config.arrival_rate_per_s
    threads = []
    start = time.perf_counter()

    def fire(index: int, scheduled: float) -> None:
        log = logs[index]
        connection = http.client.HTTPConnection(
            host, port, timeout=config.timeout_s
        )
        try:
            request = plan[index]
            status = _send_one(connection, request)
            log.latencies_ms.append((time.perf_counter() - scheduled) * 1000.0)
            log.statuses.append(status)
            log.kinds.append(request.kind)
        except BaseException as error:
            log.error = error
        finally:
            connection.close()

    for index in range(len(plan)):
        scheduled = start + index * interval
        delay = scheduled - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        thread = threading.Thread(
            target=fire, args=(index, scheduled), daemon=True
        )
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join()
    return logs, time.perf_counter() - start


def run_load(
    host: str,
    port: int,
    plan: Sequence[PlannedRequest],
    config: LoadGenConfig,
) -> LoadReport:
    """Execute a plan against a live server; aggregate into a report.

    A transport-level failure (connection refused, socket timeout)
    raises; HTTP-level errors (4xx/5xx, including 429 backpressure
    rejections) are *recorded* in :attr:`LoadReport.errors` — a load
    run is expected to observe them.
    """
    config = config.validated()
    if not plan:
        raise InvalidRequestError("the request plan is empty")
    if config.mode == "closed":
        logs, wall_s = _closed_loop(host, port, plan, config)
    else:
        logs, wall_s = _open_loop(host, port, plan, config)
    for log in logs:
        if log.error is not None:
            raise log.error
    latencies = sorted(
        latency for log in logs for latency in log.latencies_ms
    )
    statuses = [status for log in logs for status in log.statuses]
    kinds = [kind for log in logs for kind in log.kinds]
    errors: dict[int, int] = {}
    for status in statuses:
        if not 200 <= status < 300:
            errors[status] = errors.get(status, 0) + 1
    return LoadReport(
        mode=config.mode,
        n_requests=len(statuses),
        wall_s=round(wall_s, 6),
        req_per_s=round(len(statuses) / wall_s, 1) if wall_s else 0.0,
        ok=sum(1 for status in statuses if 200 <= status < 300),
        reads=sum(1 for kind in kinds if kind == "read"),
        writes=sum(1 for kind in kinds if kind == "write"),
        errors=dict(sorted(errors.items())),
        p50_ms=round(latency_percentile(latencies, 0.50), 3),
        p95_ms=round(latency_percentile(latencies, 0.95), 3),
        p99_ms=round(latency_percentile(latencies, 0.99), 3),
    )
